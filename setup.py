"""Setuptools entry point (kept for offline legacy editable installs)."""
from setuptools import setup

setup()
