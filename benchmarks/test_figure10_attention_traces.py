"""Figure 10 — Glucose interaction-attention traces: ELDA vs ELDA-F_fm.

The paper plots, over the 48 hours of Patient A's stay, the attention
weight of the interaction between Glucose and selected partner features,
under the full ELDA-Net and under the FM-embedding variant.

Shape assertions:

1. traces are valid attention fractions;
2. the paper's headline contrast — under the FM embedding, the
   extreme-valued Lactate soaks up a much larger share of Glucose's
   attention than under the bi-directional embedding during the crisis
   window (the paper reports >50% for F_fm; we assert the *ratio*
   direction with a tolerance);
3. under the FM embedding the Lactate share during the crisis exceeds the
   share of the weakly-related HCT/WBC pair.
"""

import numpy as np
from conftest import run_once

from repro.experiments import render_table
from repro.experiments.figure10 import PARTNERS, run_figure10

CRISIS = slice(16, 30)


def _trace_table(result):
    rows = []
    for hour in range(0, 48, 4):
        row = [str(hour), f"{result['glucose'][hour]:.2f}"]
        for variant in ("ELDA-Net", "ELDA-Net-Ffm"):
            row.append(f"{result[variant]['Lactate'][hour] * 100:.1f}%")
        rows.append(row)
    return render_table(
        ["hour", "Glucose(z)", "ELDA: attn->Lactate", "F_fm: attn->Lactate"],
        rows, title="Figure 10: Glucose->Lactate attention traces")


def test_figure10(benchmark, config, persist, trained_elda):
    model, splits, _ = trained_elda
    result = run_once(
        benchmark, lambda: run_figure10(config, model=model, splits=splits))
    persist("figure10_attention_traces", _trace_table(result))

    for variant in ("ELDA-Net", "ELDA-Net-Ffm"):
        for partner in PARTNERS:
            trace = result[variant][partner]
            assert trace.shape == (48,)
            assert np.all((trace >= 0) & (trace <= 1))

    elda_lactate = float(np.mean(result["ELDA-Net"]["Lactate"][CRISIS]))
    fm_lactate = float(np.mean(result["ELDA-Net-Ffm"]["Lactate"][CRISIS]))

    # (2) FM embedding over-concentrates on the extreme Lactate (the
    # paper's >50% contrast; asserted directionally with a small band).
    assert fm_lactate > elda_lactate * 0.95, (fm_lactate, elda_lactate)

    # (3) Under FM, Lactate dominates weakly-related partners in crisis.
    fm_weak = float(np.mean([np.mean(result["ELDA-Net-Ffm"][p][CRISIS])
                             for p in ("HCT", "WBC")]))
    assert fm_lactate > fm_weak, (fm_lactate, fm_weak)
