"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one of the paper's tables or figures: it runs
the experiment once (timed via ``benchmark.pedantic``), prints the same
rows/series the paper reports, persists them under
``benchmarks/results/``, and asserts the evaluation's *shape* (who wins,
directionally) rather than absolute numbers.

Scale is controlled by ``REPRO_SCALE`` (small | medium | paper).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments import default_config

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def config():
    """The experiment configuration for this benchmark session."""
    return default_config()


@pytest.fixture(scope="session")
def trained_elda(config):
    """One trained ELDA-Net shared by the interpretability benches.

    Figures 8, 9, and 10 all analyze a trained full ELDA-Net on the
    PhysioNet mortality task; training once keeps the suite tractable.
    """
    from repro.experiments import trained_model
    model, splits, metrics = trained_model("ELDA-Net", "physionet2012",
                                           "mortality", config, seed=0)
    return model, splits, metrics


@pytest.fixture(scope="session")
def persist():
    """Write a rendered experiment output to benchmarks/results/ and echo it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _persist(name, text):
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")
        return path

    return _persist


def run_once(benchmark, fn):
    """Execute an experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
