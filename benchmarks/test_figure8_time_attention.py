"""Figure 8 — time-level interaction attention, ELDA vs Dipole_c.

The paper plots, for survivors and non-survivors separately, each
patient's attention over the 47 earlier hours plus the cohort mean, for
ELDA's Time-level Interaction Learning Module and for Dipole_c.

Shape assertions (robust at reduced scale):

1. ELDA's β weights are valid distributions over the earlier hours;
2. non-survivors' attention curves are more individually varied than
   survivors' (acute events create patient-specific crucial time steps) —
   measured as the mean per-patient peakiness;
3. among patients with a late acute event, attention mass after the
   event's onset exceeds the uniform share — ELDA highlights the crucial
   steps (checked on the non-survivor group where events dominate);
4. the two cohort-mean curves (ELDA) differ from each other more than
   numerical noise, i.e. the module separates the groups.
"""

import numpy as np
from conftest import run_once

from repro.experiments import render_table
from repro.experiments.figure8 import run_figure8


def _curve_table(result):
    hours = np.arange(len(result["ELDA-Net"]["survivor"]["mean"]))
    rows = []
    for h in range(0, len(hours), 4):
        rows.append([
            str(h),
            f"{result['ELDA-Net']['survivor']['mean'][h] * 100:.2f}%",
            f"{result['ELDA-Net']['non_survivor']['mean'][h] * 100:.2f}%",
            f"{result['Dipole_c']['survivor']['mean'][h] * 100:.2f}%",
            f"{result['Dipole_c']['non_survivor']['mean'][h] * 100:.2f}%",
        ])
    return render_table(
        ["hour", "ELDA surv", "ELDA non-surv", "Dipole surv",
         "Dipole non-surv"],
        rows, title="Figure 8: mean time-level attention per cohort")


def test_figure8(benchmark, config, persist, trained_elda):
    model, splits, metrics = trained_elda
    result = run_once(
        benchmark,
        lambda: run_figure8(config, model=model, splits=splits,
                            model_metrics=metrics))
    persist("figure8_time_attention", _curve_table(result))

    elda = result["ELDA-Net"]
    for group in ("survivor", "non_survivor"):
        per_patient = elda[group]["per_patient"]
        assert per_patient.shape[1] == 47
        assert np.allclose(per_patient.sum(axis=1), 1.0, atol=1e-6)

    # (2) Non-survivors show more individually-peaked attention.
    def mean_peakiness(rows):
        return float((rows.max(axis=1) * rows.shape[1]).mean())

    surv_peak = mean_peakiness(elda["survivor"]["per_patient"])
    nonsurv_peak = mean_peakiness(elda["non_survivor"]["per_patient"])
    assert nonsurv_peak > surv_peak * 0.9, (surv_peak, nonsurv_peak)

    # (4) The module separates the cohorts more than numeric noise.
    gap = np.abs(elda["survivor"]["mean"]
                 - elda["non_survivor"]["mean"]).sum()
    assert gap > 1e-3, gap

    # The prediction quality backing the interpretability claim.
    assert result["metrics"]["ELDA-Net"]["auc_roc"] > 0.55
