"""Ablation benches for the design choices DESIGN.md calls out.

Beyond the paper's own ablation (Figure 7), these sweeps probe the fixed
hyperparameters of the ELDA-Net configuration:

* the bi-directional embedding bounds (a, b) — the paper uses (-3, 3);
* the compression factor d — the paper uses 4;
* the feature-interaction attention vs uniform pooling of interactions;
* the dedicated missing-value embedding V^m vs mean-imputation only.

Each sweep trains the full model with one knob changed and reports the
test AUC-PR.  Assertions are deliberately loose (valid classifiers, and
the paper's configuration not being dominated by a large margin) — the
point of these benches is the printed sweep, which EXPERIMENTS.md
discusses.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.data import NUM_FEATURES, load_cohort
from repro.core.elda_net import ELDANet
from repro.experiments import format_metric, render_table
from repro.train import Trainer


@pytest.fixture(scope="module")
def splits(config):
    return load_cohort("physionet2012", scale=config.scale,
                       fractions=config.fractions)


def _train(config, splits, **model_kwargs):
    model = ELDANet(NUM_FEATURES, np.random.default_rng(0), **model_kwargs)
    kwargs = config.trainer_kwargs(0)
    # Sweeps compare configurations against each other, not against the
    # paper; a shorter budget keeps the whole sweep tractable on CPU.
    kwargs["max_epochs"] = min(kwargs["max_epochs"], 5)
    trainer = Trainer(model, "mortality", **kwargs)
    trainer.fit(splits.train, splits.validation)
    return trainer.evaluate(splits.test)


def test_ablation_embedding_bounds(benchmark, config, persist, splits):
    """Sweep the (a, b) anchors of the bi-directional embedding."""
    bounds = ((-1.0, 1.0), (-3.0, 3.0), (-6.0, 6.0))

    def run():
        return {b: _train(config, splits, lower=b[0], upper=b[1])
                for b in bounds}

    results = run_once(benchmark, run)
    rows = [[f"({lo}, {hi})", format_metric(m["auc_pr"]),
             format_metric(m["auc_roc"])]
            for (lo, hi), m in results.items()]
    persist("ablation_embedding_bounds",
            render_table(["bounds (a, b)", "AUC-PR", "AUC-ROC"], rows,
                         title="Ablation: bi-directional embedding bounds"))

    paper = results[(-3.0, 3.0)]["auc_pr"]
    best = max(m["auc_pr"] for m in results.values())
    assert paper >= best - 0.08, results


def test_ablation_compression_factor(benchmark, config, persist, splits):
    """Sweep the compression factor d (paper: 4)."""
    factors = (1, 4, 8)

    def run():
        return {d: _train(config, splits, compression=d) for d in factors}

    results = run_once(benchmark, run)
    rows = [[str(d), format_metric(m["auc_pr"]), format_metric(m["auc_roc"])]
            for d, m in results.items()]
    persist("ablation_compression",
            render_table(["d", "AUC-PR", "AUC-ROC"], rows,
                         title="Ablation: compression factor"))

    paper = results[4]["auc_pr"]
    best = max(m["auc_pr"] for m in results.values())
    assert paper >= best - 0.08, results


def test_ablation_feature_attention(benchmark, config, persist, splits):
    """Learned interaction attention vs uniform pooling (Eqs. 4-5 off)."""

    def run():
        return {
            "attention": _train(config, splits, feature_attention=True),
            "uniform": _train(config, splits, feature_attention=False),
        }

    results = run_once(benchmark, run)
    rows = [[name, format_metric(m["auc_pr"]), format_metric(m["auc_roc"])]
            for name, m in results.items()]
    persist("ablation_attention",
            render_table(["pooling", "AUC-PR", "AUC-ROC"], rows,
                         title="Ablation: interaction attention"))

    assert results["attention"]["auc_pr"] >= results["uniform"]["auc_pr"] - 0.08


def test_ablation_missing_embedding(benchmark, config, persist, splits):
    """Dedicated V^m embedding vs pretending everything was observed."""

    def run():
        model = ELDANet(NUM_FEATURES, np.random.default_rng(0))
        trainer = Trainer(model, "mortality", **config.trainer_kwargs(0))
        trainer.fit(splits.train, splits.validation)
        with_vm = trainer.evaluate(splits.test)

        # Same architecture, but the trainer path never routes to V^m.
        class NoMissing(ELDANet):
            def forward_batch(self, batch):
                return self.logits(batch.values, ever_observed=None)

        blind = NoMissing(NUM_FEATURES, np.random.default_rng(0))
        trainer2 = Trainer(blind, "mortality", **config.trainer_kwargs(0))
        trainer2.fit(splits.train, splits.validation)
        without_vm = trainer2.evaluate(splits.test)
        return {"with V^m": with_vm, "without V^m": without_vm}

    results = run_once(benchmark, run)
    rows = [[name, format_metric(m["auc_pr"]), format_metric(m["auc_roc"])]
            for name, m in results.items()]
    persist("ablation_missing_embedding",
            render_table(["variant", "AUC-PR", "AUC-ROC"], rows,
                         title="Ablation: missing-value embedding"))

    for m in results.values():
        assert 0.0 <= m["auc_roc"] <= 1.0
