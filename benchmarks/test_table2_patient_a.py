"""Table II — Patient A's essential medical features over time.

The paper tabulates the standardized values of ten case-study features at
selected hours for a DM patient with diabetic lactic acidosis.  Shape
assertions follow the DLA clinical signature the paper's Section V-D
reads off the table:

* Glucose and Lactate strongly elevated during the crisis (hours ~16-30);
* pH, HCO3, Temp, and MAP depressed during the crisis;
* the DLA-irrelevant HCT and WBC stay near baseline throughout;
* by hour 47, Glucose has come well down from its crisis peak.
"""

from conftest import run_once

from repro.experiments import render_table2, run_table2


def test_table2(benchmark, config, persist):
    results = run_once(benchmark, lambda: run_table2(config))
    persist("table2_patient_a", render_table2(results))

    crisis_hours = (19, 25)

    def crisis_mean(feature):
        return sum(results[feature][h] for h in crisis_hours) / len(crisis_hours)

    assert crisis_mean("Glucose") > 1.5
    assert crisis_mean("Lactate") > 1.0
    assert crisis_mean("pH") < -0.5
    assert crisis_mean("HCO3") < -0.3
    assert crisis_mean("Temp") < 0.0
    assert crisis_mean("MAP") < 0.0
    # Irrelevant features stay near their (personal) baseline band.
    assert abs(crisis_mean("HCT")) < 1.5
    assert abs(crisis_mean("WBC")) < 1.5
    # Treatment brings Glucose down by the end of the stay.
    assert results["Glucose"][47] < crisis_mean("Glucose") - 1.0
