"""Table I — dataset statistics for both cohorts.

Paper values (at full scale):

==============================  =============  ===========
                                PhysioNet2012  MIMIC-III
==============================  =============  ===========
admissions                      12000          21139
survivor : non-survivor         10293 : 1707   18342 : 2797
LOS<=7 : LOS>7                  4095 : 7738*   9134 : 12005
avg records / patient           359.19         346.05
features                        37             37
missing rate                    79.78%         80.52%
==============================  =============  ===========

Shape assertions: MIMIC is the larger cohort, survivors and LOS>7 are the
majority classes, mortality prevalence is low (paper ~13-14%), the
missing rate sits near 80%, and the record density is in the paper's
~300-360 band.
"""

from conftest import run_once

from repro.experiments import render_table1, run_table1


def test_table1(benchmark, config, persist):
    results = run_once(benchmark, lambda: run_table1(scale=config.scale))
    persist("table1_dataset_stats", render_table1(results))

    phys = results["PhysioNet2012"]
    mimic = results["MIMIC-III"]

    assert mimic["admissions"] > phys["admissions"]
    for stats in (phys, mimic):
        total = stats["survivor"] + stats["non_survivor"]
        mortality = stats["non_survivor"] / total
        assert 0.05 < mortality < 0.30            # paper: ~0.14 / ~0.13
        assert stats["los_gt_7"] > stats["los_le_7"]  # LOS>7 majority
        assert stats["num_features"] == 37
        assert 0.70 < stats["missing_rate"] < 0.90    # paper: ~0.80
        assert 200 < stats["avg_records_per_patient"] < 500
