"""Table III — model complexity and runtime.

Paper's shape (GPU testbed; our substrate is numpy on CPU, so absolute
times differ but orderings should hold):

* LR / FM / AFM have < 1k parameters; every temporal model has 10k-200k;
* ConCare is the largest model;
* ELDA-Net sits in the moderate tens-of-thousands band (~53k in the
  paper) — far below ConCare;
* ELDA-Net-T costs barely more than GRU per batch, ELDA-Net-F adds the
  feature-interaction overhead, and the full ELDA-Net is the slowest of
  the three variants (the paper's Table III ordering);
* ConCare is among the slowest models per training batch.
"""

from conftest import run_once

from repro.experiments import render_table3, run_table3


def test_table3(benchmark, config, persist):
    results = run_once(benchmark,
                       lambda: run_table3(config, num_batches=3))
    persist("table3_params_runtime", render_table3(results))

    params = {name: m["params"] for name, m in results.items()}
    train_time = {name: m["train_seconds_per_batch"]
                  for name, m in results.items()}

    # Pooled models are tiny.
    for name in ("LR", "FM", "AFM"):
        assert params[name] < 1_000, name
    # ConCare is the largest model, as in the paper.
    assert max(params, key=params.get) == "ConCare"
    # ELDA-Net is moderate: bigger than GRU, far smaller than ConCare.
    assert params["GRU"] < params["ELDA-Net"] < params["ConCare"]
    # Paper band for ELDA-Net is ~53k.
    assert 30_000 < params["ELDA-Net"] < 90_000

    # Runtime ordering of the ELDA variants (Table III).
    assert train_time["ELDA-Net-T"] < train_time["ELDA-Net"]
    assert train_time["ELDA-Net-Fbi"] <= train_time["ELDA-Net"] * 1.2
    # ConCare is among the slowest models per batch.
    slowest = sorted(train_time, key=train_time.get, reverse=True)[:4]
    assert "ConCare" in slowest, slowest
