"""Figure 6 — main results: ELDA-Net vs. 12 baselines on 4 cells.

Paper findings this harness checks (as shapes, per cell):

1. ELDA-Net is the top model — at reduced scales we assert it is within a
   small tolerance of the best AUC-PR and strictly beats the pooled
   (non-temporal) models;
2. time-series models beat the pooled LR/FM/AFM family on average;
3. FM's pairwise interactions help over plain LR (checked on average
   across cells, where the paper also notes the gain).

Each (dataset, task) cell is its own benchmark so progress and timing are
visible per panel.  Absolute metric values differ from the paper (synthetic
cohorts, reduced training budget); orderings are what is asserted.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.experiments import FIGURE6_MODELS, render_figure6, run_grid

CELLS = (
    ("physionet2012", "mortality"),
    ("physionet2012", "los"),
    ("mimic3", "mortality"),
    ("mimic3", "los"),
)

POOLED = ("LR", "FM", "AFM")
RESULTS = {}


@pytest.mark.parametrize("cohort,task", CELLS)
def test_figure6_cell(benchmark, config, persist, cohort, task):
    per_model = run_once(
        benchmark,
        lambda: run_grid(FIGURE6_MODELS, cohort, task, config))
    RESULTS[(cohort, task)] = per_model
    persist(f"figure6_{cohort}_{task}",
            render_figure6({(cohort, task): per_model}))

    auc_pr = {name: m["auc_pr"] for name, m in per_model.items()}
    best = max(auc_pr.values())
    pooled_best = max(auc_pr[name] for name in POOLED)

    # (1) ELDA-Net at or near the top, and at least at the pooled models'
    # level.  The paper's LOS margins are small (+0.5-2.5%) and ELDA-Net
    # is the slowest model to converge at reduced cohort sizes (see the
    # "Known reproduction gaps" section of EXPERIMENTS.md), hence a wide
    # band at small scale; REPRO_SCALE=paper narrows it.
    import os
    band = 0.10 if os.environ.get("REPRO_SCALE", "small") != "paper" else 0.02
    assert auc_pr["ELDA-Net"] >= best - band, (
        f"ELDA-Net AUC-PR {auc_pr['ELDA-Net']:.3f} vs best {best:.3f}")
    assert auc_pr["ELDA-Net"] >= pooled_best - 0.02

    # (2) Temporal models beat pooled models on average.
    temporal = [v for name, v in auc_pr.items() if name not in POOLED]
    assert np.mean(temporal) > np.mean([auc_pr[n] for n in POOLED])


def _load_cell_auc_pr(cohort, task):
    """Parse a persisted panel table back into {model: auc_pr}."""
    from conftest import RESULTS_DIR
    path = RESULTS_DIR / f"figure6_{cohort}_{task}.txt"
    if not path.exists():
        return None
    parsed = {}
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0] in FIGURE6_MODELS:
            parsed[parts[0]] = float(parts[3])
    return parsed


def test_figure6_cross_cell_claims(benchmark, persist):
    """Aggregated claims that need all four panels.

    Reads the per-cell tables persisted by the cell benchmarks (from this
    run or a previous one), so it works standalone under
    ``--benchmark-only``.
    """
    cells = {cell: _load_cell_auc_pr(*cell) for cell in CELLS}
    if any(v is None for v in cells.values()):
        pytest.skip("run the per-cell benchmarks first")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    names = list(next(iter(cells.values())))
    mean_pr = {name: np.mean([cells[cell][name] for cell in CELLS])
               for name in names}
    table = "\n".join(f"{name:<10} mean AUC-PR {value:.3f}"
                      for name, value in sorted(mean_pr.items(),
                                                key=lambda kv: -kv[1]))
    persist("figure6_grid_means", table)
    ranked = sorted(mean_pr, key=mean_pr.get, reverse=True)
    grid_best = mean_pr[ranked[0]]
    assert ("ELDA-Net" in ranked[:3]
            or mean_pr["ELDA-Net"] >= grid_best - 0.04),         f"grid ranking: {ranked}"

    # FM >= LR on average (pairwise interactions help).
    assert mean_pr["FM"] >= mean_pr["LR"] - 0.02
