"""Figure 7 — ablation over the ELDA-Net variants.

Paper findings checked as shapes (averaged over the four cells to damp
single-cell noise):

1. the full ELDA-Net is at least as good as every single-module variant;
2. the bi-directional embedding beats the FM embedding
   (``F_bi`` > ``F_fm`` and ``F_fm*``);
3. the ``*`` zero-handling helps FM (``F_fm*`` >= ``F_fm``) but hurts the
   bi-directional module (``F_bi`` >= ``F_bi*``), since it breaks the
   embedding's continuity.
"""

import numpy as np
import pytest
from conftest import run_once

from repro.core.elda_net import VARIANT_NAMES
from repro.experiments import render_figure7, run_grid

# The paper's Figure 7 has four panels; the default CPU budget covers the
# (dataset, task) diagonal — one panel per dataset and per task — and
# REPRO_SCALE=paper restores all four.
import os

if os.environ.get("REPRO_SCALE") == "paper":
    CELLS = (
        ("physionet2012", "mortality"),
        ("physionet2012", "los"),
        ("mimic3", "mortality"),
        ("mimic3", "los"),
    )
else:
    CELLS = (
        ("physionet2012", "mortality"),
        ("mimic3", "los"),
    )

RESULTS = {}


@pytest.mark.parametrize("cohort,task", CELLS)
def test_figure7_cell(benchmark, config, persist, cohort, task):
    per_model = run_once(
        benchmark,
        lambda: run_grid(VARIANT_NAMES, cohort, task, config))
    RESULTS[(cohort, task)] = per_model
    persist(f"figure7_{cohort}_{task}",
            render_figure7({(cohort, task): per_model}))
    # Every variant must produce a valid classifier in every cell.
    for name, metrics in per_model.items():
        assert 0.0 <= metrics["auc_roc"] <= 1.0, name


def _load_cell_auc_pr(cohort, task):
    """Parse a persisted ablation panel back into {variant: auc_pr}."""
    from conftest import RESULTS_DIR
    path = RESULTS_DIR / f"figure7_{cohort}_{task}.txt"
    if not path.exists():
        return None
    parsed = {}
    for line in path.read_text().splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0] in VARIANT_NAMES:
            parsed[parts[0]] = float(parts[3])
    return parsed


def test_figure7_cross_cell_claims(benchmark, persist):
    """Aggregated variant orderings; reads the persisted per-cell tables
    so it works standalone under ``--benchmark-only``."""
    cells = {cell: _load_cell_auc_pr(*cell) for cell in CELLS}
    if any(v is None for v in cells.values()):
        pytest.skip("run the per-cell benchmarks first")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    mean_pr = {name: np.mean([cells[cell][name] for cell in CELLS])
               for name in VARIANT_NAMES}
    persist("figure7_variant_means",
            "\n".join(f"{name:<14} mean AUC-PR {value:.3f}"
                      for name, value in sorted(mean_pr.items(),
                                                key=lambda kv: -kv[1])))

    # (1) Full model leads (tolerance for the reduced-scale protocol).
    best_variant = max(mean_pr.values())
    assert mean_pr["ELDA-Net"] >= best_variant - 0.05, mean_pr

    # (2) Bi-directional embedding beats the FM embedding on average.
    assert mean_pr["ELDA-Net-Fbi"] >= mean_pr["ELDA-Net-Ffm"] - 0.03, mean_pr

    # (3) The * modification: direction per the paper, with tolerance.
    assert mean_pr["ELDA-Net-Ffm*"] >= mean_pr["ELDA-Net-Ffm"] - 0.04, mean_pr
    assert mean_pr["ELDA-Net-Fbi"] >= mean_pr["ELDA-Net-Fbi*"] - 0.04, mean_pr
