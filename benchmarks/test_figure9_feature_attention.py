"""Figure 9 — Patient A's feature-level attention + controlled experiment.

Panel (a): attention grids over the ten case-study features at hour 13
(Glucose starts rising) and hour 35 (Glucose stabilized).

Panel (b): the same grids after rewriting Lactate to the population
normal — the paper shows the attention involving Lactate collapsing
toward the average level.

Shape assertions (directional; exact percentages are training-dependent):

1. grids are row-stochastic with a zero diagonal;
2. at the crisis hour, Glucose's attention on its DLA partners is at
   least at the level of the DLA-irrelevant pair (HCT, WBC) — the paper's
   relevant > irrelevant read, asserted with a tolerance band;
3. the Lactate normalization changes the attention paid to Lactate
   (column shift) in the crisis-hour grid.
"""

import numpy as np
from conftest import run_once

from repro.experiments import relevant_vs_irrelevant, render_table
from repro.experiments.figure9 import run_figure9


def _grid_table(matrix, names, title):
    rows = [[names[i]] + [f"{matrix[i, j] * 100:.1f}" for j in range(len(names))]
            for i in range(len(names))]
    return render_table(["%"] + list(names), rows, title=title)


def test_figure9(benchmark, config, persist, trained_elda):
    model, splits, _ = trained_elda
    result = run_once(
        benchmark, lambda: run_figure9(config, model=model, splits=splits))

    blocks = []
    for hour in result["hours"]:
        names = result[hour]["names"]
        blocks.append(_grid_table(result[hour]["original"], names,
                                  f"Figure 9a: attention at hour {hour}"))
        blocks.append(_grid_table(result[hour]["modified"], names,
                                  f"Figure 9b: hour {hour}, Lactate normalized"))
    persist("figure9_feature_attention", "\n\n".join(blocks))

    for hour in result["hours"]:
        grid = result[hour]["original"]
        assert np.allclose(grid.sum(axis=1), 1.0, atol=1e-6)
        assert np.all(np.diag(grid) == 0.0)

    # (2) Relevant vs irrelevant at the crisis hour, with tolerance.
    crisis = result[13]
    rel, irr = relevant_vs_irrelevant(crisis["original"], crisis["names"])
    assert rel > irr * 0.85, (rel, irr)

    # (3) The controlled experiment moves attention involving Lactate.
    names = crisis["names"]
    lact = names.index("Lactate")
    col_shift = np.abs(crisis["original"][:, lact]
                       - crisis["modified"][:, lact]).sum()
    row_shift = np.abs(crisis["original"][lact]
                       - crisis["modified"][lact]).sum()
    assert col_shift + row_shift > 1e-4, (col_shift, row_shift)
