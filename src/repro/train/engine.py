"""Event-driven training engine with durable, resumable run artifacts.

:class:`Engine` owns *only* the batch loop — shuffle, forward, backward,
clip, optimizer step — and emits events to an ordered list of
:class:`~repro.train.callbacks.Callback` objects.  Everything else the
old monolithic trainer hard-wired (early stopping, scheduler stepping,
timing, anomaly aborts, and the new checkpoint/metric artifacts) is a
callback; see :mod:`repro.train.callbacks`.

A run directory makes training durable::

    run_dir/
      config.json       # engine configuration (JSONLLogger)
      metrics.jsonl     # one JSON record per epoch (JSONLLogger)
      checkpoints/
        last/           # rolling resume point (Checkpointer)
        best/           # best-on-validation snapshot
        epoch_0004/     # optional periodic keeps (every=k)

Each checkpoint holds the model weights, the optimizer moments, the
batch-shuffling RNG state, the epoch counter, the full history so far,
and every stateful callback's state — :meth:`Engine.resume` restores
all of it, so an interrupted run continues bit-for-bit where it left
off (``tests/train/test_resume.py`` pins this).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..nn.backend import xp as np

from .. import nn
from ..data.dataset import iterate_batches
from ..metrics import (evaluate_all, evaluate_multiclass, sigmoid_probs,
                       softmax_probs)
from ..nn.losses import bce_with_logits, cross_entropy
from ..nn.serialization import (load_state, load_weights, save_state,
                                save_weights)

__all__ = ["Engine", "TrainingHistory"]

_CHECKPOINT_FORMAT = 1


@dataclass
class TrainingHistory:
    """Per-epoch record of losses, metrics, and timings."""

    train_loss: list = field(default_factory=list)
    val_loss: list = field(default_factory=list)
    val_auc_pr: list = field(default_factory=list)
    val_auc_roc: list = field(default_factory=list)
    seconds_per_batch: float = 0.0
    prediction_seconds_per_sample: float = 0.0
    best_epoch: int = -1

    @property
    def num_epochs(self):
        return len(self.train_loss)

    def to_dict(self):
        """JSON-able representation (checkpointed per epoch)."""
        return {
            "train_loss": list(self.train_loss),
            "val_loss": list(self.val_loss),
            "val_auc_pr": list(self.val_auc_pr),
            "val_auc_roc": list(self.val_auc_roc),
            "seconds_per_batch": self.seconds_per_batch,
            "prediction_seconds_per_sample":
                self.prediction_seconds_per_sample,
            "best_epoch": self.best_epoch,
        }

    @classmethod
    def from_dict(cls, state):
        history = cls()
        for key, value in state.items():
            setattr(history, key, value)
        return history


class Engine:
    """Minimal batch-loop owner; behaviors attach as callbacks.

    Parameters
    ----------
    model:
        Module with ``forward_batch(batch) -> logits``.
    task:
        Label column name (``"mortality"``, ``"los"``, ``"phenotype"``).
    optimizer:
        A :class:`repro.nn.Optimizer` over the model's parameters.
    num_classes:
        1 for binary tasks (sigmoid/BCE); > 1 for softmax/CE.
    batch_size, max_epochs, clip_norm:
        Loop settings (paper defaults 64 / 20 / 5.0).
    seed:
        Seed of the batch-shuffling RNG (its state is checkpointed).
    bucket_by_length:
        Draw training minibatches from a length-bucketed sampler (see
        :func:`repro.data.iterate_batches`) so mask-aware models skip
        padded timesteps; evaluation always iterates in order.
    callbacks:
        Ordered :class:`~repro.train.callbacks.Callback` stack; events
        reach callbacks in list order.
    run_dir:
        Optional run directory (used by :meth:`resume`; artifact
        callbacks carry their own copy of the path).
    config:
        JSON-able run configuration persisted to ``config.json`` by
        :class:`~repro.train.callbacks.JSONLLogger`.
    """

    def __init__(self, model, task, optimizer, *, num_classes=1,
                 batch_size=64, max_epochs=20, clip_norm=5.0, seed=0,
                 bucket_by_length=False, callbacks=(), run_dir=None,
                 config=None):
        self.model = model
        self.task = task
        self.optimizer = optimizer
        self.num_classes = num_classes
        self.batch_size = batch_size
        self.bucket_by_length = bucket_by_length
        self.max_epochs = max_epochs
        self.clip_norm = clip_norm
        self.callbacks = list(callbacks)
        self.run_dir = Path(run_dir) if run_dir is not None else None
        self.config = dict(config or {})
        self.rng = np.random.default_rng(seed)
        self.history = TrainingHistory()
        self.epoch = 0            # epochs completed so far
        self.should_stop = False
        self.stop_reason = None
        self.train_data = None
        self.validation_data = None

    # ------------------------------------------------------------------
    # Event plumbing
    # ------------------------------------------------------------------
    def _emit(self, event, *args):
        for callback in self.callbacks:
            getattr(callback, event)(self, *args)

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------
    def fit(self, train, validation):
        """Run the batch loop until ``max_epochs`` or a callback stops it.

        Returns the accumulated :class:`TrainingHistory`.  On a resumed
        engine the loop continues from the restored epoch counter.
        """
        self.train_data, self.validation_data = train, validation
        self.should_stop = False
        self._emit("on_fit_start")
        for epoch in range(self.epoch, self.max_epochs):
            self._emit("on_epoch_start", epoch)
            self.model.train()
            epoch_losses = []
            for batch_index, (batch, labels) in enumerate(
                    iterate_batches(train, self.task, self.batch_size,
                                    self.rng,
                                    bucket_by_length=self.bucket_by_length)):
                epoch_losses.append(
                    self._run_batch(epoch, batch_index, batch, labels))

            logs = {"train_loss": float(np.mean(epoch_losses))}
            val_metrics = self.evaluate(validation)
            logs["val_loss"] = val_metrics[
                "ce" if self.num_classes > 1 else "bce"]
            logs["val_auc_pr"] = val_metrics.get("auc_pr", float("nan"))
            logs["val_auc_roc"] = val_metrics.get("auc_roc", float("nan"))

            self.history.train_loss.append(logs["train_loss"])
            self.history.val_loss.append(logs["val_loss"])
            self.history.val_auc_pr.append(logs["val_auc_pr"])
            self.history.val_auc_roc.append(logs["val_auc_roc"])

            self.epoch = epoch + 1
            self._emit("on_epoch_end", epoch, logs)
            if self.should_stop:
                break
        self._emit("on_fit_end")
        return self.history

    def _run_batch(self, epoch, batch_index, batch, labels):
        """One optimizer step; returns the scalar loss value."""
        self._emit("on_batch_start", epoch, batch_index)
        loss_value = float("nan")
        try:
            self.optimizer.zero_grad()
            loss_value = self._forward_backward(batch, labels)
            self._emit("on_backward_end", epoch, batch_index, loss_value)
            nn.clip_grad_norm(self.model.parameters(), self.clip_norm)
            self.optimizer.step()
        finally:
            # Always emitted so context-holding callbacks (AnomalyGuard)
            # and timers unwind even when the step raised.
            self._emit("on_batch_end", epoch, batch_index, loss_value)
        return loss_value

    def _forward_backward(self, batch, labels):
        logits = self.model.forward_batch(batch)
        if self.num_classes > 1:
            loss = cross_entropy(logits, labels.astype(int))
        else:
            loss = bce_with_logits(
                logits, labels.astype(nn.get_default_dtype()))
        loss.backward()
        return loss.item()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def predict_proba(self, dataset):
        """Predicted probabilities per admission.

        Binary tasks return a vector of positive-class probabilities;
        multi-class tasks return an (N, K) softmax matrix.  The whole
        pass runs under :class:`~repro.nn.tensor.no_grad` (pinned by
        ``tests/train/test_eval_no_grad.py``) and the model's train/eval
        mode is restored on exit.

        Models carrying the shared inference protocol
        (:class:`repro.nn.InferenceMixin` — every registry model) are
        delegated to per batch, so training-time validation and the
        serving layer (:mod:`repro.serve`) run the *same* code path and
        agree bit-for-bit; duck-typed models exposing only
        ``forward_batch`` fall back to the inline sigmoid/softmax.
        """
        delegate = getattr(self.model, "predict_proba", None)
        outputs = []
        if delegate is not None:
            for batch, _ in iterate_batches(dataset, self.task,
                                            self.batch_size):
                outputs.append(delegate(batch))
        else:
            was_training = self.model.training
            self.model.eval()
            with nn.no_grad():
                for batch, _ in iterate_batches(dataset, self.task,
                                                self.batch_size):
                    logits = self.model.forward_batch(batch).data
                    if self.num_classes > 1:
                        outputs.append(softmax_probs(logits))
                    else:
                        outputs.append(sigmoid_probs(logits))
            self.model.train(was_training)
        return np.concatenate(outputs)

    def evaluate(self, dataset):
        """Task metrics of the current weights on a dataset.

        Binary tasks report the paper's triple (BCE / AUC-ROC / AUC-PR);
        multi-class tasks report cross-entropy and accuracy.
        """
        scores = self.predict_proba(dataset)
        labels = dataset.labels(self.task)
        if self.num_classes > 1:
            return evaluate_multiclass(scores, labels)
        return evaluate_all(labels, scores)

    def time_prediction(self, dataset):
        """Per-sample inference latency over a bounded probe subset."""
        import time
        if len(dataset) == 0:
            return 0.0
        probe = dataset.subset(
            np.arange(min(len(dataset), 4 * self.batch_size)))
        was_training = self.model.training
        self.model.eval()
        started = time.perf_counter()
        with nn.no_grad():
            for batch, _ in iterate_batches(probe, self.task,
                                            self.batch_size):
                self.model.forward_batch(batch)
        elapsed = time.perf_counter() - started
        self.model.train(was_training)
        return elapsed / len(probe)

    # ------------------------------------------------------------------
    # Durable checkpoints
    # ------------------------------------------------------------------
    def save_checkpoint(self, directory):
        """Write a complete resume point into ``directory``.

        Layout: ``weights.npz`` (model), ``optimizer.npz`` (moments),
        ``state.json`` (epoch counter, RNG state, history, callback
        scalars), plus one ``cb_<i>_<Class>.npz`` per callback with
        array state.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_weights(self.model, directory / "weights.npz")
        save_state(directory / "optimizer.npz", self.optimizer.state_dict())
        for key, callback in self._named_callbacks():
            arrays = callback.array_state()
            if arrays:
                np.savez_compressed(directory / f"{key}.npz", **arrays)
        state = {
            "format": _CHECKPOINT_FORMAT,
            "epoch": self.epoch,
            "task": self.task,
            "num_classes": self.num_classes,
            "rng_state": self.rng.bit_generator.state,
            "history": self.history.to_dict(),
            "callbacks": {key: callback.state_dict()
                          for key, callback in self._named_callbacks()},
        }
        with open(directory / "state.json", "w") as handle:
            json.dump(state, handle, indent=2, sort_keys=True)
            handle.write("\n")

    def load_checkpoint(self, directory):
        """Restore a checkpoint written by :meth:`save_checkpoint`."""
        directory = Path(directory)
        with open(directory / "state.json") as handle:
            state = json.load(handle)
        if state.get("format") != _CHECKPOINT_FORMAT:
            raise ValueError(f"unsupported checkpoint format "
                             f"{state.get('format')!r} in {directory}")
        load_weights(self.model, directory / "weights.npz")
        self.optimizer.load_state_dict(
            load_state(directory / "optimizer.npz"))
        self.rng.bit_generator.state = state["rng_state"]
        self.history = TrainingHistory.from_dict(state["history"])
        self.epoch = int(state["epoch"])
        saved = state.get("callbacks", {})
        for key, callback in self._named_callbacks():
            if key in saved:
                callback.load_state_dict(saved[key])
            arrays_path = directory / f"{key}.npz"
            if arrays_path.exists():
                with np.load(arrays_path) as archive:
                    callback.load_array_state(
                        {name: archive[name] for name in archive.files})
        return self

    def resume(self, run_dir=None):
        """Restore the rolling ``checkpoints/last`` resume point.

        ``run_dir`` defaults to the engine's own run directory.  A
        subsequent :meth:`fit` continues from the restored epoch with
        identical weights, optimizer moments, and shuffle RNG.
        """
        run_dir = Path(run_dir) if run_dir is not None else self.run_dir
        if run_dir is None:
            raise ValueError("resume needs a run directory (none configured)")
        checkpoint = run_dir / "checkpoints" / "last"
        if not (checkpoint / "state.json").exists():
            raise FileNotFoundError(
                f"no resumable checkpoint under {checkpoint}")
        return self.load_checkpoint(checkpoint)

    def _named_callbacks(self):
        """Stable per-checkpoint keys: stack index + class name."""
        return [(f"cb_{index:02d}_{type(callback).__name__}", callback)
                for index, callback in enumerate(self.callbacks)]
