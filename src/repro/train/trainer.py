"""Backward-compatible facade over the event-driven training engine.

Any model exposing ``forward_batch(batch) -> logits`` (where ``batch``
is an :class:`repro.data.EMRDataset` subset) can be trained.  The
trainer implements the paper's protocol — Adam at lr 1e-3, batch size
64, early stopping on the validation split with best-on-validation
weights restored — by assembling the default callback stack on a bare
:class:`~repro.train.engine.Engine`:

``[LRSchedulerCallback?] → BatchTimer → AnomalyGuard → EarlyStopping →
[Checkpointer → JSONLLogger]``

(the bracketed entries appear only when a scheduler / a ``run_dir`` is
configured).  The engine owns the batch loop; every behavior above is a
plugin, so callers needing checkpoint/resume, metric streams, or custom
hooks pass ``run_dir=...`` / ``callbacks=[...]`` instead of editing a
training loop.  See docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .callbacks import (AnomalyGuard, BatchTimer, Checkpointer,
                        EarlyStopping, JSONLLogger, LRSchedulerCallback)
from .engine import Engine, TrainingHistory
from .. import nn

__all__ = ["Trainer", "TrainingHistory"]


class Trainer:
    """Trains a sequence classifier with early stopping.

    Parameters
    ----------
    model:
        Module with ``forward_batch(batch) -> logits``.
    task:
        ``"mortality"`` or ``"los"``.
    lr, batch_size:
        Optimizer settings; paper defaults are 1e-3 and 64.
    max_epochs:
        Upper bound on training epochs.
    patience:
        Early-stopping patience in epochs on validation AUC-PR.
    clip_norm:
        Global gradient-norm clip (stabilizes recurrent models).
    seed:
        Seed for batch shuffling.
    monitor:
        Validation quantity for early stopping: ``"auc_pr"`` (default)
        or ``"loss"``.
    num_classes:
        1 for the paper's binary tasks; > 1 enables the multi-class
        (softmax / cross-entropy) path, e.g. for archetype phenotyping.
    scheduler_factory:
        Optional callable ``optimizer -> scheduler``; the scheduler's
        ``step`` is called once per epoch with the validation loss (e.g.
        ``lambda opt: nn.schedules.ReduceOnPlateau(opt)``).
    anomaly_mode:
        Run every training step under
        :class:`repro.nn.debug.detect_anomaly`, so the first NaN/Inf in
        any forward value or gradient raises immediately naming the
        offending op (CLI: ``--debug-anomaly``).  Independent of this
        flag, a non-finite training loss always aborts the run instead
        of silently training on garbage.
    bucket_by_length:
        Draw training minibatches from the length-bucketed sampler
        (:class:`repro.data.BucketSampler`) so same-length admissions
        share batches and mask-aware models skip padded timesteps;
        every admission still trains exactly once per epoch and the
        seed contract is preserved.
    run_dir:
        Optional run directory.  When given, every epoch streams to
        ``metrics.jsonl``, the configuration lands in ``config.json``,
        and rolling/best checkpoints are written under ``checkpoints/``
        (CLI: ``--run-dir``; resume with ``fit(..., resume=True)``).
    checkpoint_every:
        With a ``run_dir``, additionally keep a permanent checkpoint
        every k epochs (0 = only ``last``/``best``).
    callbacks:
        Extra :class:`~repro.train.callbacks.Callback` objects appended
        after the default stack.
    """

    def __init__(self, model, task, lr=1e-3, batch_size=64, max_epochs=20,
                 patience=4, clip_norm=5.0, seed=0, monitor="auc_pr",
                 num_classes=1, scheduler_factory=None, anomaly_mode=False,
                 bucket_by_length=False, run_dir=None, checkpoint_every=0,
                 callbacks=()):
        if num_classes > 1 and monitor == "auc_pr":
            monitor = "loss"
        if monitor not in ("auc_pr", "loss"):
            raise ValueError("monitor must be 'auc_pr' or 'loss'")
        self.model = model
        self.task = task
        self.num_classes = num_classes
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.clip_norm = clip_norm
        self.monitor = monitor
        self.anomaly_mode = anomaly_mode
        self.run_dir = run_dir
        self.optimizer = nn.Adam(model.parameters(), lr=lr)
        self.scheduler = (scheduler_factory(self.optimizer)
                          if scheduler_factory is not None else None)

        stack = []
        if self.scheduler is not None:
            stack.append(LRSchedulerCallback(self.scheduler))
        self.early_stopping = EarlyStopping(monitor=monitor,
                                            patience=patience)
        stack += [BatchTimer(), AnomalyGuard(anomaly_mode),
                  self.early_stopping]
        if run_dir is not None:
            stack += [Checkpointer(run_dir, every=checkpoint_every),
                      JSONLLogger(run_dir)]
        stack += list(callbacks)

        self.engine = Engine(
            model, task, self.optimizer, num_classes=num_classes,
            batch_size=batch_size, max_epochs=max_epochs,
            clip_norm=clip_norm, seed=seed,
            bucket_by_length=bucket_by_length, callbacks=stack,
            run_dir=run_dir,
            config={
                "model_class": type(model).__name__,
                "model_spec": (model.spec.to_dict()
                               if getattr(model, "spec", None) is not None
                               else None),
                "num_parameters": model.num_parameters(),
                "task": task, "num_classes": num_classes, "lr": lr,
                "batch_size": batch_size, "max_epochs": max_epochs,
                "patience": patience, "clip_norm": clip_norm,
                "seed": seed, "monitor": monitor,
                "bucket_by_length": bool(bucket_by_length),
                "dtype": np.dtype(nn.get_default_dtype()).name,
                "anomaly_mode": bool(anomaly_mode),
                "scheduler": (type(self.scheduler).__name__
                              if self.scheduler is not None else None),
            })

    # ------------------------------------------------------------------
    def fit(self, train, validation, resume=False):
        """Train until early stopping; returns a :class:`TrainingHistory`.

        The model is left holding its best-on-validation weights.  With
        ``resume=True`` the rolling checkpoint under
        ``run_dir/checkpoints/last`` is restored first (weights,
        optimizer moments, RNG state, epoch counter, callback state) and
        the loop continues from the saved epoch.
        """
        if resume:
            self.engine.resume()
        return self.engine.fit(train, validation)

    def predict_proba(self, dataset):
        """Predicted probabilities per admission (engine pass-through).

        .. deprecated::
            Inference through the trainer drags the whole training stack
            along.  Prefer ``model.predict_proba(batch)`` (the shared
            :class:`repro.nn.InferenceMixin` protocol) or
            :class:`repro.serve.Predictor` for checkpoint-backed,
            micro-batched serving; both return bit-identical
            probabilities.
        """
        import warnings
        warnings.warn(
            "Trainer.predict_proba is deprecated; use "
            "model.predict_proba(batch) or repro.serve.Predictor for "
            "inference (bit-identical outputs)",
            DeprecationWarning, stacklevel=2)
        return self.engine.predict_proba(dataset)

    def evaluate(self, dataset):
        """Task metrics of the current weights (engine pass-through)."""
        return self.engine.evaluate(dataset)

    @property
    def history(self):
        """The engine's accumulated :class:`TrainingHistory`."""
        return self.engine.history
