"""Generic training loop shared by ELDA-Net and every baseline.

Any model exposing ``forward_batch(batch) -> logits`` (where ``batch`` is
an :class:`repro.data.EMRDataset` subset) can be trained.  The trainer
implements the paper's protocol: Adam at lr 1e-3, batch size 64, early
stopping on the validation split, and the best-on-validation weights are
restored before test evaluation.  It also records per-batch training and
prediction wall-clock, which feeds the Table III reproduction.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from .. import nn
from ..data.dataset import iterate_batches
from ..metrics import evaluate_all
from ..nn.losses import bce_with_logits, cross_entropy

__all__ = ["Trainer", "TrainingHistory"]


@dataclass
class TrainingHistory:
    """Per-epoch record of losses, metrics, and timings."""

    train_loss: list = field(default_factory=list)
    val_loss: list = field(default_factory=list)
    val_auc_pr: list = field(default_factory=list)
    val_auc_roc: list = field(default_factory=list)
    seconds_per_batch: float = 0.0
    prediction_seconds_per_sample: float = 0.0
    best_epoch: int = -1

    @property
    def num_epochs(self):
        return len(self.train_loss)


class Trainer:
    """Trains a sequence classifier with early stopping.

    Parameters
    ----------
    model:
        Module with ``forward_batch(batch) -> logits``.
    task:
        ``"mortality"`` or ``"los"``.
    lr, batch_size:
        Optimizer settings; paper defaults are 1e-3 and 64.
    max_epochs:
        Upper bound on training epochs.
    patience:
        Early-stopping patience in epochs on validation AUC-PR.
    clip_norm:
        Global gradient-norm clip (stabilizes recurrent models).
    seed:
        Seed for batch shuffling.
    monitor:
        Validation quantity for early stopping: ``"auc_pr"`` (default)
        or ``"loss"``.
    num_classes:
        1 for the paper's binary tasks; > 1 enables the multi-class
        (softmax / cross-entropy) path, e.g. for archetype phenotyping.
    scheduler_factory:
        Optional callable ``optimizer -> scheduler``; the scheduler's
        ``step`` is called once per epoch with the validation loss (e.g.
        ``lambda opt: nn.schedules.ReduceOnPlateau(opt)``).
    anomaly_mode:
        Run every training step under
        :class:`repro.nn.debug.detect_anomaly`, so the first NaN/Inf in
        any forward value or gradient raises immediately naming the
        offending op (CLI: ``--debug-anomaly``).  Independent of this
        flag, a non-finite training loss always aborts the run instead
        of silently training on garbage.
    """

    def __init__(self, model, task, lr=1e-3, batch_size=64, max_epochs=20,
                 patience=4, clip_norm=5.0, seed=0, monitor="auc_pr",
                 num_classes=1, scheduler_factory=None, anomaly_mode=False):
        if num_classes > 1 and monitor == "auc_pr":
            monitor = "loss"
        if monitor not in ("auc_pr", "loss"):
            raise ValueError("monitor must be 'auc_pr' or 'loss'")
        self.model = model
        self.task = task
        self.num_classes = num_classes
        self.batch_size = batch_size
        self.max_epochs = max_epochs
        self.patience = patience
        self.clip_norm = clip_norm
        self.monitor = monitor
        self.anomaly_mode = anomaly_mode
        self.optimizer = nn.Adam(model.parameters(), lr=lr)
        self.scheduler = (scheduler_factory(self.optimizer)
                          if scheduler_factory is not None else None)
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def fit(self, train, validation):
        """Train until early stopping; returns a :class:`TrainingHistory`.

        The model is left holding its best-on-validation weights.
        """
        history = TrainingHistory()
        best_score = -np.inf
        best_state = self.model.state_dict()
        stall = 0
        batch_times = []

        for epoch in range(self.max_epochs):
            self.model.train()
            epoch_losses = []
            for batch_index, (batch, labels) in enumerate(
                    iterate_batches(train, self.task,
                                    self.batch_size, self._rng)):
                started = time.perf_counter()
                self.optimizer.zero_grad()
                loss_value = self._train_step(batch, labels)
                if not np.isfinite(loss_value):
                    raise nn.AnomalyError(
                        f"non-finite training loss ({loss_value}) at epoch "
                        f"{epoch}, batch {batch_index}; aborting instead of "
                        f"training on garbage — rerun with anomaly_mode=True "
                        f"(CLI: --debug-anomaly) to pinpoint the op")
                nn.clip_grad_norm(self.model.parameters(), self.clip_norm)
                self.optimizer.step()
                batch_times.append(time.perf_counter() - started)
                epoch_losses.append(loss_value)

            history.train_loss.append(float(np.mean(epoch_losses)))
            val_metrics = self.evaluate(validation)
            val_loss = val_metrics["ce" if self.num_classes > 1 else "bce"]
            history.val_loss.append(val_loss)
            history.val_auc_pr.append(val_metrics.get("auc_pr", float("nan")))
            history.val_auc_roc.append(val_metrics.get("auc_roc", float("nan")))

            if self.scheduler is not None:
                self.scheduler.step(val_loss)

            score = (-val_loss if self.monitor == "loss"
                     else val_metrics["auc_pr"])
            if np.isnan(score):
                score = -np.inf
            if score > best_score:
                best_score = score
                best_state = self.model.state_dict()
                history.best_epoch = epoch
                stall = 0
            else:
                stall += 1
                if stall >= self.patience:
                    break

        self.model.load_state_dict(best_state)
        history.seconds_per_batch = float(np.mean(batch_times)) if batch_times else 0.0
        history.prediction_seconds_per_sample = self._time_prediction(validation)
        return history

    # ------------------------------------------------------------------
    def _train_step(self, batch, labels):
        """Forward + backward for one minibatch; returns the loss value.

        Under ``anomaly_mode`` the whole step runs inside
        :class:`~repro.nn.debug.detect_anomaly`, so the first NaN/Inf
        raises at the op that produced it rather than surfacing later as
        a garbage loss.
        """
        if self.anomaly_mode:
            with nn.detect_anomaly():
                return self._forward_backward(batch, labels)
        return self._forward_backward(batch, labels)

    def _forward_backward(self, batch, labels):
        logits = self.model.forward_batch(batch)
        if self.num_classes > 1:
            loss = cross_entropy(logits, labels.astype(int))
        else:
            loss = bce_with_logits(logits, labels.astype(float))
        loss.backward()
        return loss.item()

    # ------------------------------------------------------------------
    def predict_proba(self, dataset):
        """Predicted probabilities per admission.

        Binary tasks return a vector of positive-class probabilities;
        multi-class tasks return an (N, K) softmax matrix.

        The whole pass runs under :class:`~repro.nn.tensor.no_grad`, so
        no backward-graph state (parents / closures /
        ``requires_grad=True`` outputs) is ever built for evaluation
        batches — ``tests/train/test_eval_no_grad.py`` pins this with
        the op profiler.  The model's train/eval mode is restored to
        whatever it was on entry rather than forced back to training.
        """
        was_training = self.model.training
        self.model.eval()
        outputs = []
        with nn.no_grad():
            for batch, _ in iterate_batches(dataset, self.task,
                                            self.batch_size):
                logits = self.model.forward_batch(batch).data
                if self.num_classes > 1:
                    shifted = logits - logits.max(axis=-1, keepdims=True)
                    exped = np.exp(shifted)
                    outputs.append(exped / exped.sum(axis=-1, keepdims=True))
                else:
                    outputs.append(1.0 / (1.0 + np.exp(-logits)))
        self.model.train(was_training)
        return np.concatenate(outputs)

    def evaluate(self, dataset):
        """Task metrics of the current weights on a dataset.

        Binary tasks report the paper's triple (BCE / AUC-ROC / AUC-PR);
        multi-class tasks report cross-entropy and accuracy.
        """
        scores = self.predict_proba(dataset)
        labels = dataset.labels(self.task)
        if self.num_classes > 1:
            picked = np.clip(scores[np.arange(len(labels)), labels.astype(int)],
                             1e-12, None)
            return {
                "ce": float(-np.log(picked).mean()),
                "accuracy": float((scores.argmax(axis=-1) == labels).mean()),
            }
        return evaluate_all(labels, scores)

    def _time_prediction(self, dataset):
        if len(dataset) == 0:
            return 0.0
        probe = dataset.subset(np.arange(min(len(dataset), 4 * self.batch_size)))
        was_training = self.model.training
        self.model.eval()
        started = time.perf_counter()
        with nn.no_grad():
            for batch, _ in iterate_batches(probe, self.task, self.batch_size):
                self.model.forward_batch(batch)
        elapsed = time.perf_counter() - started
        self.model.train(was_training)
        return elapsed / len(probe)
