"""Training stack: event-driven engine, callbacks, and the Trainer facade.

:class:`~repro.train.engine.Engine` owns the batch loop and emits
events; :mod:`repro.train.callbacks` implements every training behavior
(early stopping, schedulers, timing, anomaly aborts, checkpoints,
metric streams) as pluggable callbacks; :class:`Trainer` assembles the
default stack for the paper's protocol.  See docs/ARCHITECTURE.md.
"""

from .callbacks import (AnomalyGuard, BatchTimer, Callback, Checkpointer,
                        EarlyStopping, JSONLLogger, LRSchedulerCallback,
                        monitor_score)
from .engine import Engine, TrainingHistory
from .trainer import Trainer

__all__ = [
    "Trainer", "TrainingHistory", "Engine",
    "Callback", "EarlyStopping", "LRSchedulerCallback", "BatchTimer",
    "AnomalyGuard", "Checkpointer", "JSONLLogger", "monitor_score",
]
