"""Training harness (trainer with early stopping, history, timings)."""

from .trainer import Trainer, TrainingHistory

__all__ = ["Trainer", "TrainingHistory"]
