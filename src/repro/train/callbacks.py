"""Training callbacks: every cross-cutting training concern as a plugin.

The :class:`~repro.train.engine.Engine` owns only the batch loop; each
behavior the old monolithic trainer hard-wired — early stopping,
scheduler stepping, batch timing, anomaly aborts — plus the new run
artifacts (checkpoints, metric streams) is a :class:`Callback` here.
Callbacks receive events in stack order:

=====================  ==============================================
event                  when
=====================  ==============================================
``on_fit_start``       before the first epoch (after a resume restore)
``on_epoch_start``     before each epoch's batch loop
``on_batch_start``     before ``zero_grad`` (timers start here)
``on_backward_end``    after ``loss.backward()``, **before** clip/step
``on_batch_end``       after the optimizer step (or on a failed step)
``on_epoch_end``       after validation metrics for the epoch exist
``on_fit_end``         after training completes without error
=====================  ==============================================

Stateful callbacks additionally implement ``state_dict()`` (JSON-able
scalars) and ``array_state()`` (flat name → ndarray) so the engine can
checkpoint and resume them exactly.
"""

from __future__ import annotations

import json
import time
import warnings

from ..nn.backend import xp as np

from .. import nn

__all__ = ["Callback", "monitor_score", "EarlyStopping",
           "LRSchedulerCallback", "BatchTimer", "AnomalyGuard",
           "Checkpointer", "JSONLLogger"]


def monitor_score(logs, monitor):
    """Higher-is-better score of an epoch under a monitor name.

    ``"loss"`` monitors negated validation loss; ``"auc_pr"`` monitors
    validation AUC-PR directly.
    """
    if monitor == "loss":
        return -logs["val_loss"]
    return logs["val_auc_pr"]


class Callback:
    """Base class; override any subset of the event hooks.

    Every hook receives the :class:`~repro.train.engine.Engine`, so
    callbacks can read the model, optimizer, history, and run directory,
    and request a stop via ``engine.should_stop = True``.
    """

    def on_fit_start(self, engine):
        pass

    def on_epoch_start(self, engine, epoch):
        pass

    def on_batch_start(self, engine, epoch, batch_index):
        pass

    def on_backward_end(self, engine, epoch, batch_index, loss):
        pass

    def on_batch_end(self, engine, epoch, batch_index, loss):
        pass

    def on_epoch_end(self, engine, epoch, logs):
        pass

    def on_fit_end(self, engine):
        pass

    # ------------------------------------------------------------------
    # Checkpointing (optional)
    # ------------------------------------------------------------------
    def state_dict(self):
        """JSON-serializable scalar state (checkpointed per epoch)."""
        return {}

    def load_state_dict(self, state):
        pass

    def array_state(self):
        """Flat ``{name: ndarray}`` state too large for JSON."""
        return {}

    def load_array_state(self, arrays):
        pass


class EarlyStopping(Callback):
    """Stop when the monitored validation score stalls; restore the best.

    Implements the paper's protocol: track the best epoch under
    ``monitor`` (``"auc_pr"`` or ``"loss"``), stop after ``patience``
    epochs without improvement, and load the best-on-validation weights
    back into the model when training ends.

    If the monitored score is NaN on *every* epoch the best-weight
    restore falls back to the last epoch's weights (with a warning)
    instead of silently rewinding to the initial ones.
    """

    def __init__(self, monitor="auc_pr", patience=4, restore_best=True):
        self.monitor = monitor
        self.patience = patience
        self.restore_best = restore_best
        self.best_score = -np.inf
        self.stall = 0
        self.best_state = None

    def on_fit_start(self, engine):
        if self.best_state is None:
            self.best_state = engine.model.state_dict()

    def on_epoch_end(self, engine, epoch, logs):
        score = monitor_score(logs, self.monitor)
        if np.isnan(score):
            score = -np.inf
        if score > self.best_score:
            self.best_score = score
            self.best_state = engine.model.state_dict()
            engine.history.best_epoch = epoch
            self.stall = 0
        else:
            self.stall += 1
            if self.stall >= self.patience:
                engine.should_stop = True
                engine.stop_reason = (
                    f"early stopping: no {self.monitor} improvement in "
                    f"{self.patience} epochs")

    def on_fit_end(self, engine):
        if not self.restore_best:
            return
        if engine.history.best_epoch >= 0:
            engine.model.load_state_dict(self.best_state)
        elif engine.history.num_epochs > 0:
            # Degenerate run: the monitor was NaN every epoch, so no
            # epoch ever registered as "best".  Keep the last epoch's
            # weights (the model already holds them) rather than
            # rewinding to the untrained initial state.
            engine.history.best_epoch = engine.history.num_epochs - 1
            warnings.warn(
                f"monitored score {self.monitor!r} was NaN every epoch; "
                "keeping the last epoch's weights instead of restoring "
                "initial ones", RuntimeWarning, stacklevel=2)

    # ------------------------------------------------------------------
    def state_dict(self):
        return {"best_score": float(self.best_score), "stall": int(self.stall)}

    def load_state_dict(self, state):
        self.best_score = float(state["best_score"])
        self.stall = int(state["stall"])

    def array_state(self):
        return dict(self.best_state) if self.best_state is not None else {}

    def load_array_state(self, arrays):
        if arrays:
            self.best_state = dict(arrays)


class LRSchedulerCallback(Callback):
    """Step a learning-rate scheduler once per epoch with the val loss."""

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def on_epoch_end(self, engine, epoch, logs):
        self.scheduler.step(logs["val_loss"])

    def state_dict(self):
        getter = getattr(self.scheduler, "state_dict", None)
        return dict(getter()) if getter is not None else {}

    def load_state_dict(self, state):
        setter = getattr(self.scheduler, "load_state_dict", None)
        if setter is not None and state:
            setter(state)


class BatchTimer(Callback):
    """Record per-batch wall-clock; feeds the Table III timing columns.

    At fit end, writes the mean seconds-per-batch and the per-sample
    prediction latency (measured on the validation split) into the
    engine's :class:`~repro.train.engine.TrainingHistory`.
    """

    def __init__(self):
        self.batch_times = []
        self._started = None

    def on_batch_start(self, engine, epoch, batch_index):
        self._started = time.perf_counter()

    def on_batch_end(self, engine, epoch, batch_index, loss):
        if self._started is not None:
            self.batch_times.append(time.perf_counter() - self._started)
            self._started = None

    def on_fit_end(self, engine):
        engine.history.seconds_per_batch = (
            float(np.mean(self.batch_times)) if self.batch_times else 0.0)
        if engine.validation_data is not None:
            engine.history.prediction_seconds_per_sample = (
                engine.time_prediction(engine.validation_data))


class AnomalyGuard(Callback):
    """Abort on garbage losses; optionally run under anomaly detection.

    Independent of ``anomaly_mode``, a non-finite training loss aborts
    the run *before* the optimizer step (the old trainer's behavior).
    With ``anomaly_mode=True`` every batch runs inside
    :class:`repro.nn.debug.detect_anomaly`, so the first NaN/Inf raises
    at the op that produced it.
    """

    def __init__(self, anomaly_mode=False):
        self.anomaly_mode = anomaly_mode
        self._context = None

    def on_batch_start(self, engine, epoch, batch_index):
        if self.anomaly_mode:
            self._context = nn.detect_anomaly()
            self._context.__enter__()

    def on_backward_end(self, engine, epoch, batch_index, loss):
        if not np.isfinite(loss):
            raise nn.AnomalyError(
                f"non-finite training loss ({loss}) at epoch {epoch}, "
                f"batch {batch_index}; aborting instead of training on "
                f"garbage — rerun with anomaly_mode=True "
                f"(CLI: --debug-anomaly) to pinpoint the op")

    def on_batch_end(self, engine, epoch, batch_index, loss):
        if self._context is not None:
            self._context.__exit__(None, None, None)
            self._context = None


class Checkpointer(Callback):
    """Durable ``.npz`` checkpoints under ``run_dir/checkpoints/``.

    Writes ``last/`` after every epoch (what :meth:`Engine.resume` loads)
    and ``best/`` whenever the epoch just finished is the monitored best.
    ``every=k`` additionally keeps a permanent ``epoch_%04d/`` snapshot
    every k epochs.  Best detection reads ``history.best_epoch``, so
    order this callback *after* :class:`EarlyStopping` in the stack.
    """

    def __init__(self, run_dir, every=0, keep_best=True):
        from pathlib import Path
        self.run_dir = Path(run_dir)
        self.every = int(every)
        self.keep_best = keep_best

    def on_epoch_end(self, engine, epoch, logs):
        root = self.run_dir / "checkpoints"
        engine.save_checkpoint(root / "last")
        if self.keep_best and engine.history.best_epoch == epoch:
            engine.save_checkpoint(root / "best")
        if self.every > 0 and (epoch + 1) % self.every == 0:
            engine.save_checkpoint(root / f"epoch_{epoch:04d}")


class JSONLLogger(Callback):
    """Stream per-epoch metrics into ``run_dir/metrics.jsonl``.

    A fresh fit also writes the engine's configuration to
    ``run_dir/config.json``; a resumed fit appends to the existing
    stream so the run directory stays a complete replayable record.
    """

    def __init__(self, run_dir):
        from pathlib import Path
        self.run_dir = Path(run_dir)

    def on_fit_start(self, engine):
        self.run_dir.mkdir(parents=True, exist_ok=True)
        if engine.epoch == 0:
            with open(self.run_dir / "config.json", "w") as handle:
                json.dump(engine.config, handle, indent=2, sort_keys=True)
                handle.write("\n")
            # Truncate any stale stream from a previous run in this dir.
            open(self.run_dir / "metrics.jsonl", "w").close()

    def on_epoch_end(self, engine, epoch, logs):
        record = {"epoch": epoch, "lr": float(engine.optimizer.lr)}
        record.update({key: _jsonable(value) for key, value in logs.items()})
        with open(self.run_dir / "metrics.jsonl", "a") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def _jsonable(value):
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    return value
