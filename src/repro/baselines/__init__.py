"""Baseline models from the paper's Figure 6 / Table III comparison."""

from .concare import ConCare, PerFeatureGRU
from .dipole import Dipole
from .gru import GRUClassifier
from .grud import GRUD
from .pooled import AttentionalFM, FactorizationMachine, LogisticRegression
from .registry import (ALL_MODEL_NAMES, BASELINE_NAMES, MODEL_ALIASES,
                       UnknownModelError, build_model, canonical_name)
from .retain import RETAIN
from .sand import SAnD
from .spec import ModelSpec
from .stagenet import StageNet

__all__ = [
    "LogisticRegression", "FactorizationMachine", "AttentionalFM",
    "GRUClassifier", "RETAIN", "Dipole", "SAnD", "StageNet", "GRUD",
    "ConCare", "PerFeatureGRU",
    "BASELINE_NAMES", "ALL_MODEL_NAMES", "MODEL_ALIASES",
    "UnknownModelError", "canonical_name", "build_model", "ModelSpec",
]
