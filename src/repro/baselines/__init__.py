"""Baseline models from the paper's Figure 6 / Table III comparison."""

from .concare import ConCare, PerFeatureGRU
from .dipole import Dipole
from .gru import GRUClassifier
from .grud import GRUD
from .pooled import AttentionalFM, FactorizationMachine, LogisticRegression
from .registry import ALL_MODEL_NAMES, BASELINE_NAMES, build_model
from .retain import RETAIN
from .sand import SAnD
from .stagenet import StageNet

__all__ = [
    "LogisticRegression", "FactorizationMachine", "AttentionalFM",
    "GRUClassifier", "RETAIN", "Dipole", "SAnD", "StageNet", "GRUD",
    "ConCare", "PerFeatureGRU",
    "BASELINE_NAMES", "ALL_MODEL_NAMES", "build_model",
]
