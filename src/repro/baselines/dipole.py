"""Dipole baselines (Ma et al., KDD 2017).

A bidirectional GRU backbone with one of three attention mechanisms over
the hidden states:

* ``location`` (Dipole_l) — score each step from its own state;
* ``general``  (Dipole_g) — bilinear score against the last state;
* ``concat``   (Dipole_c) — additive (Bahdanau) score against the last
  state.

The attended context is fused with the final state through a tanh layer
before the output head.  The attention weights are exposed for the
time-level interpretability comparison of Figure 8 (the paper contrasts
ELDA's β with Dipole_c's weights).
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.layers import (AdditiveAttention, BiGRU, Dense, GeneralAttention,
                         LocationAttention)
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["Dipole"]

_VARIANTS = ("location", "general", "concat")


class Dipole(Module, InferenceMixin):
    """Attention-based bidirectional GRU.

    Parameters
    ----------
    variant:
        ``"location"``, ``"general"``, or ``"concat"``.
    hidden_size:
        Per-direction GRU size; hidden states have 2x this width.
    """

    def __init__(self, num_features, rng, variant="location", hidden_size=48,
                 attention_size=32):
        super().__init__()
        if variant not in _VARIANTS:
            raise ValueError(f"unknown Dipole variant {variant!r}; "
                             f"choose from {_VARIANTS}")
        self.variant = variant
        self.encoder = BiGRU(num_features, hidden_size, rng)
        state_size = 2 * hidden_size
        if variant == "location":
            self.attention = LocationAttention(state_size, rng)
        elif variant == "general":
            self.attention = GeneralAttention(state_size, rng)
        else:
            self.attention = AdditiveAttention(state_size, attention_size, rng)
        self.fuse = Dense(2 * state_size, state_size, rng, activation="tanh")
        self.weight = Parameter(nn.init.glorot_uniform((state_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        logits, _ = self.forward(nn.Tensor(batch.values))
        return logits

    def forward(self, values, return_attention=False):
        """Return logits and (optionally) the per-step attention weights."""
        states = self.encoder(values)                    # (B, T, 2H)
        last = states[:, -1, :]
        earlier = states[:, :-1, :]
        if self.variant == "location":
            scores = self.attention(earlier)
        else:
            scores = self.attention(last, earlier)
        weights = ops.softmax(scores, axis=1)            # (B, T-1, 1)
        context = ops.sum(weights * earlier, axis=1)
        fused = self.fuse(ops.concat([context, last], axis=-1))
        logits = (ops.matmul(fused, self.weight) + self.bias).reshape(-1)
        if return_attention:
            return logits, weights.reshape(weights.shape[0], weights.shape[1])
        return logits, None
