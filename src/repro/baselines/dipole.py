"""Dipole baselines (Ma et al., KDD 2017).

A bidirectional GRU backbone with one of three attention mechanisms over
the hidden states:

* ``location`` (Dipole_l) — score each step from its own state;
* ``general``  (Dipole_g) — bilinear score against the last state;
* ``concat``   (Dipole_c) — additive (Bahdanau) score against the last
  state.

The attended context is fused with the final state through a tanh layer
before the output head.  The attention weights are exposed for the
time-level interpretability comparison of Figure 8 (the paper contrasts
ELDA's β with Dipole_c's weights).
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.dtype import get_default_dtype
from ..nn.layers import (AdditiveAttention, BiGRU, Dense, GeneralAttention,
                         LocationAttention)
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["Dipole"]

_VARIANTS = ("location", "general", "concat")


class Dipole(Module, InferenceMixin):
    """Attention-based bidirectional GRU.

    Parameters
    ----------
    variant:
        ``"location"``, ``"general"``, or ``"concat"``.
    hidden_size:
        Per-direction GRU size; hidden states have 2x this width.
    """

    def __init__(self, num_features, rng, variant="location", hidden_size=48,
                 attention_size=32):
        super().__init__()
        if variant not in _VARIANTS:
            raise ValueError(f"unknown Dipole variant {variant!r}; "
                             f"choose from {_VARIANTS}")
        self.variant = variant
        self.encoder = BiGRU(num_features, hidden_size, rng)
        state_size = 2 * hidden_size
        if variant == "location":
            self.attention = LocationAttention(state_size, rng)
        elif variant == "general":
            self.attention = GeneralAttention(state_size, rng)
        else:
            self.attention = AdditiveAttention(state_size, attention_size, rng)
        self.fuse = Dense(2 * state_size, state_size, rng, activation="tanh")
        self.weight = Parameter(nn.init.glorot_uniform((state_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        logits, _ = self.forward(nn.Tensor(batch.values))
        return logits

    def forward(self, values, return_attention=False):
        """Return logits and (optionally) the per-step attention weights."""
        return self._attend(self.encoder(values), return_attention)

    def _attend(self, states, return_attention=False):
        """The attention readout over the bidirectional states.

        Split from :meth:`forward` so the streaming path can feed states
        assembled from its incremental forward-direction cache.  Raises
        on single-step prefixes (there are no earlier states to attend
        over) — the streaming session keeps the buffered observation and
        serves it once a second step arrives.
        """
        last = states[:, -1, :]
        earlier = states[:, :-1, :]
        if self.variant == "location":
            scores = self.attention(earlier)
        else:
            scores = self.attention(last, earlier)
        weights = ops.softmax(scores, axis=1)            # (B, T-1, 1)
        context = ops.sum(weights * earlier, axis=1)
        fused = self.fuse(ops.concat([context, last], axis=-1))
        logits = (ops.matmul(fused, self.weight) + self.bias).reshape(-1)
        if return_attention:
            return logits, weights.reshape(weights.shape[0], weights.shape[1])
        return logits, None

    # -- streaming inference (serve tier) ------------------------------
    stream_incremental = True

    def stream_begin(self, batch_size):
        return {
            "h": self.encoder.forward_gru.initial_state(batch_size),
            "fwd": [],
            "values": [],
        }

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Incremental streaming: advance the forward GRU in O(1).

        The forward-direction recurrence advances through
        :func:`repro.nn.ops.gru_scan_step` (bit-identical to the fused
        scan the full forward uses) and its states accumulate in the
        cache; only the *backward* GRU — whose every state depends on
        the newest step — reruns over the buffered prefix, as does the
        attention readout.  The new observation is recorded into the
        state before the readout, so the one-step prefix (which raises:
        no earlier states) is retained and served at the next step.
        """
        v_t = np.asarray(values_t, dtype=get_default_dtype())
        state["values"].append(v_t)
        state["h"] = self.encoder.forward_gru.stream_step(v_t, state["h"])
        state["fwd"].append(state["h"])
        values = np.stack(state["values"], axis=1)
        bwd = self.encoder.backward_gru(
            nn.Tensor(values[:, ::-1, :]))[:, ::-1, :]
        states = ops.concat(
            [nn.Tensor(np.stack(state["fwd"], axis=1)), bwd], axis=-1)
        logits, _ = self._attend(states)
        return state, logits
