"""GRU-D baseline (Che et al., Scientific Reports 2018).

GRU with trainable exponential decay on both the inputs and the hidden
state, driven by the time since each feature was last observed:

    γ_x(t) = exp(-max(0, w_x ⊙ δ_t))        input decay toward the mean
    γ_h(t) = exp(-max(0, W_h δ_t + b_h))    hidden-state decay
    x̂_t   = m_t x_t + (1 - m_t)(γ_x x'_t + (1 - γ_x) x̄)

where ``m`` is the observation mask, ``x'`` the last observed value, and
``x̄`` the empirical mean (zero after standardization).  The GRU then
consumes ``[x̂_t ; m_t]``.

By default the whole sequence runs through the sequence-fused
:func:`repro.nn.ops.grud_scan` kernel (one graph node, every decay and
gate projection hoisted into pre-loop GEMMs, one hand-derived backward);
set ``fused_scan=False`` for the step-unrolled reference path.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.dtype import get_default_dtype
from ..nn.layers import GRUCell
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["GRUD"]


class GRUD(Module, InferenceMixin):
    """Decay-augmented GRU for irregularly observed series.

    Operates on the dataset's LOCF-imputed values (which equal the last
    observation when unobserved and the true value when observed), the
    observation mask, and the per-feature observation deltas.
    """

    def __init__(self, num_features, rng, hidden_size=64, fused_scan=True):
        super().__init__()
        self.num_features = num_features
        self.hidden_size = hidden_size
        self.fused_scan = fused_scan
        self.input_decay = Parameter(np.full(num_features, 0.1))
        self.hidden_decay_w = Parameter(
            nn.init.glorot_uniform((num_features, hidden_size), rng))
        self.hidden_decay_b = Parameter(np.zeros(hidden_size))
        self.cell = GRUCell(2 * num_features, hidden_size, rng)
        self.weight = Parameter(nn.init.glorot_uniform((hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        values = nn.Tensor(batch.values)                # LOCF-imputed x'
        deltas = nn.Tensor(batch.deltas)
        batch_size, steps, _ = values.shape
        h0 = nn.Tensor(np.zeros((batch_size, self.hidden_size)))
        if self.fused_scan and self.cell.fused:
            cell = self.cell
            h = ops.grud_scan(values, batch.mask, deltas, h0,
                              self.input_decay, self.hidden_decay_w,
                              self.hidden_decay_b, cell.w_ih, cell.w_hh,
                              cell.b_ih, cell.b_hh)
        else:
            h = self._reference_forward(values, nn.Tensor(batch.mask),
                                        deltas, h0, steps)
        return (ops.matmul(h, self.weight) + self.bias).reshape(-1)

    def _reference_forward(self, values, mask, deltas, h, steps):
        """The step-unrolled composition (ground truth for the scan)."""
        value_steps = ops.unbind_time(values)
        delta_steps = ops.unbind_time(deltas)
        mask_steps = ops.unbind_time(mask)
        for t in range(steps):
            delta_t = delta_steps[t]
            v_t = value_steps[t]
            m_t = mask_steps[t]
            # Input decay toward the (zero) global mean.
            gamma_x = ops.exp(-ops.relu(delta_t * self.input_decay))
            x_hat = m_t * v_t + (1.0 - m_t) * gamma_x * v_t
            # Hidden-state decay.
            gamma_h = ops.exp(-ops.relu(
                ops.matmul(delta_t, self.hidden_decay_w) + self.hidden_decay_b))
            h = self.cell(ops.concat([x_hat, m_t], axis=-1), gamma_h * h)
        return h

    # -- streaming inference (serve tier) ------------------------------
    stream_native = True

    def stream_begin(self, batch_size):
        return {"h": np.zeros((batch_size, self.hidden_size),
                              dtype=get_default_dtype())}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """One decayed GRU-D update on plain arrays, O(1) in prefix length.

        Runs :func:`repro.nn.ops.grud_scan_step` — bit-identical to one
        step of the fused scan that :meth:`forward_batch` uses — so the
        streamed logits match the full forward at every prefix
        bit-for-bit.
        """
        dtype = get_default_dtype()
        v_t = np.asarray(values_t, dtype=dtype)
        n, channels = v_t.shape
        m_t = (np.ones((n, channels), dtype=dtype) if mask_t is None
               else np.asarray(mask_t).astype(dtype))
        d_t = (np.zeros((n, channels), dtype=dtype) if deltas_t is None
               else np.asarray(deltas_t, dtype=dtype))
        cell = self.cell
        h = ops.grud_scan_step(
            v_t, m_t, d_t, state["h"], self.input_decay.data,
            self.hidden_decay_w.data, self.hidden_decay_b.data,
            cell.w_ih.data, cell.w_hh.data, cell.b_ih.data, cell.b_hh.data)
        logits = np.matmul(h, self.weight.data)
        logits += self.bias.data
        return {"h": h}, logits.reshape(-1)
