"""GRU-D baseline (Che et al., Scientific Reports 2018).

GRU with trainable exponential decay on both the inputs and the hidden
state, driven by the time since each feature was last observed:

    γ_x(t) = exp(-max(0, w_x ⊙ δ_t))        input decay toward the mean
    γ_h(t) = exp(-max(0, W_h δ_t + b_h))    hidden-state decay
    x̂_t   = m_t x_t + (1 - m_t)(γ_x x'_t + (1 - γ_x) x̄)

where ``m`` is the observation mask, ``x'`` the last observed value, and
``x̄`` the empirical mean (zero after standardization).  The GRU then
consumes ``[x̂_t ; m_t]``.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.layers import GRUCell
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["GRUD"]


class GRUD(Module, InferenceMixin):
    """Decay-augmented GRU for irregularly observed series.

    Operates on the dataset's LOCF-imputed values (which equal the last
    observation when unobserved and the true value when observed), the
    observation mask, and the per-feature observation deltas.
    """

    def __init__(self, num_features, rng, hidden_size=64):
        super().__init__()
        self.num_features = num_features
        self.hidden_size = hidden_size
        self.input_decay = Parameter(np.full(num_features, 0.1))
        self.hidden_decay_w = Parameter(
            nn.init.glorot_uniform((num_features, hidden_size), rng))
        self.hidden_decay_b = Parameter(np.zeros(hidden_size))
        self.cell = GRUCell(2 * num_features, hidden_size, rng)
        self.weight = Parameter(nn.init.glorot_uniform((hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        values = nn.Tensor(batch.values)                # LOCF-imputed x'
        mask = nn.Tensor(batch.mask)                    # constant 0/1
        deltas = nn.Tensor(batch.deltas)
        batch_size, steps, _ = values.shape

        h = nn.Tensor(np.zeros((batch_size, self.hidden_size)))
        value_steps = ops.unbind_time(values)
        delta_steps = ops.unbind_time(deltas)
        mask_steps = ops.unbind_time(mask)
        for t in range(steps):
            delta_t = delta_steps[t]
            v_t = value_steps[t]
            m_t = mask_steps[t]
            # Input decay toward the (zero) global mean.
            gamma_x = ops.exp(-ops.relu(delta_t * self.input_decay))
            x_hat = m_t * v_t + (1.0 - m_t) * gamma_x * v_t
            # Hidden-state decay.
            gamma_h = ops.exp(-ops.relu(
                ops.matmul(delta_t, self.hidden_decay_w) + self.hidden_decay_b))
            h = self.cell(ops.concat([x_hat, m_t], axis=-1), gamma_h * h)
        return (ops.matmul(h, self.weight) + self.bias).reshape(-1)

    # -- streaming inference (serve tier) ------------------------------
    stream_native = True

    def stream_begin(self, batch_size):
        return {"h": nn.Tensor(np.zeros((batch_size, self.hidden_size)))}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """One decayed GRU-D update — the per-step loop body verbatim.

        Runs the same tensor ops as :meth:`forward_batch` on one
        timestep slice (the caller holds ``eval()`` + ``no_grad``), so
        the streamed logits match the full forward at every prefix
        bit-for-bit.
        """
        n, channels = np.asarray(values_t).shape
        v_t = nn.Tensor(values_t)
        m_t = nn.Tensor(np.ones((n, channels), dtype=bool)
                        if mask_t is None else mask_t)
        delta_t = nn.Tensor(np.zeros((n, channels))
                            if deltas_t is None else deltas_t)
        gamma_x = ops.exp(-ops.relu(delta_t * self.input_decay))
        x_hat = m_t * v_t + (1.0 - m_t) * gamma_x * v_t
        gamma_h = ops.exp(-ops.relu(
            ops.matmul(delta_t, self.hidden_decay_w) + self.hidden_decay_b))
        h = self.cell(ops.concat([x_hat, m_t], axis=-1),
                      gamma_h * state["h"])
        logits = (ops.matmul(h, self.weight) + self.bias).reshape(-1)
        return {"h": h}, logits
