"""SAnD baseline (Song et al., AAAI 2018): attend-and-diagnose.

A transformer-style encoder for clinical time series: input embedding +
sinusoidal positional encoding, a stack of masked (causal) multi-head
self-attention blocks with feed-forward sublayers and layer norm, followed
by *dense interpolation* over the time axis and a linear head.

Dense interpolation follows the original paper: the T step representations
are summarized into M pseudo-timestamps with fixed triangular weights
``w_mt = (1 - |s_t - m| / M)^2`` where ``s_t = m * t / T``.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.dtype import get_default_dtype
from ..nn.layers import Dense, LayerNorm, MultiHeadSelfAttention, positional_encoding
from ..nn.inference import InferenceMixin
from ..nn.module import Module, ModuleList, Parameter

__all__ = ["SAnD"]


class _EncoderBlock(Module):
    """One transformer block: causal self-attention + FFN, pre-norm residuals."""

    def __init__(self, model_size, num_heads, ffn_size, rng):
        super().__init__()
        self.attention = MultiHeadSelfAttention(model_size, num_heads, rng,
                                                causal=True)
        self.norm1 = LayerNorm(model_size)
        self.ffn_in = Dense(model_size, ffn_size, rng, activation="relu")
        self.ffn_out = Dense(ffn_size, model_size, rng)
        self.norm2 = LayerNorm(model_size)

    def forward(self, x):
        x = x + self.attention(self.norm1(x))
        x = x + self.ffn_out(self.ffn_in(self.norm2(x)))
        return x


def dense_interpolation_weights(steps, factor):
    """The SAnD dense-interpolation weight matrix, shape (factor, steps)."""
    weights = np.empty((factor, steps))
    for t in range(steps):
        s = factor * (t + 1) / steps
        for m in range(1, factor + 1):
            weights[m - 1, t] = (1.0 - abs(s - m) / factor) ** 2
    return weights


class SAnD(Module, InferenceMixin):
    """Masked self-attention classifier for clinical sequences.

    Default sizes land near the ~106k parameters of the paper's Table III.
    """

    def __init__(self, num_features, rng, model_size=64, num_heads=4,
                 num_blocks=2, ffn_size=128, interpolation=12):
        super().__init__()
        self.model_size = model_size
        self.interpolation = interpolation
        self.embed = Dense(num_features, model_size, rng)
        self.blocks = ModuleList([
            _EncoderBlock(model_size, num_heads, ffn_size, rng)
            for _ in range(num_blocks)
        ])
        self.weight = Parameter(
            nn.init.glorot_uniform((interpolation * model_size, 1), rng))
        self.bias = Parameter(np.zeros(1))
        self._interp_cache = {}

    def forward_batch(self, batch):
        values = nn.Tensor(batch.values)
        steps = values.shape[1]
        x = self.embed(values) + positional_encoding(steps, self.model_size)
        return self._finish(x, steps)

    def _finish(self, x, steps):
        """Encoder blocks + dense interpolation + head over embedded input.

        Split from :meth:`forward_batch` so the streaming path can feed
        its cache of already-embedded (and position-encoded) rows.
        """
        for block in self.blocks:
            x = block(x)
        interp = self._interp_cache.get(steps)
        if interp is None:
            interp = nn.Tensor(dense_interpolation_weights(steps,
                                                           self.interpolation))
            self._interp_cache[steps] = interp
        # (M, T) @ (B, T, D) -> (B, M, D), flattened for the head.
        pooled = ops.matmul(interp, x)
        flat = pooled.reshape(pooled.shape[0],
                              self.interpolation * self.model_size)
        return (ops.matmul(flat, self.weight) + self.bias).reshape(-1)

    # -- streaming inference (serve tier) ------------------------------
    stream_incremental = True

    def stream_begin(self, batch_size):
        return {"rows": []}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Incremental streaming: embed + position-encode only the new row.

        The input projection and sinusoidal position of each timestep
        are computed once and cached (each positional row depends only
        on its own index, so it never changes as the prefix grows).  The
        causal attention blocks rerun over the cached rows: caching
        per-position attention outputs is *not* bit-stable — extending
        the key dimension of the QK^T and context GEMMs changes the BLAS
        reduction order for the already-seen positions — so the blocks
        are the O(t²) remainder.  The dense-interpolation weights also
        depend on the total prefix length, forcing the pooled readout to
        rerun regardless.  The one-step prefix is served via the exact
        full forward (its embedding GEMM runs in the GEMV regime).
        """
        v_t = np.asarray(values_t, dtype=get_default_dtype())
        row = ops.linear_rows(v_t, self.embed.weight.data,
                              self.embed.bias.data)
        steps = len(state["rows"]) + 1
        row += positional_encoding(steps, self.model_size).data[steps - 1]
        state["rows"].append(row)
        if steps == 1:
            values = nn.Tensor(v_t[:, None, :])
            x = self.embed(values) + positional_encoding(1, self.model_size)
            return state, self._finish(x, 1)
        x = nn.Tensor(np.stack(state["rows"], axis=1))
        return state, self._finish(x, steps)
