"""Non-temporal baselines: LR, FM, and AFM.

Per the paper's protocol these models consume, for each admission, the
mean over time of each feature's values — a 37-dimensional static vector.

* :class:`LogisticRegression` — linear model (Hosmer et al.);
* :class:`FactorizationMachine` — Rendle 2010, Eq. 1 of the paper, with
  the O(C·e) inner-product identity;
* :class:`AttentionalFM` — Xiao et al. 2017: pairwise element-wise
  products scored by a small attention MLP and pooled with softmax
  weights.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["LogisticRegression", "FactorizationMachine", "AttentionalFM",
           "pooled_input"]


def pooled_input(batch):
    """Mean over time of the standardized, imputed values: (B, C).

    Routed through :func:`repro.nn.ops.mean` (not raw array math) so the
    pooling is visible to inference graph capture.
    """
    return ops.mean(nn.Tensor(batch.values), axis=1)


class LogisticRegression(Module, InferenceMixin):
    """Plain logistic regression on time-averaged features."""

    def __init__(self, num_features, rng):
        super().__init__()
        self.weight = Parameter(nn.init.glorot_uniform((num_features, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        x = pooled_input(batch)
        return (ops.matmul(x, self.weight) + self.bias).reshape(-1)


class FactorizationMachine(Module, InferenceMixin):
    """Second-order factorization machine (paper Eq. 1).

    The pairwise term uses Rendle's linear-time identity:
    ``0.5 * sum_k [ (Σ_i v_ik x_i)^2 − Σ_i v_ik^2 x_i^2 ]``.
    """

    def __init__(self, num_features, rng, embedding_size=16):
        super().__init__()
        self.bias = Parameter(np.zeros(1))
        self.linear = Parameter(nn.init.glorot_uniform((num_features, 1), rng))
        self.factors = Parameter(
            nn.init.normal((num_features, embedding_size), rng, std=0.05))

    def forward_batch(self, batch):
        x = pooled_input(batch)
        linear_term = ops.matmul(x, self.linear).reshape(-1)
        summed = ops.matmul(x, self.factors)                 # (B, e)
        summed_sq = summed * summed
        sq_summed = ops.matmul(x * x, self.factors * self.factors)
        pairwise = 0.5 * ops.sum(summed_sq - sq_summed, axis=-1)
        return self.bias.reshape(1) + linear_term + pairwise


class AttentionalFM(Module, InferenceMixin):
    """Attentional factorization machine (Xiao et al., IJCAI 2017).

    Each pairwise interaction ``(v_i x_i) ⊙ (v_j x_j)`` is scored by a
    one-hidden-layer attention network; the softmax-weighted sum is
    projected to the final score.
    """

    def __init__(self, num_features, rng, embedding_size=16, attention_size=8):
        super().__init__()
        self.num_features = num_features
        self.embedding_size = embedding_size
        self.bias = Parameter(np.zeros(1))
        self.linear = Parameter(nn.init.glorot_uniform((num_features, 1), rng))
        self.factors = Parameter(
            nn.init.normal((num_features, embedding_size), rng, std=0.05))
        self.attn_w = Parameter(
            nn.init.glorot_uniform((embedding_size, attention_size), rng))
        self.attn_b = Parameter(np.zeros(attention_size))
        self.attn_h = Parameter(nn.init.glorot_uniform((attention_size, 1), rng))
        self.project = Parameter(nn.init.glorot_uniform((embedding_size, 1), rng))
        # Upper-triangular pair index (i < j), fixed for the feature count.
        self._rows, self._cols = np.triu_indices(num_features, k=1)

    def forward_batch(self, batch):
        x = pooled_input(batch)
        linear_term = ops.matmul(x, self.linear).reshape(-1)
        scaled = x.reshape(-1, self.num_features, 1) * self.factors  # (B,C,e)
        left = scaled[:, self._rows, :]
        right = scaled[:, self._cols, :]
        products = left * right                                      # (B,P,e)
        hidden = ops.relu(ops.matmul(products, self.attn_w) + self.attn_b)
        scores = ops.matmul(hidden, self.attn_h)                     # (B,P,1)
        weights = ops.softmax(scores, axis=1)
        pooled = ops.sum(weights * products, axis=1)                 # (B,e)
        interaction_term = ops.matmul(pooled, self.project).reshape(-1)
        return self.bias.reshape(1) + linear_term + interaction_term
