"""Serializable model specifications.

A :class:`ModelSpec` is the durable identity of a trained model: the
registry name, the feature count, and the hyperparameter overrides that
were passed to the constructor.  It is JSON-able in both directions, so
a training run can persist it into the run directory's ``config.json``
(the :class:`~repro.train.Trainer` does this automatically) and the
serving layer can rebuild the *exact* architecture from a checkpoint
directory without guessing constructor arguments
(:meth:`repro.serve.Predictor.load`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = ["ModelSpec"]


@dataclass(frozen=True)
class ModelSpec:
    """Name + hyperparameters needed to reconstruct a registry model.

    Parameters
    ----------
    name:
        A registry model name (any case; aliases accepted — see
        :data:`repro.baselines.MODEL_ALIASES`).
    num_features:
        Number of input medical features ``|C|``.
    hyperparameters:
        Constructor overrides forwarded to the model builder.  Must be
        JSON-serializable (plain scalars/strings), which every registry
        hyperparameter is.
    """

    name: str
    num_features: int
    hyperparameters: dict = field(default_factory=dict)

    def to_dict(self):
        """JSON-able representation (stored in run-dir ``config.json``)."""
        return {
            "name": self.name,
            "num_features": int(self.num_features),
            "hyperparameters": dict(self.hyperparameters),
        }

    def fingerprint(self):
        """Short stable digest of the spec (replica-consistency checks).

        The :class:`~repro.serve.ReplicaPool` startup handshake compares
        every worker's fingerprint: two processes that rebuilt the same
        name/features/hyperparameters agree, anything else fails loudly.
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(name=str(payload["name"]),
                   num_features=int(payload["num_features"]),
                   hyperparameters=dict(payload.get("hyperparameters", {})))

    def build(self, rng=None):
        """Instantiate the model this spec describes.

        ``rng`` seeds the weight initialization; when the weights will be
        overwritten by a checkpoint load anyway (the serving path), it
        may be omitted.
        """
        from ..nn.backend import xp as np
        from .registry import build_model
        if rng is None:
            rng = np.random.default_rng(0)
        return build_model(self, rng=rng)
