"""ConCare baseline (Ma et al., AAAI 2020).

ConCare processes *each medical feature separately* with its own GRU and
then lets the per-feature summaries exchange information through
multi-head self-attention, capturing cross-feature interdependencies.

The per-feature GRUs are vectorized: all ``C`` single-input GRUs run as
one stacked recurrence with per-feature weight slices, using the autodiff
engine's batched matmul — equivalent to ``C`` independent GRUs but one
Python loop over time instead of ``C`` of them.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.layers import MultiHeadSelfAttention
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["ConCare", "PerFeatureGRU"]


class PerFeatureGRU(Module):
    """C independent single-input GRUs computed as one stacked recurrence.

    Input ``(B, T, C)`` -> output ``(B, C, H)``: the final hidden state of
    feature *c*'s GRU over its scalar time series.
    """

    def __init__(self, num_features, hidden_size, rng):
        super().__init__()
        self.num_features = num_features
        self.hidden_size = hidden_size
        # Per-feature kernels: input weights (C, 1, 3H) and recurrent
        # weights (C, H, 3H), biases (C, 3H).
        self.w_ih = Parameter(nn.init.glorot_uniform(
            (num_features, 1, 3 * hidden_size), rng))
        self.w_hh = Parameter(np.stack([
            nn.init.orthogonal((hidden_size, 3 * hidden_size), rng)
            for _ in range(num_features)]))
        self.bias = Parameter(np.zeros((num_features, 3 * hidden_size)))

    def forward(self, values):
        batch, steps, _ = values.shape
        # State laid out (C, B, H) so the stacked matmul batches over C.
        h = self.initial_state(batch)
        # Hoist every per-feature input projection out of the time loop:
        # one broadcast (C, T, B, 1) @ (C, 1, 1, 3H) batched GEMM covers
        # all timesteps (PR 10); the loop keeps only the recurrent GEMM.
        # With K=1 the projection is an outer product — elementwise — so
        # slicing a timestep out of the batched result is bit-identical
        # to projecting that timestep alone (the streaming path relies
        # on this).
        x_all = values.transpose((2, 1, 0)).reshape(
            self.num_features, steps, batch, 1)
        gates_x = ops.matmul(x_all, self.w_ih.reshape(
            self.num_features, 1, 1, 3 * self.hidden_size)) \
            + self.bias.reshape(self.num_features, 1, 1,
                                3 * self.hidden_size)
        for t in range(steps):
            h = self._recur_step(h, gates_x[:, t])
        return h.transpose((1, 0, 2))                    # (B, C, H)

    def _recur_step(self, h, gates_x):
        """Advance the stacked recurrence one step given the already-
        projected input gates ``(C, B, 3H)``."""
        gates_h = ops.matmul(h, self.w_hh)
        zx, rx, nx = ops.split(gates_x, 3, axis=-1)
        zh, rh, nh = ops.split(gates_h, 3, axis=-1)
        update = ops.sigmoid(zx + zh)
        reset = ops.sigmoid(rx + rh)
        candidate = ops.tanh(nx + reset * nh)
        return update * h + (1.0 - update) * candidate

    # -- streaming inference (serve tier) ------------------------------
    def initial_state(self, batch_size):
        """Zero stacked state ``(C, B, H)`` for :meth:`stream_step`."""
        return nn.Tensor(np.zeros(
            (self.num_features, batch_size, self.hidden_size)))

    def stream_step(self, h, x_t):
        """One stacked per-feature GRU step for one timestep slice.

        ``x_t`` is a ``(B, C)`` tensor; returns the new ``(C, B, H)``
        state.  The input projection here is the single-timestep form of
        the batched pre-loop projection in :meth:`forward` — with K=1
        both are outer products, so the two paths agree bit-for-bit.
        """
        batch = x_t.shape[0]
        x_t = x_t.transpose().reshape(self.num_features, batch, 1)
        gates_x = ops.matmul(x_t, self.w_ih) + self.bias.reshape(
            self.num_features, 1, 3 * self.hidden_size)
        return self._recur_step(h, gates_x)


class ConCare(Module, InferenceMixin):
    """Per-feature GRUs + cross-feature self-attention.

    Default sizes land near the ~183k parameters of the paper's Table III
    (ConCare is the largest baseline there, as here).
    """

    def __init__(self, num_features, rng, feature_hidden=32, num_heads=4):
        super().__init__()
        self.num_features = num_features
        self.feature_hidden = feature_hidden
        self.encoder = PerFeatureGRU(num_features, feature_hidden, rng)
        self.attention = MultiHeadSelfAttention(feature_hidden, num_heads, rng)
        self.weight = Parameter(nn.init.glorot_uniform(
            (num_features * feature_hidden, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        summaries = self.encoder(nn.Tensor(batch.values))   # (B, C, H)
        attended = self.attention(summaries)                # (B, C, H)
        flat = attended.reshape(attended.shape[0],
                                self.num_features * self.feature_hidden)
        return (ops.matmul(flat, self.weight) + self.bias).reshape(-1)

    # -- streaming inference (serve tier) ------------------------------
    stream_native = True

    def stream_begin(self, batch_size):
        return {"h": self.encoder.initial_state(batch_size)}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Fully O(1) per step: the per-feature recurrence advances once
        and the cross-feature attention head is constant in sequence
        length (it attends over features, not time).
        """
        h = self.encoder.stream_step(state["h"], nn.Tensor(values_t))
        summaries = h.transpose((1, 0, 2))                  # (B, C, H)
        attended = self.attention(summaries)
        flat = attended.reshape(attended.shape[0],
                                self.num_features * self.feature_hidden)
        logits = (ops.matmul(flat, self.weight) + self.bias).reshape(-1)
        return {"h": h}, logits
