"""Model registry: build any evaluated model by its paper name.

Covers the 12 baselines of Figure 6 / Table III plus ELDA-Net and its
ablation variants, so experiment runners can be driven by name lists.
Lookup is case-insensitive and goes through an explicit alias table
(:data:`MODEL_ALIASES`), so historical spellings like ``"grud"`` keep
working.  :func:`build_model` also accepts a
:class:`~repro.baselines.spec.ModelSpec`, the serializable form used by
run directories and the serving layer, and attaches the resolved spec to
every model it builds (``model.spec``).
"""

from __future__ import annotations

from ..nn.backend import xp as np

from ..core.elda_net import VARIANT_NAMES, build_variant
from .concare import ConCare
from .dipole import Dipole
from .gru import GRUClassifier
from .grud import GRUD
from .pooled import AttentionalFM, FactorizationMachine, LogisticRegression
from .retain import RETAIN
from .sand import SAnD
from .spec import ModelSpec
from .stagenet import StageNet

__all__ = ["BASELINE_NAMES", "ALL_MODEL_NAMES", "MODEL_ALIASES",
           "UnknownModelError", "canonical_name", "build_model"]

#: The baselines of Figure 6, in the paper's presentation order.
BASELINE_NAMES = (
    "LR", "FM", "AFM", "SAnD", "GRU", "RETAIN",
    "Dipole_l", "Dipole_g", "Dipole_c", "StageNet", "GRU-D", "ConCare",
)

ALL_MODEL_NAMES = BASELINE_NAMES + VARIANT_NAMES

#: One builder per canonical (lowercased) name — no duplicate entries.
_BUILDERS = {
    "lr": lambda c, rng, kw: LogisticRegression(c, rng, **kw),
    "fm": lambda c, rng, kw: FactorizationMachine(c, rng, **kw),
    "afm": lambda c, rng, kw: AttentionalFM(c, rng, **kw),
    "sand": lambda c, rng, kw: SAnD(c, rng, **kw),
    "gru": lambda c, rng, kw: GRUClassifier(c, rng, **kw),
    "retain": lambda c, rng, kw: RETAIN(c, rng, **kw),
    "dipole_l": lambda c, rng, kw: Dipole(c, rng, variant="location", **kw),
    "dipole_g": lambda c, rng, kw: Dipole(c, rng, variant="general", **kw),
    "dipole_c": lambda c, rng, kw: Dipole(c, rng, variant="concat", **kw),
    "stagenet": lambda c, rng, kw: StageNet(c, rng, **kw),
    "gru-d": lambda c, rng, kw: GRUD(c, rng, **kw),
    "concare": lambda c, rng, kw: ConCare(c, rng, **kw),
}

#: Accepted alternative spellings (lowercased) -> canonical builder key.
MODEL_ALIASES = {
    "grud": "gru-d",
    "gru_d": "gru-d",
    "logisticregression": "lr",
    "dipole-l": "dipole_l",
    "dipole-g": "dipole_g",
    "dipole-c": "dipole_c",
}


class UnknownModelError(KeyError, ValueError):
    """Raised for a model name the registry cannot resolve.

    Subclasses both ``KeyError`` (failed registry lookup) and
    ``ValueError`` (the historical exception type), so either handler
    style keeps working.
    """

    def __init__(self, name):
        message = (f"unknown model {name!r}; known models: "
                   f"{', '.join(ALL_MODEL_NAMES)}")
        super().__init__(message)
        self.name = name

    def __str__(self):
        # KeyError.__str__ would repr-quote the message; keep it plain.
        return self.args[0]


def canonical_name(name):
    """Resolve any accepted spelling to its canonical lowercase key.

    ELDA-Net variant names resolve to their canonical lowercase form;
    unknown names raise :class:`UnknownModelError`.
    """
    key = str(name).strip().lower()
    key = MODEL_ALIASES.get(key, key)
    if key in _BUILDERS:
        return key
    if key.startswith("elda"):
        return key
    raise UnknownModelError(name)


def build_model(name, num_features=None, rng=None, **kwargs):
    """Instantiate a model by paper name (baseline or ELDA-Net variant).

    Parameters
    ----------
    name:
        One of :data:`ALL_MODEL_NAMES` (case-insensitive, aliases in
        :data:`MODEL_ALIASES` accepted) — or a
        :class:`~repro.baselines.spec.ModelSpec`, in which case
        ``num_features`` and ``kwargs`` come from the spec.
    num_features:
        Number of medical features ``|C|`` (required with a string name).
    rng:
        ``numpy.random.Generator`` for weight initialization (defaults
        to a zero-seeded generator).
    kwargs:
        Forwarded to the model constructor (hyperparameter overrides).

    The built model carries its resolved spec as ``model.spec``, which
    the trainer persists into run-dir ``config.json`` so the serving
    layer can rebuild the exact architecture
    (:meth:`repro.serve.Predictor.load`).
    """
    if isinstance(name, ModelSpec):
        if kwargs:
            raise TypeError("pass hyperparameters inside the ModelSpec, "
                            "not as keyword overrides")
        spec = name
        name = spec.name
        num_features = spec.num_features
        kwargs = dict(spec.hyperparameters)
    else:
        if num_features is None:
            raise TypeError("build_model needs num_features when called "
                            "with a model name (or pass a ModelSpec)")
        spec = ModelSpec(str(name), int(num_features), dict(kwargs))
    if rng is None:
        rng = np.random.default_rng(0)

    key = canonical_name(name)
    if key in _BUILDERS:
        model = _BUILDERS[key](num_features, rng, kwargs)
    else:
        try:
            model = build_variant(name, num_features, rng, **kwargs)
        except ValueError:
            raise UnknownModelError(name) from None
    model.spec = spec
    return model
