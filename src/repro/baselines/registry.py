"""Model registry: build any evaluated model by its paper name.

Covers the 12 baselines of Figure 6 / Table III plus ELDA-Net and its
ablation variants, so experiment runners can be driven by name lists.
"""

from __future__ import annotations

from ..core.elda_net import VARIANT_NAMES, build_variant
from .concare import ConCare
from .dipole import Dipole
from .gru import GRUClassifier
from .grud import GRUD
from .pooled import AttentionalFM, FactorizationMachine, LogisticRegression
from .retain import RETAIN
from .sand import SAnD
from .stagenet import StageNet

__all__ = ["BASELINE_NAMES", "ALL_MODEL_NAMES", "build_model"]

#: The baselines of Figure 6, in the paper's presentation order.
BASELINE_NAMES = (
    "LR", "FM", "AFM", "SAnD", "GRU", "RETAIN",
    "Dipole_l", "Dipole_g", "Dipole_c", "StageNet", "GRU-D", "ConCare",
)

ALL_MODEL_NAMES = BASELINE_NAMES + VARIANT_NAMES

_BUILDERS = {
    "lr": lambda c, rng, kw: LogisticRegression(c, rng, **kw),
    "fm": lambda c, rng, kw: FactorizationMachine(c, rng, **kw),
    "afm": lambda c, rng, kw: AttentionalFM(c, rng, **kw),
    "sand": lambda c, rng, kw: SAnD(c, rng, **kw),
    "gru": lambda c, rng, kw: GRUClassifier(c, rng, **kw),
    "retain": lambda c, rng, kw: RETAIN(c, rng, **kw),
    "dipole_l": lambda c, rng, kw: Dipole(c, rng, variant="location", **kw),
    "dipole_g": lambda c, rng, kw: Dipole(c, rng, variant="general", **kw),
    "dipole_c": lambda c, rng, kw: Dipole(c, rng, variant="concat", **kw),
    "stagenet": lambda c, rng, kw: StageNet(c, rng, **kw),
    "gru-d": lambda c, rng, kw: GRUD(c, rng, **kw),
    "grud": lambda c, rng, kw: GRUD(c, rng, **kw),
    "concare": lambda c, rng, kw: ConCare(c, rng, **kw),
}


def build_model(name, num_features, rng, **kwargs):
    """Instantiate a model by paper name (baseline or ELDA-Net variant).

    Parameters
    ----------
    name:
        One of :data:`ALL_MODEL_NAMES` (case-insensitive).
    num_features:
        Number of medical features ``|C|``.
    rng:
        ``numpy.random.Generator`` for weight initialization.
    kwargs:
        Forwarded to the model constructor (hyperparameter overrides).
    """
    key = name.strip().lower()
    if key in _BUILDERS:
        return _BUILDERS[key](num_features, rng, kwargs)
    if key.startswith("elda"):
        return build_variant(name, num_features, rng, **kwargs)
    raise ValueError(f"unknown model {name!r}; known models: "
                     f"{', '.join(ALL_MODEL_NAMES)}")
