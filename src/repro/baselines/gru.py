"""Plain GRU classifier baseline.

The standard recurrent baseline: a single GRU over the standardized,
imputed sequence; the last hidden state feeds a linear head.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..nn import ops
from ..nn.layers import GRU
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["GRUClassifier"]


class GRUClassifier(Module, InferenceMixin):
    """GRU encoder with a linear output head.

    With ``hidden_size=64`` on 37 features this lands at the paper's
    ~20k parameters for the GRU row of Table III.
    """

    def __init__(self, num_features, rng, hidden_size=64):
        super().__init__()
        self.encoder = GRU(num_features, hidden_size, rng,
                           return_sequences=False)
        self.weight = Parameter(nn.init.glorot_uniform((hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        last = self.encoder(nn.Tensor(batch.values))
        return (ops.matmul(last, self.weight) + self.bias).reshape(-1)
