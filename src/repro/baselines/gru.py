"""Plain GRU classifier baseline.

The standard recurrent baseline: a single GRU over the standardized,
imputed sequence; the last hidden state feeds a linear head.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..data.batching import sequence_lengths
from ..nn import ops
from ..nn.layers import GRU
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["GRUClassifier"]


class GRUClassifier(Module, InferenceMixin):
    """GRU encoder with a linear output head.

    With ``hidden_size=64`` on 37 features this lands at the paper's
    ~20k parameters for the GRU row of Table III.

    With ``mask_aware=True`` the encoder receives each admission's true
    sequence length (from the observation mask) and freezes its hidden
    state there, so the head reads the state at the last *observed* step
    instead of after 48 imputed-padding updates — and the fused scan
    stops at the batch's maximum length, which is what length-bucketed
    batching (``Trainer(bucket_by_length=True)``) exploits.  Off by
    default: the padded recurrence is the historically pinned behavior.
    """

    def __init__(self, num_features, rng, hidden_size=64, mask_aware=False):
        super().__init__()
        self.encoder = GRU(num_features, hidden_size, rng,
                           return_sequences=False)
        self.mask_aware = mask_aware
        self.weight = Parameter(nn.init.glorot_uniform((hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        lengths = sequence_lengths(batch.mask) if self.mask_aware else None
        last = self.encoder(nn.Tensor(batch.values), lengths=lengths)
        return (ops.matmul(last, self.weight) + self.bias).reshape(-1)

    # -- streaming inference (serve tier) ------------------------------
    stream_native = True

    def stream_begin(self, batch_size):
        h = self.encoder.initial_state(batch_size)
        return {"h": h, "visible": h, "steps": 0}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """O(1) per-observation update; see :class:`~repro.nn.InferenceMixin`.

        The hidden state advances through every step (matching the
        padded recurrence); with ``mask_aware=True`` the *reported*
        state is a snapshot taken at each row's last observed step —
        the same state the fused scan freezes at ``sequence_lengths``,
        which clamp to a minimum of one step.
        """
        h = self.encoder.stream_step(values_t, state["h"])
        steps = state["steps"] + 1
        if not self.mask_aware or steps == 1 or mask_t is None:
            visible = h
        else:
            observed = np.asarray(mask_t).any(axis=1)
            visible = np.where(observed[:, None], h, state["visible"])
        logits = np.matmul(visible, self.weight.data) + self.bias.data
        return ({"h": h, "visible": visible, "steps": steps},
                logits.reshape(-1))
