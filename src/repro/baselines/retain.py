"""RETAIN baseline (Choi et al., NeurIPS 2016).

An interpretable two-level attention model: visits are embedded, two GRUs
run over the *reversed* sequence to produce (i) scalar visit-level
attention α_t and (ii) vector variable-level gates β_t; the context is the
doubly weighted sum of visit embeddings.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.dtype import get_default_dtype
from ..nn.layers import GRU, Dense
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["RETAIN"]


class RETAIN(Module, InferenceMixin):
    """Reverse-time attention model.

    Sizes default to land near the ~13k parameters the paper's Table III
    reports for RETAIN.
    """

    def __init__(self, num_features, rng, embedding_size=32, alpha_hidden=24,
                 beta_hidden=24):
        super().__init__()
        self.embed = Dense(num_features, embedding_size, rng, use_bias=False)
        self.alpha_gru = GRU(embedding_size, alpha_hidden, rng)
        self.beta_gru = GRU(embedding_size, beta_hidden, rng)
        self.alpha_score = Dense(alpha_hidden, 1, rng)
        self.beta_gate = Dense(beta_hidden, embedding_size, rng)
        self.weight = Parameter(nn.init.glorot_uniform((embedding_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        probs, _ = self.forward(nn.Tensor(batch.values))
        return probs

    def forward(self, values, return_attention=False):
        """Return logits and (optionally) the visit-level attention α."""
        return self._attend(self.embed(values), return_attention)

    def _attend(self, visits, return_attention=False):
        """The reverse-time attention readout over embedded visits.

        Split from :meth:`forward` so the streaming path can feed cached
        visit embeddings without re-embedding the whole prefix.
        """
        reversed_visits = visits[:, ::-1, :]
        alpha_states = self.alpha_gru(reversed_visits)[:, ::-1, :]
        beta_states = self.beta_gru(reversed_visits)[:, ::-1, :]
        alpha = ops.softmax(self.alpha_score(alpha_states), axis=1)  # (B,T,1)
        beta = ops.tanh(self.beta_gate(beta_states))                 # (B,T,m)
        context = ops.sum(alpha * beta * visits, axis=1)             # (B,m)
        logits = (ops.matmul(context, self.weight) + self.bias).reshape(-1)
        if return_attention:
            return logits, alpha.reshape(alpha.shape[0], alpha.shape[1])
        return logits, None

    # -- streaming inference (serve tier) ------------------------------
    stream_incremental = True

    def stream_begin(self, batch_size):
        return {"visits": []}

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Incremental streaming: embed only the new visit.

        Each step projects the new timestep through the visit embedding
        once (:func:`repro.nn.ops.linear_rows`, row-stable and therefore
        bit-identical to the rows of the full-prefix embedding for
        prefixes of two or more steps) and caches it; the reverse-time
        attention readout then runs over the cached embeddings.  The two
        GRUs scan the *reversed* prefix, so their O(t) rerun each step
        is inherent to RETAIN — but the per-step feature projection is
        never repeated.  The one-step prefix is served via the exact
        full forward (its embedding GEMM runs in the GEMV regime).
        """
        v_t = np.asarray(values_t, dtype=get_default_dtype())
        state["visits"].append(ops.linear_rows(v_t, self.embed.weight.data))
        if len(state["visits"]) == 1:
            logits, _ = self.forward(nn.Tensor(v_t[:, None, :]))
            return state, logits
        visits = nn.Tensor(np.stack(state["visits"], axis=1))
        logits, _ = self._attend(visits)
        return state, logits
