"""StageNet baseline (Gao et al., WWW 2020).

A stage-aware LSTM: each step computes a "stage-progression" gate from the
hidden state, the running stage signal re-calibrates the cell state, and a
1-D convolution over the hidden trajectory extracts progression patterns
that are attention-pooled for the prediction.

This follows the published architecture's three ingredients (stage-aware
recurrence, convolutional progression extraction, re-calibration); the
time-interval conditioning is simplified to hourly steps since the
substrate emits regular sequences.

By default the recurrence runs through the sequence-fused
:func:`repro.nn.ops.stagenet_scan` kernel (gate and stage-gate input
projections hoisted into pre-loop GEMMs, one hand-derived backward for
the whole sequence); set ``fused_scan=False`` for the step-unrolled
reference path.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.dtype import get_default_dtype
from ..nn.layers import Conv1D, Dense, LSTMCell
from ..nn.inference import InferenceMixin
from ..nn.module import Module, Parameter

__all__ = ["StageNet"]


class StageNet(Module, InferenceMixin):
    """Stage-aware LSTM with convolutional progression patterns.

    Default sizes land near the ~85k parameters of the paper's Table III.
    """

    def __init__(self, num_features, rng, hidden_size=72, conv_channels=72,
                 kernel_size=5, fused_scan=True):
        super().__init__()
        self.hidden_size = hidden_size
        self.fused_scan = fused_scan
        self.cell = LSTMCell(num_features, hidden_size, rng)
        self.stage_gate = Dense(hidden_size + num_features, 1, rng,
                                activation="sigmoid")
        self.conv = Conv1D(hidden_size, conv_channels, kernel_size, rng,
                           activation="relu")
        self.attn = Dense(conv_channels, 1, rng)
        self.weight = Parameter(
            nn.init.glorot_uniform((conv_channels + hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward_batch(self, batch):
        values = nn.Tensor(batch.values)
        batch_size, steps, _ = values.shape
        h = nn.Tensor(np.zeros((batch_size, self.hidden_size)))
        c = nn.Tensor(np.zeros((batch_size, self.hidden_size)))
        if self.fused_scan:
            cell = self.cell
            trajectory = ops.stagenet_scan(
                values, h, c, cell.w_ih, cell.w_hh, cell.bias,
                self.stage_gate.weight, self.stage_gate.bias)
            h_last = trajectory[:, -1, :]
        else:
            states = []
            for x_t in ops.unbind_time(values):
                h, c = self.cell(x_t, (h, c))
                # Stage progression gate: how much the stage advanced.
                stage = self.stage_gate(ops.concat([h, x_t], axis=-1))
                c = stage * c                   # re-calibrate cell memory
                states.append(h)
            trajectory = ops.stack(states, axis=1)              # (B,T,H)
            h_last = h
        return self._head(trajectory, h_last)

    def _head(self, trajectory, h_last):
        """Conv + attention pool over the hidden trajectory, then fuse
        with the final state.  Shared between the full forward and the
        streaming path so the two stay bit-identical on equal inputs.
        """
        patterns = self.conv(trajectory)                        # (B,T,K)
        weights = ops.softmax(self.attn(patterns), axis=1)      # (B,T,1)
        pooled = ops.sum(weights * patterns, axis=1)            # (B,K)
        fused = ops.concat([pooled, h_last], axis=-1)
        return (ops.matmul(fused, self.weight) + self.bias).reshape(-1)

    # -- streaming inference (serve tier) ------------------------------
    stream_native = True

    def stream_begin(self, batch_size):
        dtype = get_default_dtype()
        return {
            "h": np.zeros((batch_size, self.hidden_size), dtype=dtype),
            "c": np.zeros((batch_size, self.hidden_size), dtype=dtype),
            "states": [],
        }

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Stage-aware recurrence in O(1) via
        :func:`repro.nn.ops.stagenet_scan_step` (bit-identical to one
        fused-scan step); head recomputed over the stored trajectory
        (O(t) — inherent to the conv+attention pool, which reweights
        *all* past patterns each step).
        """
        cell = self.cell
        x_t = np.asarray(values_t, dtype=get_default_dtype())
        h, c = ops.stagenet_scan_step(
            x_t, state["h"], state["c"], cell.w_ih.data, cell.w_hh.data,
            cell.bias.data, self.stage_gate.weight.data,
            self.stage_gate.bias.data)
        states = state["states"] + [h]
        trajectory = nn.Tensor(np.stack(states, axis=1))
        logits = self._head(trajectory, nn.Tensor(h))
        return {"h": h, "c": c, "states": states}, logits
