"""Evaluation metrics (BCE, AUC-ROC, AUC-PR, and friends)."""

from .calibration import (brier_score, expected_calibration_error,
                          reliability_curve)
from .classification import (accuracy, auc_pr, auc_roc, bce_loss,
                             bootstrap_metric, evaluate_all, f1_score,
                             precision_recall_curve, roc_curve)
from .probability import (evaluate_multiclass, multiclass_ce, sigmoid_probs,
                          softmax_probs)

__all__ = [
    "auc_roc", "auc_pr", "bce_loss", "accuracy", "f1_score",
    "precision_recall_curve", "roc_curve", "bootstrap_metric", "evaluate_all",
    "brier_score", "expected_calibration_error", "reliability_curve",
    "softmax_probs", "sigmoid_probs", "multiclass_ce", "evaluate_multiclass",
]
