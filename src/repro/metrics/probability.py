"""Shared probability and loss math on raw numpy arrays.

The training engine, the evaluation helpers, and the CLI all need the
same three pieces of arithmetic — a numerically stable softmax, a
sigmoid, and the clipped multi-class log-loss.  They live here once so
the engine's evaluation path and any reporting code agree bit-for-bit
(they used to be re-implemented inline in ``Trainer.predict_proba`` /
``Trainer.evaluate``).
"""

from __future__ import annotations

from ..nn.backend import xp as np

__all__ = ["softmax_probs", "sigmoid_probs", "multiclass_ce",
           "evaluate_multiclass"]

_CE_EPS = 1e-12


def _as_float(logits):
    """Keep floating inputs in their own precision (the policy plane);
    promote non-float inputs through the ambient policy dtype."""
    logits = np.asarray(logits)
    if logits.dtype.kind != "f":
        from ..nn.dtype import get_default_dtype
        return logits.astype(get_default_dtype())
    return logits


def softmax_probs(logits):
    """Row-stochastic softmax of a logits array along the last axis.

    Shift-by-max keeps the exponentials finite for any input scale.
    """
    logits = _as_float(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exped = np.exp(shifted)
    return exped / exped.sum(axis=-1, keepdims=True)


def sigmoid_probs(logits):
    """Element-wise logistic sigmoid of a logits array."""
    logits = _as_float(logits)
    return 1.0 / (1.0 + np.exp(-logits))


def multiclass_ce(probs, labels):
    """Mean clipped negative log-likelihood of integer class labels.

    ``probs`` is an (N, K) row-stochastic matrix; ``labels`` an (N,)
    array of class indices.  Probabilities are clipped at 1e-12 so a
    confidently wrong model yields a large-but-finite loss.
    """
    probs = np.asarray(probs, dtype=float)
    labels = np.asarray(labels).astype(int)
    picked = np.clip(probs[np.arange(len(labels)), labels], _CE_EPS, None)
    return float(-np.log(picked).mean())


def evaluate_multiclass(probs, labels):
    """The multi-class metric pair: cross-entropy and accuracy."""
    labels = np.asarray(labels).astype(int)
    return {
        "ce": multiclass_ce(probs, labels),
        "accuracy": float((np.asarray(probs).argmax(axis=-1) == labels).mean()),
    }
