"""Probability-calibration metrics.

Risk scores that drive clinical alerting (Section III's thresholded
alerts) are only actionable if they are calibrated; these metrics
complement the paper's discrimination metrics (AUC-ROC / AUC-PR):

* Brier score — mean squared error of the probability forecast;
* expected calibration error (ECE) — average |confidence − accuracy|
  over equal-width probability bins;
* reliability curve — the data behind a calibration plot.
"""

from __future__ import annotations

from ..nn.backend import xp as np

__all__ = ["brier_score", "expected_calibration_error", "reliability_curve"]


def _validate(labels, scores):
    labels = np.asarray(labels, dtype=float).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError("labels and scores must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    if scores.min() < 0 or scores.max() > 1:
        raise ValueError("scores must be probabilities in [0, 1]")
    return labels, scores


def brier_score(labels, scores):
    """Mean squared error between outcomes and predicted probabilities."""
    labels, scores = _validate(labels, scores)
    return float(np.mean((scores - labels) ** 2))


def reliability_curve(labels, scores, num_bins=10):
    """Per-bin mean confidence, observed frequency, and count.

    Returns three arrays of length ``num_bins``; empty bins hold NaN
    confidence/frequency and zero count.
    """
    labels, scores = _validate(labels, scores)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    bins = np.clip(np.digitize(scores, edges[1:-1]), 0, num_bins - 1)
    confidence = np.full(num_bins, np.nan)
    frequency = np.full(num_bins, np.nan)
    counts = np.zeros(num_bins, dtype=int)
    for b in range(num_bins):
        members = bins == b
        counts[b] = int(members.sum())
        if counts[b]:
            confidence[b] = float(scores[members].mean())
            frequency[b] = float(labels[members].mean())
    return confidence, frequency, counts


def expected_calibration_error(labels, scores, num_bins=10):
    """Count-weighted average of |observed frequency − mean confidence|."""
    labels, scores = _validate(labels, scores)
    confidence, frequency, counts = reliability_curve(labels, scores,
                                                      num_bins=num_bins)
    occupied = counts > 0
    gaps = np.abs(frequency[occupied] - confidence[occupied])
    return float(np.sum(gaps * counts[occupied]) / counts.sum())
