"""Binary-classification metrics used throughout the evaluation.

Implements the paper's three reported metrics — BCE loss, AUC-ROC, and
AUC-PR — from first principles on numpy, plus accuracy/F1 helpers and a
bootstrap confidence interval used by the benchmark harness.

AUC-ROC uses the exact Mann–Whitney statistic (ties counted as 1/2).
AUC-PR is average precision (step-wise integration of the PR curve), the
convention of scikit-learn and of the healthcare-analytics literature the
paper compares against.
"""

from __future__ import annotations

from ..nn.backend import xp as np

__all__ = ["auc_roc", "auc_pr", "bce_loss", "accuracy", "f1_score",
           "precision_recall_curve", "roc_curve", "bootstrap_metric",
           "evaluate_all"]

_EPS = 1e-7


def _validate(labels, scores):
    labels = np.asarray(labels, dtype=float).reshape(-1)
    scores = np.asarray(scores, dtype=float).reshape(-1)
    if labels.shape != scores.shape:
        raise ValueError(f"labels {labels.shape} and scores {scores.shape} "
                         "must have the same length")
    if labels.size == 0:
        raise ValueError("empty inputs")
    if not np.isin(labels, (0.0, 1.0)).all():
        raise ValueError("labels must be binary (0/1)")
    return labels, scores


def auc_roc(labels, scores):
    """Area under the ROC curve via the Mann–Whitney U statistic.

    Returns NaN when only one class is present (AUC undefined).
    """
    labels, scores = _validate(labels, scores)
    positives = labels == 1.0
    n_pos = int(positives.sum())
    n_neg = labels.size - n_pos
    if n_pos == 0 or n_neg == 0:
        return float("nan")
    # Midranks handle ties exactly.
    order = np.argsort(scores, kind="mergesort")
    ranks = np.empty(labels.size)
    sorted_scores = scores[order]
    i = 0
    while i < labels.size:
        j = i
        while j + 1 < labels.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        ranks[order[i:j + 1]] = 0.5 * (i + j) + 1.0
        i = j + 1
    rank_sum = ranks[positives].sum()
    u_stat = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_stat / (n_pos * n_neg))


def roc_curve(labels, scores):
    """Return (fpr, tpr, thresholds) sorted by decreasing threshold."""
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    distinct = np.where(np.diff(scores))[0]
    cut = np.r_[distinct, labels.size - 1]
    tps = np.cumsum(labels)[cut]
    fps = (cut + 1) - tps
    n_pos = labels.sum()
    n_neg = labels.size - n_pos
    tpr = np.r_[0.0, tps / max(n_pos, _EPS)]
    fpr = np.r_[0.0, fps / max(n_neg, _EPS)]
    thresholds = np.r_[np.inf, scores[cut]]
    return fpr, tpr, thresholds


def precision_recall_curve(labels, scores):
    """Return (precision, recall, thresholds) from high to low threshold."""
    labels, scores = _validate(labels, scores)
    order = np.argsort(-scores, kind="mergesort")
    labels = labels[order]
    scores = scores[order]
    distinct = np.where(np.diff(scores))[0]
    cut = np.r_[distinct, labels.size - 1]
    tps = np.cumsum(labels)[cut]
    predicted_pos = cut + 1
    precision = tps / predicted_pos
    n_pos = labels.sum()
    recall = tps / max(n_pos, _EPS)
    return precision, recall, scores[cut]


def auc_pr(labels, scores):
    """Average precision (area under the PR curve, step interpolation)."""
    labels, scores = _validate(labels, scores)
    if labels.sum() == 0:
        return float("nan")
    precision, recall, _ = precision_recall_curve(labels, scores)
    recall = np.r_[0.0, recall]
    return float(np.sum(np.diff(recall) * precision))


def bce_loss(labels, scores):
    """Mean binary cross-entropy of probability scores."""
    labels, scores = _validate(labels, scores)
    p = np.clip(scores, _EPS, 1.0 - _EPS)
    return float(-(labels * np.log(p) + (1 - labels) * np.log(1 - p)).mean())


def accuracy(labels, scores, threshold=0.5):
    """Fraction of correct predictions at the given threshold."""
    labels, scores = _validate(labels, scores)
    return float(((scores >= threshold) == (labels == 1.0)).mean())


def f1_score(labels, scores, threshold=0.5):
    """F1 of the positive class at the given threshold."""
    labels, scores = _validate(labels, scores)
    predicted = scores >= threshold
    tp = float((predicted & (labels == 1.0)).sum())
    fp = float((predicted & (labels == 0.0)).sum())
    fn = float((~predicted & (labels == 1.0)).sum())
    if tp == 0:
        return 0.0
    precision = tp / (tp + fp)
    recall = tp / (tp + fn)
    return 2 * precision * recall / (precision + recall)


def bootstrap_metric(labels, scores, metric, n_resamples=200, seed=0,
                     alpha=0.05):
    """Percentile bootstrap CI for any metric(labels, scores) function.

    Returns ``(point, low, high)``.
    """
    labels, scores = _validate(labels, scores)
    rng = np.random.default_rng(seed)
    point = metric(labels, scores)
    stats = []
    for _ in range(n_resamples):
        idx = rng.integers(0, labels.size, labels.size)
        try:
            value = metric(labels[idx], scores[idx])
        except ValueError:
            continue
        if not np.isnan(value):
            stats.append(value)
    if not stats:
        return point, float("nan"), float("nan")
    low, high = np.percentile(stats, [100 * alpha / 2, 100 * (1 - alpha / 2)])
    return point, float(low), float(high)


def evaluate_all(labels, scores):
    """The paper's metric triple: BCE loss, AUC-ROC, AUC-PR."""
    return {
        "bce": bce_loss(labels, scores),
        "auc_roc": auc_roc(labels, scores),
        "auc_pr": auc_pr(labels, scores),
    }
