"""Shared helpers for the interpretability experiments (Figures 8-10, Table II).

These experiments need a trained ELDA-Net and the paper's case-study
subject "Patient A" preprocessed exactly like the training cohort.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from ..data import load_cohort, make_patient_a
from ..data.preprocess import clean_values, impute
from .config import default_config
from .runner import train_and_evaluate

__all__ = ["trained_model", "patient_a_processed"]


def trained_model(model_name="ELDA-Net", cohort="physionet2012",
                  task="mortality", config=None, seed=0):
    """Train one model for interpretability analysis.

    Returns ``(model, splits, metrics)``; the model holds its
    best-on-validation weights.
    """
    config = config or default_config()
    splits = load_cohort(cohort, scale=config.scale,
                         fractions=config.fractions)
    metrics, model = train_and_evaluate(model_name, splits, task, config,
                                        seed)
    return model, splits, metrics


def patient_a_processed(standardizer, seed=7):
    """Build Patient A and run the cohort's preprocessing pipeline.

    Returns ``(values, ever_observed, admission)`` where ``values`` is the
    (T, C) standardized + imputed matrix ready for the model.
    """
    admission = make_patient_a(seed=seed)
    raw = clean_values(admission.values[None])
    mask = ~np.isnan(raw)
    standardized = standardizer.transform(raw)
    values = impute(standardized, mask)[0]
    ever_observed = mask[0].any(axis=0)
    return values, ever_observed, admission
