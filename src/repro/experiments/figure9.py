"""Figure 9 — feature-level attention for Patient A, with a controlled
modification experiment.

Panel (a): the attention grid over the case-study features at hour 13
(start of the Glucose surge) and hour 35 (Glucose back to normal).

Panel (b): the same grids after rewriting Patient A's Lactate to the
population normal — the paper shows the attention paid by/to Lactate's
partners (MAP, Temp, ...) collapsing toward the uniform level.

The harness checks the paper's two quantitative reads:

* at hour 13, Glucose's attention concentrates on abnormal DLA partners
  (FiO2, HCO3, HR, Lactate, MAP, Temp) over irrelevant ones (HCT, WBC);
* after the Lactate normalization, Lactate's attention to MAP and Temp
  drops toward the uniform 1/(k-1) level.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from ..core.interpret import feature_attention_at, modify_feature_to_normal
from .config import default_config
from .interpretability import patient_a_processed, trained_model
from .table2 import ESSENTIAL_FEATURES

__all__ = ["run_figure9", "relevant_vs_irrelevant", "HOURS"]

HOURS = (13, 35)

#: DLA-related partners of Glucose vs. the paper's irrelevant pair.
RELEVANT = ("FiO2", "HCO3", "HR", "Lactate", "MAP", "Temp")
IRRELEVANT = ("HCT", "WBC")


def relevant_vs_irrelevant(matrix, names, anchor="Glucose",
                           relevant=RELEVANT, irrelevant=IRRELEVANT):
    """Mean attention the anchor pays to relevant vs irrelevant partners."""
    row = matrix[names.index(anchor)]
    rel = float(np.mean([row[names.index(n)] for n in relevant]))
    irr = float(np.mean([row[names.index(n)] for n in irrelevant]))
    return rel, irr


def run_figure9(config=None, cohort="physionet2012", seed=0, model=None,
                splits=None):
    """Run the Figure 9 pipeline.

    Returns a dict with, per hour, the original and Lactate-normalized
    attention grids over the essential features, plus the feature order.
    A pre-trained ``(model, splits)`` pair can be supplied to avoid
    retraining across experiments.
    """
    config = config or default_config()
    if model is None or splits is None:
        model, splits, _ = trained_model("ELDA-Net", cohort, "mortality",
                                         config, seed)
    values, ever_observed, _ = patient_a_processed(splits.standardizer)
    modified = modify_feature_to_normal(values, "Lactate")

    result = {"features": list(ESSENTIAL_FEATURES), "hours": HOURS}
    for hour in HOURS:
        original, names = feature_attention_at(
            model, values, ever_observed, hour, features=ESSENTIAL_FEATURES)
        counterfactual, _ = feature_attention_at(
            model, modified, ever_observed, hour, features=ESSENTIAL_FEATURES)
        result[hour] = {"original": original, "modified": counterfactual,
                        "names": names}
    return result
