"""Shared train-and-evaluate machinery for the model-comparison figures.

:func:`train_and_evaluate` runs one (model, cohort, task, seed) cell of
the evaluation grid; :func:`run_grid` sweeps a list of models over seeds
and aggregates means — the building block of Figure 6 and Figure 7.
"""

from __future__ import annotations

from pathlib import Path

from ..nn.backend import xp as np

from ..baselines import ModelSpec, build_model
from ..data import NUM_FEATURES, load_cohort
from ..train import Trainer

__all__ = ["train_and_evaluate", "run_grid", "aggregate_seeds"]


def train_and_evaluate(model_name, splits, task, config, seed,
                       model_kwargs=None, run_dir=None, callbacks=()):
    """Train one model and return its test metrics plus bookkeeping.

    Returns a dict with the paper's metric triple and ``params``,
    ``seconds_per_batch``, ``prediction_seconds``, ``history``.

    All epoch/early-stopping mechanics live in the training engine;
    ``run_dir`` makes the cell durable (config.json / metrics.jsonl /
    checkpoints) and ``callbacks`` appends extra
    :class:`repro.train.Callback` hooks to the default stack.
    """
    rng = np.random.default_rng(seed)
    kwargs = dict(config.model_overrides)
    kwargs.update(model_kwargs or {})
    # The spec (not ad-hoc kwargs) is the durable identity of the cell:
    # it lands in the run directory's config.json, from which
    # repro.serve.Predictor can rebuild the exact architecture.
    spec = ModelSpec(model_name, NUM_FEATURES, kwargs)
    model = build_model(spec, rng=rng)
    trainer = Trainer(model, task, run_dir=run_dir, callbacks=callbacks,
                      **config.trainer_kwargs(seed))
    history = trainer.fit(splits.train, splits.validation)
    metrics = trainer.evaluate(splits.test)
    metrics.update(
        params=model.num_parameters(),
        seconds_per_batch=history.seconds_per_batch,
        prediction_seconds=history.prediction_seconds_per_sample,
        history=history,
    )
    return metrics, model


def aggregate_seeds(per_seed):
    """Mean (and std) of the metric triple across repeated runs."""
    keys = ("bce", "auc_roc", "auc_pr")
    out = {}
    for key in keys:
        values = np.array([m[key] for m in per_seed], dtype=float)
        out[key] = float(np.nanmean(values))
        out[f"{key}_std"] = float(np.nanstd(values))
    out["params"] = per_seed[0]["params"]
    out["seconds_per_batch"] = float(np.mean(
        [m["seconds_per_batch"] for m in per_seed]))
    out["prediction_seconds"] = float(np.mean(
        [m["prediction_seconds"] for m in per_seed]))
    return out


def run_grid(model_names, cohort, task, config, scale=None, run_root=None):
    """Evaluate a list of models on one (cohort, task) cell.

    Returns ``{model name: aggregated metrics}``.  The cohort is sampled
    once and shared across models and seeds, mirroring the paper's fixed
    train/validation/test split.  With ``run_root`` every (model, seed)
    cell leaves a durable run directory under
    ``run_root/<cohort>-<task>/<model>/seed<k>/``.
    """
    splits = load_cohort(cohort, scale=scale or config.scale,
                         fractions=config.fractions)
    results = {}
    for name in model_names:
        per_seed = []
        for seed in config.seeds():
            run_dir = None
            if run_root is not None:
                run_dir = (Path(run_root) / f"{cohort}-{task}"
                           / name / f"seed{seed}")
            metrics, _ = train_and_evaluate(name, splits, task, config, seed,
                                            run_dir=run_dir)
            per_seed.append(metrics)
        results[name] = aggregate_seeds(per_seed)
    return results
