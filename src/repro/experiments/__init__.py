"""Experiment runners: one module per paper table or figure.

See DESIGN.md's per-experiment index for the mapping.
"""

from .config import ExperimentConfig, default_config
from .figure6 import FIGURE6_MODELS, render_figure6, run_figure6
from .figure7 import render_figure7, run_figure7
from .figure8 import attention_summary, run_figure8
from .figure9 import relevant_vs_irrelevant, run_figure9
from .figure10 import run_figure10
from .formatting import format_metric, render_table
from .interpretability import patient_a_processed, trained_model
from .runner import aggregate_seeds, run_grid, train_and_evaluate
from .table1 import render_table1, run_table1
from .table2 import ESSENTIAL_FEATURES, render_table2, run_table2
from .table3 import TABLE3_MODELS, render_table3, run_table3

__all__ = [
    "ExperimentConfig", "default_config",
    "run_table1", "render_table1",
    "run_figure6", "render_figure6", "FIGURE6_MODELS",
    "run_figure7", "render_figure7",
    "run_figure8", "attention_summary",
    "run_table2", "render_table2", "ESSENTIAL_FEATURES",
    "run_figure9", "relevant_vs_irrelevant",
    "run_figure10",
    "run_table3", "render_table3", "TABLE3_MODELS",
    "trained_model", "patient_a_processed",
    "train_and_evaluate", "run_grid", "aggregate_seeds",
    "render_table", "format_metric",
]
