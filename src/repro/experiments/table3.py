"""Table III — model complexity and runtime.

For every model of the comparison: total trainable parameters, training
seconds per batch (batch size 64), and prediction milliseconds per sample.
Absolute numbers differ from the paper's GPU testbed (this substrate is a
numpy autodiff engine on CPU); the *shape* checks are

* LR / FM / AFM are tiny (<1k parameters);
* ConCare is the largest model; ELDA-Net sits in the tens of thousands;
* ELDA-Net-T adds little cost over GRU, ELDA-Net-F adds more (the paper's
  ordering of the variants).
"""

from __future__ import annotations

import time

from ..nn.backend import xp as np

from .. import nn
from ..baselines import BASELINE_NAMES, build_model
from ..data import NUM_FEATURES, load_cohort
from ..nn.losses import bce_with_logits
from .config import default_config
from .formatting import format_metric, render_table

__all__ = ["TABLE3_MODELS", "run_table3", "render_table3"]

TABLE3_MODELS = BASELINE_NAMES + ("ELDA-Net-T", "ELDA-Net-Fbi",
                                  "ELDA-Net-Ffm", "ELDA-Net")


def run_table3(config=None, models=TABLE3_MODELS, num_batches=3):
    """Measure parameters and timings for every model.

    Uses a few real training steps (forward + backward + update) and a
    few inference passes on batches of 64 admissions.

    Returns ``{model: {"params", "train_seconds_per_batch",
    "predict_ms_per_sample"}}``.
    """
    config = config or default_config()
    splits = load_cohort("physionet2012", scale=config.scale)
    batch = splits.train.subset(np.arange(min(64, len(splits.train))))
    labels = batch.labels("mortality").astype(float)

    results = {}
    for name in models:
        rng = np.random.default_rng(0)
        model = build_model(name, NUM_FEATURES, rng)
        optimizer = nn.Adam(model.parameters(), lr=1e-3)

        train_times = []
        for _ in range(num_batches):
            started = time.perf_counter()
            optimizer.zero_grad()
            logits = model.forward_batch(batch)
            loss = bce_with_logits(logits, labels)
            loss.backward()
            optimizer.step()
            train_times.append(time.perf_counter() - started)

        predict_times = []
        model.eval()
        with nn.no_grad():
            for _ in range(num_batches):
                started = time.perf_counter()
                model.forward_batch(batch)
                predict_times.append(time.perf_counter() - started)
        model.train()

        results[name] = {
            "params": model.num_parameters(),
            "train_seconds_per_batch": float(np.median(train_times)),
            "predict_ms_per_sample": float(
                np.median(predict_times) / len(batch) * 1000.0),
        }
    return results


def render_table3(results):
    """Render in the paper's Table III layout."""
    rows = [
        [name,
         str(metrics["params"]),
         format_metric(metrics["train_seconds_per_batch"], 3),
         format_metric(metrics["predict_ms_per_sample"], 3)]
        for name, metrics in results.items()
    ]
    return render_table(
        ["model", "# of param", "train s/batch", "predict ms/sample"],
        rows, title="Table III: parameters and runtime")
