"""Figure 6 — main results: ELDA-Net vs. 12 baselines.

Reproduces the paper's four panels: {PhysioNet2012, MIMIC-III} x
{in-hospital mortality, LOS > 7 days}, each reporting BCE loss, AUC-ROC,
and AUC-PR for every model.

The paper's headline claims this harness checks:

* ELDA-Net is the best model in every (dataset, task) cell on every
  metric;
* time-series models beat the pooled models (LR / FM / AFM);
* FM beats LR (pairwise interactions help even without time).
"""

from __future__ import annotations

from ..baselines import BASELINE_NAMES
from .config import default_config
from .formatting import format_metric, render_table
from .runner import run_grid

__all__ = ["FIGURE6_MODELS", "run_figure6", "render_figure6"]

#: Models in the paper's presentation order, ELDA-Net last.
FIGURE6_MODELS = BASELINE_NAMES + ("ELDA-Net",)

#: The four evaluation cells of Figure 6.
CELLS = (
    ("physionet2012", "mortality"),
    ("physionet2012", "los"),
    ("mimic3", "mortality"),
    ("mimic3", "los"),
)


def run_figure6(config=None, models=FIGURE6_MODELS, cells=CELLS):
    """Run the full comparison grid.

    Returns ``{(cohort, task): {model: metrics}}``.
    """
    config = config or default_config()
    return {(cohort, task): run_grid(models, cohort, task, config)
            for cohort, task in cells}


def render_figure6(results):
    """Render each (cohort, task) panel as a metrics table."""
    blocks = []
    for (cohort, task), per_model in results.items():
        rows = [
            [name,
             format_metric(metrics["bce"]),
             format_metric(metrics["auc_roc"]),
             format_metric(metrics["auc_pr"])]
            for name, metrics in per_model.items()
        ]
        blocks.append(render_table(
            ["model", "BCE loss", "AUC-ROC", "AUC-PR"], rows,
            title=f"Figure 6 panel: {cohort} / {task}"))
    return "\n\n".join(blocks)
