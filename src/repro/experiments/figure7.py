"""Figure 7 — ablation study over the ELDA-Net variants.

Compares the full ELDA-Net against:

* ``ELDA-Net-T``   — time-level interactions only;
* ``ELDA-Net-Fbi`` / ``Fbi*`` — feature-level only, bi-directional
  embedding (plus its ``*`` zero-handling variant);
* ``ELDA-Net-Ffm`` / ``Ffm*`` — feature-level only, FM-style linear
  embedding (plus its ``*`` variant).

The paper's findings the harness checks:

* the full model beats every variant (the two interaction levels are
  complementary);
* ``Fbi`` beats ``Ffm`` and ``Ffm*`` (the bi-directional embedding wins);
* ``Ffm*`` edges out ``Ffm`` (dedicated embedding of zeros helps FM),
  whereas ``Fbi*`` falls below ``Fbi`` (breaking the continuity of the
  bi-directional embedding hurts).
"""

from __future__ import annotations

from ..core.elda_net import VARIANT_NAMES
from .config import default_config
from .formatting import format_metric, render_table
from .runner import run_grid

__all__ = ["run_figure7", "render_figure7"]

CELLS = (
    ("physionet2012", "mortality"),
    ("physionet2012", "los"),
    ("mimic3", "mortality"),
    ("mimic3", "los"),
)


def run_figure7(config=None, cells=CELLS):
    """Run the ablation grid: ``{(cohort, task): {variant: metrics}}``."""
    config = config or default_config()
    return {(cohort, task): run_grid(VARIANT_NAMES, cohort, task, config)
            for cohort, task in cells}


def render_figure7(results):
    """Render each ablation panel as a metrics table."""
    blocks = []
    for (cohort, task), per_model in results.items():
        rows = [
            [name,
             format_metric(metrics["bce"]),
             format_metric(metrics["auc_roc"]),
             format_metric(metrics["auc_pr"])]
            for name, metrics in per_model.items()
        ]
        blocks.append(render_table(
            ["variant", "BCE loss", "AUC-ROC", "AUC-PR"], rows,
            title=f"Figure 7 panel: {cohort} / {task}"))
    return "\n\n".join(blocks)
