"""Table II — Patient A's essential medical features.

Reports the standardized values of the case-study features (FiO2, Glucose,
HCO3, HCT, HR, Lactate, MAP, Temp, pH, WBC) at selected hours of
Patient A's admission, mirroring the paper's Table II.  The expected DLA
signature: Glucose/Lactate strongly positive, pH/HCO3/Temp/MAP negative
during the crisis, with HCT/WBC near baseline throughout.
"""

from __future__ import annotations


from ..data import load_cohort
from ..data.schema import feature_index
from .config import default_config
from .formatting import format_metric, render_table
from .interpretability import patient_a_processed

__all__ = ["ESSENTIAL_FEATURES", "run_table2", "render_table2"]

#: Feature panel of the paper's Table II.
ESSENTIAL_FEATURES = ("FiO2", "Glucose", "HCO3", "HCT", "HR", "Lactate",
                      "MAP", "Temp", "pH", "WBC")

#: Hours the paper tabulates (includes the two Figure 9 time steps).
HOURS = (1, 7, 13, 19, 25, 31, 35, 41, 47)


def run_table2(config=None, cohort="physionet2012", hours=HOURS):
    """Return ``{feature: {hour: standardized value}}`` for Patient A."""
    config = config or default_config()
    splits = load_cohort(cohort, scale=config.scale)
    values, _, _ = patient_a_processed(splits.standardizer)
    return {
        name: {hour: float(values[hour, feature_index(name)])
               for hour in hours}
        for name in ESSENTIAL_FEATURES
    }


def render_table2(results):
    """Render the feature-by-hour matrix."""
    hours = sorted(next(iter(results.values())))
    rows = [[name] + [format_metric(results[name][h], 2) for h in hours]
            for name in results]
    return render_table(["feature"] + [f"h{h}" for h in hours], rows,
                        title="Table II: Patient A (standardized values)")
