"""Table I — dataset statistics.

Reproduces the paper's Table I rows for both cohorts: admission counts,
survivor / non-survivor and LOS class splits, average records per patient,
feature count, and missing rate without imputation.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from ..data import PROFILES, build_dataset
from .formatting import format_metric, render_table

__all__ = ["run_table1", "render_table1"]


def run_table1(scale=None):
    """Compute Table I statistics for both cohorts.

    Returns ``{profile name: statistics dict}`` (see
    :meth:`repro.data.EMRDataset.statistics`).
    """
    results = {}
    for key, profile in PROFILES.items():
        rng = np.random.default_rng(profile.seed)
        admissions = profile.admissions(scale=scale, rng=rng)
        dataset, _ = build_dataset(admissions)
        results[profile.name] = dataset.statistics()
    return results


def render_table1(results):
    """Render the statistics in the paper's Table I layout."""
    names = list(results)
    rows = [
        ["# of admissions"] + [results[n]["admissions"] for n in names],
        ["survivor : non-survivor"] + [
            f"{results[n]['survivor']} : {results[n]['non_survivor']}"
            for n in names],
        ["LOS<=7 : LOS>7"] + [
            f"{results[n]['los_le_7']} : {results[n]['los_gt_7']}"
            for n in names],
        ["avg. # of records per patient"] + [
            format_metric(results[n]["avg_records_per_patient"], 2)
            for n in names],
        ["# of medical features"] + [results[n]["num_features"]
                                     for n in names],
        ["missing rate (without imputation)"] + [
            f"{results[n]['missing_rate'] * 100:.2f}%" for n in names],
    ]
    return render_table([""] + names, rows,
                        title="Table I: dataset statistics")
