"""Plain-text table rendering for experiment outputs.

The benchmark harness prints the same rows the paper's tables and figures
report; these helpers keep that output aligned and diff-friendly.
"""

from __future__ import annotations

__all__ = ["render_table", "format_metric"]


def format_metric(value, digits=3):
    """Format a float metric, tolerating NaN and ints."""
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "n/a"
    return f"{value:.{digits}f}"


def render_table(headers, rows, title=None):
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Sequence of column names.
    rows:
        Sequence of row sequences; cells are stringified as-is (use
        :func:`format_metric` for floats).
    title:
        Optional heading printed above the table.
    """
    cells = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
