"""Figure 10 — Glucose interaction-attention traces over time,
ELDA-Net vs ELDA-Net-F_fm.

For Patient A, plots (as data series) the attention weight of the
interaction between Glucose and each partner feature at every hour,
alongside the Glucose value itself.

The paper's reads the harness checks:

* with the bi-directional embedding (full ELDA-Net), related abnormal
  partners (FiO2, HR, Lactate) carry more attention during the crisis
  than weakly related ones (HCT, WBC);
* with the FM embedding (ELDA-Net-F_fm), the extreme-valued Lactate
  dominates: its attention share is much higher than under ELDA-Net,
  squeezing the other related features.
"""

from __future__ import annotations


from ..core.interpret import interaction_trace
from ..data.schema import feature_index
from .config import default_config
from .interpretability import patient_a_processed, trained_model

__all__ = ["run_figure10", "PARTNERS"]

#: Partner features traced in the paper's Figure 10.
PARTNERS = ("FiO2", "HR", "Lactate", "pH", "HCT", "WBC")


def run_figure10(config=None, cohort="physionet2012", seed=0, model=None,
                 splits=None):
    """Run the Figure 10 pipeline for both embedding mechanisms.

    Returns ``{"glucose": (T,) standardized trace,
    "ELDA-Net": {partner: trace}, "ELDA-Net-Ffm": {partner: trace}}``.
    A pre-trained full ELDA-Net ``(model, splits)`` pair can be supplied;
    the F_fm variant is always trained here.
    """
    config = config or default_config()
    result = {}
    if model is not None and splits is not None:
        values, ever_observed, _ = patient_a_processed(splits.standardizer)
        result["ELDA-Net"] = interaction_trace(model, values, ever_observed,
                                               "Glucose", PARTNERS)
        variants = ("ELDA-Net-Ffm",)
    else:
        variants = ("ELDA-Net", "ELDA-Net-Ffm")
    for variant in variants:
        model_v, splits, _ = trained_model(variant, cohort, "mortality",
                                           config, seed)
        values, ever_observed, _ = patient_a_processed(splits.standardizer)
        result[variant] = interaction_trace(model_v, values, ever_observed,
                                            "Glucose", PARTNERS)
    values, _, _ = patient_a_processed(splits.standardizer)
    result["glucose"] = values[:, feature_index("Glucose")]
    return result
