"""Shared experiment configuration.

Every experiment runner takes an :class:`ExperimentConfig` that scales the
protocol with the ``REPRO_SCALE`` environment variable:

========  ============  ======  =====
scale     cohort size   epochs  seeds
========  ============  ======  =====
small     5% of paper   4       1
medium    25% of paper  10      2
paper     100%          20      5
========  ============  ======  =====

``small`` keeps the whole benchmark suite laptop-scale while preserving
the evaluation's *shape*; ``paper`` reproduces the full protocol (5 runs
per model, early stopping on validation).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

__all__ = ["ExperimentConfig", "default_config"]

_PRESETS = {
    # At reduced scales the paper's 10% test split is tiny, so the harness
    # shifts mass from train to test to keep metric variance manageable.
    "small": dict(max_epochs=8, patience=3, num_seeds=1,
                  fractions=(0.55, 0.1, 0.35), monitor="loss"),
    "medium": dict(max_epochs=14, patience=4, num_seeds=2,
                   fractions=(0.65, 0.1, 0.25), monitor="loss"),
    "paper": dict(max_epochs=20, patience=4, num_seeds=5,
                  fractions=(0.8, 0.1, 0.1), monitor="auc_pr"),
}


@dataclass
class ExperimentConfig:
    """Protocol knobs for one experiment run."""

    scale: str = "small"
    max_epochs: int = 10
    patience: int = 4
    num_seeds: int = 1
    batch_size: int = 64
    lr: float = 1e-3
    base_seed: int = 0
    fractions: tuple = (0.8, 0.1, 0.1)
    monitor: str = "auc_pr"
    model_overrides: dict = field(default_factory=dict)

    def trainer_kwargs(self, seed):
        """Settings for :class:`repro.train.Trainer` at a given seed."""
        return dict(lr=self.lr, batch_size=self.batch_size,
                    max_epochs=self.max_epochs, patience=self.patience,
                    seed=seed, monitor=self.monitor)

    def seeds(self):
        """The seeds of the repeated-runs protocol."""
        return [self.base_seed + k for k in range(self.num_seeds)]


def default_config(scale=None):
    """Build the config for a scale name (or the ``REPRO_SCALE`` env var)."""
    name = scale or os.environ.get("REPRO_SCALE", "small")
    if name not in _PRESETS:
        raise ValueError(f"unknown scale {name!r}; choose from "
                         f"{', '.join(_PRESETS)}")
    return ExperimentConfig(scale=name, **_PRESETS[name])
