"""Figure 8 — time-level interaction attention, survivors vs non-survivors.

Trains ELDA-Net and Dipole_c on the mortality task, extracts each model's
time attention over the test cohort, and reports the per-group mean curves
(the red lines of Figure 8) plus per-patient rows (the blue lines).

The paper's qualitative claims the harness checks:

* ELDA's attention mass concentrates on *later* hours in both groups
  (the recency effect of interacting with ``h_T``);
* non-survivors' curves are more varied/peaked than survivors'
  (acute events create crucial time steps);
* Dipole_c separates the two cohorts less than ELDA does.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..core.interpret import cohort_time_attention
from ..data.dataset import iterate_batches
from .config import default_config
from .interpretability import trained_model

__all__ = ["run_figure8", "dipole_time_attention", "attention_summary"]


def dipole_time_attention(model, dataset, batch_size=64):
    """Cohort-mean attention curves for a trained Dipole model."""
    rows = []
    model.eval()
    with nn.no_grad():
        for batch, _ in iterate_batches(dataset, "mortality", batch_size):
            _, weights = model.forward(nn.Tensor(batch.values),
                                       return_attention=True)
            rows.append(weights.data)
    model.train()
    attention = np.concatenate(rows)
    labels = dataset.labels("mortality")
    return {
        "survivor": {"per_patient": attention[labels == 0],
                     "mean": attention[labels == 0].mean(axis=0)},
        "non_survivor": {"per_patient": attention[labels == 1],
                         "mean": attention[labels == 1].mean(axis=0)},
    }


def attention_summary(curve):
    """Scalar summaries of a mean attention curve.

    Returns ``late_share`` (mass on the last third of hours) and
    ``peakiness`` (max / uniform weight).
    """
    curve = np.asarray(curve, dtype=float)
    steps = curve.shape[0]
    third = steps - steps // 3
    return {
        "late_share": float(curve[third:].sum()),
        "peakiness": float(curve.max() * steps),
    }


def run_figure8(config=None, cohort="physionet2012", seed=0, model=None,
                splits=None, model_metrics=None):
    """Run the full Figure 8 pipeline for ELDA-Net and Dipole_c.

    Returns ``{"ELDA-Net": cohort curves, "Dipole_c": cohort curves,
    "metrics": ...}`` where cohort curves follow
    :func:`repro.core.interpret.cohort_time_attention`'s layout.
    A pre-trained ELDA ``(model, splits)`` pair can be supplied to avoid
    retraining across experiments.
    """
    config = config or default_config()
    if model is None or splits is None:
        elda, splits, elda_metrics = trained_model("ELDA-Net", cohort,
                                                   "mortality", config, seed)
    else:
        elda, elda_metrics = model, (model_metrics or {})
    elda_curves = cohort_time_attention(elda, splits.test)

    from .runner import train_and_evaluate
    dipole_metrics, dipole = train_and_evaluate("Dipole_c", splits,
                                                "mortality", config, seed)
    dipole_curves = dipole_time_attention(dipole, splits.test)
    return {
        "ELDA-Net": elda_curves,
        "Dipole_c": dipole_curves,
        "metrics": {"ELDA-Net": elda_metrics, "Dipole_c": dipole_metrics},
    }
