"""Array-API backend layer: every array op in the stack routes through here.

The rest of ``repro`` (ops, tensor, layers, baselines, serve, train,
metrics, experiments) performs its array math against :data:`xp`, a lazy
namespace proxy over the *active backend* — it never imports ``numpy``
directly.  The only sanctioned direct-numpy modules are this one, the
precision policy (:mod:`repro.nn.dtype`), the serialization edges
(``.npz`` I/O is a numpy file format), and the data/bench planes, whose
on-disk byte contracts are pinned to numpy; the lint gate in
``tests/test_no_naked_numpy.py`` keeps that seam from eroding.

Backends
--------
A backend is a named :class:`Backend` instance exposing ``xp``, an
array-API-compatible namespace (``numpy`` itself for the default
:class:`NumpyBackend`).  The active backend is chosen once at import
from the ``REPRO_BACKEND`` environment variable (default ``"numpy"``)
and can be switched at runtime with :func:`set_backend` — e.g. an
accelerated drop-in namespace registered via :func:`register_backend`.
Switching backends mid-model is on the caller: arrays created under the
old namespace are not migrated.

The proxy
---------
:data:`xp` resolves attributes from the active backend's namespace on
first access and caches them in its own ``__dict__``, so steady-state
attribute lookup costs exactly a module attribute lookup — the autodiff
hot path pays nothing for the indirection.  :func:`set_backend` clears
the cache, so the switch takes effect everywhere at once.
"""

from __future__ import annotations

import os

import numpy

__all__ = ["Backend", "NumpyBackend", "register_backend", "available_backends",
           "get_backend", "set_backend", "xp"]


class Backend:
    """A named array-API provider.

    Parameters
    ----------
    name:
        Registry key (``REPRO_BACKEND`` value / :func:`set_backend` arg).
    xp:
        The array namespace: a module (or module-like object) exposing
        the numpy API surface the stack uses (``ndarray``, ufuncs,
        ``linalg``-free dense math, ``random.default_rng``, dtype
        constructors).  Numpy itself satisfies this trivially; an
        accelerated backend supplies a compatible namespace.
    """

    def __init__(self, name, xp):
        self.name = str(name)
        self.xp = xp

    def __repr__(self):
        return f"{type(self).__name__}({self.name!r})"


class NumpyBackend(Backend):
    """The default backend: plain numpy, bit-for-bit the historical
    behavior of the stack."""

    def __init__(self):
        super().__init__("numpy", numpy)


_BACKENDS = {}


def register_backend(backend):
    """Register ``backend`` under its name; returns the backend.

    Re-registering a name replaces the previous entry (useful for tests
    that stub an alternative namespace).
    """
    if not isinstance(backend, Backend):
        raise TypeError(f"expected a Backend, got {type(backend).__name__}")
    _BACKENDS[backend.name] = backend
    return backend


def available_backends():
    """Sorted names of the registered backends."""
    return sorted(_BACKENDS)


register_backend(NumpyBackend())


class _NamespaceProxy:
    """Caching attribute proxy over the active backend's namespace."""

    def __getattr__(self, name):
        value = getattr(_ACTIVE.xp, name)
        # Cache on the instance so subsequent lookups bypass __getattr__
        # entirely; set_backend() clears this cache.
        object.__setattr__(self, name, value)
        return value

    def __repr__(self):
        return f"<xp proxy over backend {_ACTIVE.name!r}>"


#: The array namespace the whole stack computes against.  Import as
#: ``from repro.nn.backend import xp`` (conventionally aliased ``np``).
xp = _NamespaceProxy()


def get_backend():
    """The currently active :class:`Backend`."""
    return _ACTIVE


def set_backend(name_or_backend):
    """Activate a backend by name (or instance); returns it.

    Clears the :data:`xp` attribute cache so every module sees the new
    namespace immediately.  Arrays already created under the previous
    backend are not migrated.
    """
    global _ACTIVE
    if isinstance(name_or_backend, Backend):
        backend = register_backend(name_or_backend)
    else:
        try:
            backend = _BACKENDS[name_or_backend]
        except KeyError:
            raise ValueError(
                f"unknown backend {name_or_backend!r}; registered: "
                + ", ".join(available_backends())) from None
    _ACTIVE = backend
    vars(xp).clear()
    return backend


def _initial_backend():
    name = os.environ.get("REPRO_BACKEND", "").strip().lower()
    if not name:
        return _BACKENDS["numpy"]
    if name not in _BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND={name!r} is not a registered backend; "
            "registered: " + ", ".join(available_backends()))
    return _BACKENDS[name]


_ACTIVE = _initial_backend()
