"""Reverse-mode automatic differentiation on top of numpy.

This module provides the :class:`Tensor` class, the foundation of the
``repro.nn`` substrate.  A ``Tensor`` wraps a numpy array and records the
operations applied to it in a dynamic computation graph; calling
:meth:`Tensor.backward` on a scalar result propagates gradients to every
tensor created with ``requires_grad=True``.

The design follows the classic "define-by-run" tape:

* every op creates a new ``Tensor`` whose ``_parents`` are its inputs and
  whose ``_backward`` closure distributes the output gradient to them;
* broadcasting is handled uniformly by :func:`unbroadcast`, which sums a
  gradient down to the shape of the input it belongs to;
* ``backward`` performs an iterative topological sort, so arbitrarily deep
  graphs (e.g. a 48-step GRU unrolled in Python) do not hit the recursion
  limit.

Floating-point precision is governed by the repo-wide policy in
:mod:`repro.nn.dtype`: every tensor is coerced to the current default
dtype (float32 unless overridden), so the engine runs end-to-end in one
precision while correctness tooling (gradcheck, the finite-difference
sweeps) scopes float64 locally with ``dtype.autocast``.

Gradient memory is treated as a reusable plane rather than a stream of
fresh allocations: the first gradient reaching a node seeds ``.grad``
directly (donated without a copy when the producing op owns the buffer),
later contributions accumulate in place via ``np.add(..., out=)``, and
``backward(free_graph=True)`` releases op closures and interior
gradients as soon as they are consumed.  ``repro.bench`` hooks observe
every gradient-buffer birth/death to report peak live gradient bytes.
"""

from __future__ import annotations

from .backend import xp as np

from ..bench import _hooks as _bench_hooks
from .dtype import get_default_dtype

__all__ = ["Tensor", "unbroadcast", "as_tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True

# Active anomaly-detection state, managed by repro.nn.debug.detect_anomaly.
# When not None, every op output and every backward gradient is scanned for
# NaN/Inf and the offending op is reported by name.
_ANOMALY_STATE = None


def _op_name_of(backward):
    """Op-name tag derived from a backward closure's qualified name.

    Every op defines its closure as ``def backward(grad)`` inside the op
    function, so ``add.<locals>.backward`` tags the node as ``"add"`` —
    a zero-maintenance label for anomaly reports and graph audits.
    """
    if backward is None:
        return None
    return backward.__qualname__.split(".", 1)[0]


class no_grad:
    """Context manager that disables graph construction.

    Inside a ``with no_grad():`` block every op behaves like a plain numpy
    computation: results have ``requires_grad=False`` and record no parents.
    Used by inference paths and by optimizers when updating parameters.
    """

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, exc_type, exc, tb):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled():
    """Return whether ops currently record the computation graph."""
    return _GRAD_ENABLED


def unbroadcast(grad, shape):
    """Sum ``grad`` down to ``shape``, undoing numpy broadcasting.

    If an input of shape ``shape`` was broadcast up to ``grad.shape`` during
    the forward pass, the correct gradient w.r.t. the input is the sum of
    ``grad`` over all broadcast axes.
    """
    if grad.shape == tuple(shape):
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the input.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce(value):
    """Convert a scalar / array-like into an array of the policy dtype.

    The target precision comes from :func:`repro.nn.dtype.get_default_dtype`
    (float32 by default); arrays already in the policy dtype pass through
    without a copy.
    """
    dtype = get_default_dtype()
    if isinstance(value, np.ndarray):
        if value.dtype != dtype:
            return value.astype(dtype)
        return value
    return np.asarray(value, dtype=dtype)


def as_tensor(value, requires_grad=False):
    """Return ``value`` as a :class:`Tensor` (no copy if it already is one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value, requires_grad=requires_grad)


class Tensor:
    """A numpy array with reverse-mode autodiff.

    Parameters
    ----------
    data:
        Scalar, sequence, or numpy array.  Stored in the policy dtype
        (see :mod:`repro.nn.dtype`; float32 by default).
    requires_grad:
        Whether gradients should be accumulated into ``.grad`` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_op", "name")

    def __init__(self, data, requires_grad=False, _parents=(), _backward=None):
        self.data = _coerce(data)
        self.grad = None
        self.requires_grad = bool(requires_grad)
        self._parents = _parents
        self._backward = _backward
        self._op = None
        self.name = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def ndim(self):
        return self.data.ndim

    @property
    def size(self):
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def __len__(self):
        return len(self.data)

    def __repr__(self):
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag})"

    def numpy(self):
        """Return the underlying numpy array (no copy)."""
        return self.data

    def item(self):
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self.data.item()

    # ------------------------------------------------------------------
    # Graph machinery
    # ------------------------------------------------------------------
    @property
    def op_name(self):
        """Name of the op that produced this tensor (``None`` for leaves)."""
        if self._op is not None:
            return self._op
        return _op_name_of(self._backward)

    @staticmethod
    def _make(data, parents, backward):
        """Create an op output, respecting the global no_grad switch."""
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out = Tensor(data, requires_grad=True, _parents=tuple(parents),
                         _backward=backward)
        else:
            out = Tensor(data)
        if _ANOMALY_STATE is not None:
            out._op = _op_name_of(backward)
            from . import debug
            debug._on_forward(out, parents, out._op)
        return out

    def _accumulate(self, grad, owned=False):
        """Add ``grad`` into ``.grad``, reusing buffers where possible.

        The first contribution *seeds* the gradient buffer instead of
        allocating zeros and adding into them; with ``owned=True`` the
        caller donates a freshly computed array and no copy is made at
        all.  Ops must only pass ``owned=True`` for arrays they
        allocated themselves in the backward closure — never for the
        incoming gradient or a view of it, which may be aliased by a
        sibling branch of the graph.  Later contributions accumulate in
        place via ``np.add(..., out=)``.
        """
        if self.grad is None:
            if (owned and isinstance(grad, np.ndarray)
                    and grad.dtype == self.data.dtype
                    and grad.shape == self.data.shape
                    and grad.flags.writeable):
                self.grad = grad
            else:
                self.grad = np.array(grad, dtype=self.data.dtype)
            if _bench_hooks._PROFILERS:
                _bench_hooks.grad_alloc(self.grad.nbytes)
        else:
            np.add(self.grad, grad, out=self.grad)

    def zero_grad(self):
        """Reset the accumulated gradient to ``None``."""
        if self.grad is not None and _bench_hooks._PROFILERS:
            _bench_hooks.grad_free(self.grad.nbytes)
        self.grad = None

    def detach(self):
        """Return a new tensor sharing data but cut from the graph."""
        return Tensor(self.data)

    def backward(self, grad=None, free_graph=True):
        """Backpropagate from this tensor through the recorded graph.

        Parameters
        ----------
        grad:
            Gradient of some downstream scalar w.r.t. this tensor.  Defaults
            to 1 for scalar tensors; required otherwise.
        free_graph:
            When true (the default), each node's backward closure,
            parent references, and interior gradient are released as
            soon as they are consumed, so peak live gradient memory
            stays at a couple of activations instead of the whole tape.
            Pass ``False`` to keep the closures for a second backward
            over the same graph.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without an explicit gradient "
                                   "requires a scalar tensor")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"gradient shape {grad.shape} does not match "
                                 f"tensor shape {self.data.shape}")

        # Iterative topological sort (DFS with an explicit stack).
        order = []
        visited = set()
        stack = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        if _ANOMALY_STATE is not None:
            from . import debug
            debug._check_seed_grad(self, grad)

        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                if _bench_hooks._PROFILERS:
                    # Time this node's backward and attribute it to the
                    # producing op's tag (see repro.bench).
                    _bench_hooks.call_backward(node.op_name, node._backward,
                                               node.grad)
                else:
                    node._backward(node.grad)
                if _ANOMALY_STATE is not None:
                    from . import debug
                    debug._on_backward(node)
                # Free intermediate gradients eagerly in every mode —
                # a second backward must not double-count them; leaves
                # (parameters / inputs) have no _backward and keep theirs.
                if node.grad is not None and _bench_hooks._PROFILERS:
                    _bench_hooks.grad_free(node.grad.nbytes)
                node.grad = None
                if free_graph:
                    node._parents = ()
                    node._backward = None

    # ------------------------------------------------------------------
    # Operators (implemented in ops.py, attached below to avoid a cycle)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from . import ops
        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from . import ops
        return ops.sub(self, other)

    def __rsub__(self, other):
        from . import ops
        return ops.sub(other, self)

    def __mul__(self, other):
        from . import ops
        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from . import ops
        return ops.div(self, other)

    def __rtruediv__(self, other):
        from . import ops
        return ops.div(other, self)

    def __neg__(self):
        from . import ops
        return ops.neg(self)

    def __pow__(self, exponent):
        from . import ops
        return ops.power(self, exponent)

    def __matmul__(self, other):
        from . import ops
        return ops.matmul(self, other)

    def __getitem__(self, index):
        from . import ops
        return ops.getitem(self, index)

    # Convenience method forms -----------------------------------------
    def sum(self, axis=None, keepdims=False):
        from . import ops
        return ops.sum(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from . import ops
        return ops.mean(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from . import ops
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.reshape(self, shape)

    def transpose(self, axes=None):
        from . import ops
        return ops.transpose(self, axes)

    @property
    def T(self):
        return self.transpose()

    def swapaxes(self, a, b):
        from . import ops
        return ops.swapaxes(self, a, b)

    def exp(self):
        from . import ops
        return ops.exp(self)

    def log(self):
        from . import ops
        return ops.log(self)

    def tanh(self):
        from . import ops
        return ops.tanh(self)

    def sigmoid(self):
        from . import ops
        return ops.sigmoid(self)

    def relu(self):
        from . import ops
        return ops.relu(self)

    def sqrt(self):
        from . import ops
        return ops.sqrt(self)

    def clip(self, low, high):
        from . import ops
        return ops.clip(self, low, high)
