"""Anomaly detection and graph auditing for the autodiff engine.

Two opt-in correctness tools:

* :class:`detect_anomaly` — a context manager that makes every op check
  its forward value, and :meth:`Tensor.backward` check every gradient,
  for NaN/Inf.  The first non-finite value raises :class:`AnomalyError`
  naming the offending op (each graph node carries a lightweight op-name
  tag) together with the graph path that led to it, so a NaN that would
  otherwise surface epochs later as a garbage loss is pinned to the exact
  primitive that produced it.

* :func:`audit_backward` — runs ``backward()`` under instrumentation and
  asserts two structural invariants of the tape: no gradient is ever
  accumulated into a tensor with ``requires_grad=False``, and every
  interior node's backward closure runs exactly once (the topological-
  order guarantee; diamond-shaped graphs would double-count gradients if
  this regressed).

Both are used by the test suite and exposed to users via the trainer's
``anomaly_mode`` flag and the CLI's ``--debug-anomaly`` switch.
"""

from __future__ import annotations

from dataclasses import dataclass

from .backend import xp as np

from . import tensor as _tensor_mod
from .tensor import Tensor

__all__ = ["AnomalyError", "GraphAuditError", "GraphAudit", "detect_anomaly",
           "anomaly_enabled", "graph_path", "audit_backward"]


class AnomalyError(RuntimeError):
    """A non-finite value (NaN/Inf) was produced while anomaly mode is on."""


class GraphAuditError(AssertionError):
    """A structural invariant of the autodiff tape was violated."""


def anomaly_enabled():
    """Return whether a :class:`detect_anomaly` block is currently active."""
    return _tensor_mod._ANOMALY_STATE is not None


class detect_anomaly:
    """Context manager enabling NaN/Inf detection on every op.

    Parameters
    ----------
    check_forward:
        Raise when an op's output contains NaN/Inf (default on).
    check_backward:
        Raise when a backward closure produces a NaN/Inf gradient
        (default on).
    dtype:
        Optional precision override scoped to the block (e.g.
        ``np.float64`` to re-run a float32 overflow in double precision
        and see whether it is a range problem or a genuine divergence).
        Implemented with :class:`repro.nn.dtype.autocast`.

    Nesting is allowed; the previous state is restored on exit.  The
    checks cost one ``np.isfinite`` scan per op, so leave this off in
    production runs and switch it on to localize a numerical failure.
    """

    def __init__(self, check_forward=True, check_backward=True, dtype=None):
        self.check_forward = check_forward
        self.check_backward = check_backward
        from .dtype import autocast
        self._autocast = None if dtype is None else autocast(dtype)

    def __enter__(self):
        self._previous = _tensor_mod._ANOMALY_STATE
        _tensor_mod._ANOMALY_STATE = self
        if self._autocast is not None:
            self._autocast.__enter__()
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._autocast is not None:
            self._autocast.__exit__(exc_type, exc, tb)
        _tensor_mod._ANOMALY_STATE = self._previous
        return False


def graph_path(node, limit=12):
    """Describe the lineage of ``node`` as ``"op <- op <- ... <- leaf"``.

    Follows one parent chain (preferring parents that are themselves op
    outputs), which is enough to localize where in a model a bad value
    came from.
    """
    names = []
    current = node
    for _ in range(limit):
        name = current.op_name
        if name is None:
            break
        names.append(name)
        parents = [p for p in current._parents if p.op_name is not None]
        if not parents:
            names.append("leaf")
            break
        current = parents[0]
    else:
        names.append("...")
    return " <- ".join(names) if names else "leaf"


def _describe_bad(data):
    data = np.asarray(data)
    parts = []
    nans = int(np.isnan(data).sum())
    infs = int(np.isinf(data).sum())
    if nans:
        parts.append(f"{nans} NaN")
    if infs:
        parts.append(f"{infs} Inf")
    return ", ".join(parts) or "non-finite values"


def _on_forward(out, parents, op_name):
    """Called from ``Tensor._make`` while anomaly mode is active."""
    state = _tensor_mod._ANOMALY_STATE
    if state is None or not state.check_forward:
        return
    if np.isfinite(out.data).all():
        return
    upstream = [p.op_name or "leaf" for p in parents]
    raise AnomalyError(
        f"anomaly detected in forward pass: op '{op_name}' produced "
        f"{_describe_bad(out.data)} (output shape {out.shape}); "
        f"inputs from [{', '.join(upstream) or 'constants'}]; "
        f"graph path: {graph_path(out)}")


def _on_backward(node):
    """Called from ``Tensor.backward`` after ``node._backward`` ran."""
    state = _tensor_mod._ANOMALY_STATE
    if state is None or not state.check_backward:
        return
    for parent in node._parents:
        if parent.grad is not None and not np.isfinite(parent.grad).all():
            raise AnomalyError(
                f"anomaly detected in backward pass: backward of op "
                f"'{node.op_name}' produced {_describe_bad(parent.grad)} in "
                f"the gradient of a parent "
                f"('{parent.op_name or 'leaf'}', shape {parent.shape}); "
                f"graph path: {graph_path(node)}")


def _check_seed_grad(root, grad):
    state = _tensor_mod._ANOMALY_STATE
    if state is None or not state.check_backward:
        return
    if not np.isfinite(grad).all():
        raise AnomalyError(
            f"anomaly detected: backward() was seeded with "
            f"{_describe_bad(grad)} at the root "
            f"('{root.op_name or 'leaf'}')")


# ----------------------------------------------------------------------
# Graph auditing
# ----------------------------------------------------------------------

@dataclass
class GraphAudit:
    """Result of :func:`audit_backward`."""

    #: Number of interior (op-output) nodes reachable from the root.
    num_interior: int
    #: Number of leaf tensors with ``requires_grad=True`` in the graph.
    num_leaves: int
    #: ``op_name -> times its backward ran`` (every value must be 1).
    visits: dict


def _reachable(root):
    """All graph nodes reachable from ``root`` along requires-grad edges,
    mirroring the traversal rule of :meth:`Tensor.backward`."""
    seen = {}
    stack = [root]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen[id(node)] = node
        for parent in node._parents:
            if parent.requires_grad and id(parent) not in seen:
                stack.append(parent)
    return list(seen.values())


def audit_backward(root, grad=None):
    """Run ``root.backward(grad)`` under structural instrumentation.

    Asserts (raising :class:`GraphAuditError` otherwise) that

    * every interior node's backward closure is invoked exactly once, and
    * no gradient is accumulated into a tensor with
      ``requires_grad=False``.

    Returns a :class:`GraphAudit` report.  The graph is consumed exactly
    as by a normal ``backward()`` call.
    """
    nodes = _reachable(root)
    interior = [n for n in nodes if n._backward is not None]
    leaves = [n for n in nodes if n._backward is None and n.requires_grad]
    counts = {id(n): 0 for n in interior}
    labels = {id(n): (n.op_name or "?") for n in interior}

    def wrap(node, original):
        def counted(g):
            counts[id(node)] += 1
            if counts[id(node)] > 1:
                raise GraphAuditError(
                    f"backward of op '{labels[id(node)]}' invoked "
                    f"{counts[id(node)]} times; the topological sort must "
                    f"visit each node exactly once")
            return original(g)
        return counted

    for node in interior:
        node._backward = wrap(node, node._backward)

    original_accumulate = Tensor._accumulate

    def checked_accumulate(self, g, owned=False):
        if not self.requires_grad:
            raise GraphAuditError(
                f"gradient accumulated into a tensor with "
                f"requires_grad=False (shape {self.shape}, "
                f"op '{self.op_name or 'leaf'}')")
        return original_accumulate(self, g, owned=owned)

    Tensor._accumulate = checked_accumulate
    try:
        root.backward(grad)
    finally:
        Tensor._accumulate = original_accumulate

    missed = [labels[i] for i, c in counts.items() if c == 0]
    if missed:
        raise GraphAuditError(
            f"backward never reached {len(missed)} interior node(s): "
            f"{', '.join(sorted(set(missed)))}")
    visits = {}
    for i, c in counts.items():
        name = labels[i]
        visits[name] = max(visits.get(name, 0), c)
    return GraphAudit(num_interior=len(interior), num_leaves=len(leaves),
                      visits=visits)
