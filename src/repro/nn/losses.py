"""Loss functions.

All losses return a scalar :class:`~repro.nn.tensor.Tensor` suitable for
``backward()``.  Binary cross-entropy comes in two flavours: from
probabilities (Eq. 13 of the ELDA paper, with clipping for stability) and
from logits (the numerically preferred form used by the trainer).
"""

from __future__ import annotations

from .backend import xp as np

from . import ops
from .tensor import Tensor, as_tensor

__all__ = ["binary_cross_entropy", "bce_with_logits", "cross_entropy",
           "mean_squared_error"]

_EPS = 1e-7


def binary_cross_entropy(probs, targets, reduction="mean"):
    """BCE between predicted probabilities and binary targets (paper Eq. 13).

    Parameters
    ----------
    probs:
        Tensor of probabilities in (0, 1), any shape.
    targets:
        Array-like of the same shape with values in {0, 1}.
    reduction:
        ``"mean"``, ``"sum"`` or ``"none"``.
    """
    probs = as_tensor(probs)
    targets = as_tensor(targets)
    clipped = ops.clip(probs, _EPS, 1.0 - _EPS)
    loss = -(targets * ops.log(clipped) + (1.0 - targets) * ops.log(1.0 - clipped))
    return _reduce(loss, reduction)


def bce_with_logits(logits, targets, reduction="mean", pos_weight=None):
    """Numerically stable BCE computed from raw logits.

    Uses the identity ``max(z, 0) - z*y + log(1 + exp(-|z|))``.
    ``pos_weight`` optionally up-weights the positive class.
    """
    logits = as_tensor(logits)
    targets = as_tensor(targets)
    z = logits.data
    y = targets.data
    stable = np.maximum(z, 0.0) - z * y + np.log1p(np.exp(-np.abs(z)))
    if pos_weight is not None:
        # Explicit dtype: np.where over two python floats would promote
        # the weight (and the whole loss) to float64 under NEP 50.
        dt = z.dtype
        weight = np.where(y > 0.5, dt.type(pos_weight), dt.type(1.0))
        stable = stable * weight
    else:
        weight = None

    def backward(grad):
        if logits.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            g = sig - y
            if weight is not None:
                # d/dz of weighted BCE: w*(sigmoid(z) - y) only when both terms
                # share the weight; with class weighting only the matching
                # term is scaled, giving w_pos*y*(sig-1) + w_neg*(1-y)*sig.
                g = np.where(y > 0.5, pos_weight * (sig - 1.0), sig)
            logits._accumulate(grad * g, owned=True)

    out = Tensor._make(stable, (logits,), backward)
    return _reduce(out, reduction)


def cross_entropy(logits, targets, reduction="mean"):
    """Multi-class cross-entropy from logits with integer class targets.

    Runs through the fused :func:`repro.nn.ops.softmax_cross_entropy`
    kernel — one graph node instead of the log-softmax / gather / negate
    chain, with bit-identical forward values (equivalence pinned by
    ``tests/nn/test_fused_equivalence.py``).
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    return _reduce(ops.softmax_cross_entropy(logits, targets), reduction)


def mean_squared_error(predictions, targets, reduction="mean"):
    """Mean squared error."""
    predictions = as_tensor(predictions)
    targets = as_tensor(targets)
    diff = predictions - targets
    return _reduce(diff * diff, reduction)


def _reduce(loss, reduction):
    if reduction == "mean":
        return ops.mean(loss)
    if reduction == "sum":
        return ops.sum(loss)
    if reduction == "none":
        return loss
    raise ValueError(f"unknown reduction {reduction!r}")
