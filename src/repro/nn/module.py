"""Module system: parameters, composable modules, and state dicts.

Mirrors the familiar torch-style API at a small scale:

* :class:`Parameter` — a trainable :class:`~repro.nn.tensor.Tensor`;
* :class:`Module` — auto-registers parameters and child modules assigned
  as attributes, exposes ``parameters()``, ``named_parameters()``,
  ``state_dict()`` / ``load_state_dict()``, and a train/eval switch;
* :class:`ModuleList` — an indexable container of child modules.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict

from .backend import xp as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList"]


class Parameter(Tensor):
    """A tensor that is a learnable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all neural-network modules.

    Subclasses define parameters and child modules as attributes in
    ``__init__`` and implement :meth:`forward`.  Calling the module invokes
    ``forward``.
    """

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # ------------------------------------------------------------------
    # Attribute registration
    # ------------------------------------------------------------------
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    # Parameter access
    # ------------------------------------------------------------------
    def named_parameters(self, prefix=""):
        """Yield ``(qualified_name, parameter)`` pairs recursively."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self):
        """Return all parameters of this module and its children."""
        return [p for _, p in self.named_parameters()]

    def num_parameters(self):
        """Total number of scalar trainable parameters."""
        return sum(p.size for p in self.parameters())

    def modules(self):
        """Yield this module and all descendants."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def zero_grad(self):
        """Clear gradients on every parameter."""
        for param in self.parameters():
            param.zero_grad()

    def requires_grad_(self, flag=True):
        """Set ``requires_grad`` on every parameter (freeze / unfreeze).

        Used by :func:`repro.nn.gradcheck.check_module` callers to mask
        sub-modules out of a check, and generally for transfer-style
        freezing.  Returns ``self`` for chaining.
        """
        for param in self.parameters():
            param.requires_grad = bool(flag)
        return self

    # ------------------------------------------------------------------
    # Mode switching
    # ------------------------------------------------------------------
    def train(self, mode=True):
        """Set training mode recursively (affects dropout etc.)."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self):
        """Set inference mode recursively."""
        return self.train(False)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return an ordered mapping of parameter name -> numpy array copy."""
        return OrderedDict((name, param.data.copy())
                           for name, param in self.named_parameters())

    def load_state_dict(self, state):
        """Load parameter values from a mapping produced by :meth:`state_dict`.

        Values are cast once into each parameter's own dtype (the policy
        dtype the model was built under), keeping checkpoint round-trips
        dtype-stable.  A precision-*losing* cast — e.g. a float64
        checkpoint loaded into a float32 model — emits a single
        ``UserWarning`` naming the transition.
        """
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state dict mismatch: missing={sorted(missing)}, "
                           f"unexpected={sorted(unexpected)}")
        narrowed = None
        for name, value in state.items():
            param = own[name]
            value = np.asarray(value)
            if value.shape != param.shape:
                raise ValueError(f"shape mismatch for {name}: "
                                 f"{value.shape} vs {param.shape}")
            if (narrowed is None and value.dtype.kind == "f"
                    and value.dtype.itemsize > param.dtype.itemsize):
                narrowed = (value.dtype, param.dtype)
            param.data[...] = value
        if narrowed is not None:
            warnings.warn(
                f"checkpoint stored as {narrowed[0]} but the model runs "
                f"{narrowed[1]}; weights were cast once at load (set the "
                "precision policy with repro.nn.dtype before building the "
                "model to avoid the cast)",
                UserWarning, stacklevel=2)

    def to(self, dtype):
        """Cast every parameter (in place) to ``dtype``; returns ``self``.

        The policy governs construction only — use this to migrate an
        already-built model, e.g. ``check_module`` upcasting a float32
        model to float64 for finite differencing.
        """
        from .dtype import resolve_dtype
        target = resolve_dtype(dtype)
        for param in self.parameters():
            if param.data.dtype != target:
                param.data = param.data.astype(target)
                if param.grad is not None:
                    param.grad = param.grad.astype(target)
        return self

    # ------------------------------------------------------------------
    # Invocation
    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of child modules registered for parameter discovery."""

    def __init__(self, modules=()):
        super().__init__()
        self._items = []
        for module in modules:
            self.append(module)

    def append(self, module):
        if not isinstance(module, Module):
            raise TypeError("ModuleList only stores Module instances")
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, index):
        return self._items[index]
