"""Low-level tracer hooks for inference graph capture.

The ``@differentiable`` wrapper in :mod:`repro.nn.ops` checks
:data:`_TRACERS` (a module-level stack of active tracers) and, when
non-empty, routes op execution through :func:`call_op` so the tracer
sees every *top-level* op call — composite ops (``min`` is
``neg∘max∘neg``, ``split`` emits one ``getitem`` per section) are
recorded once, at the outermost registered call, exactly the unit a
replay kernel must reproduce.

Mirrors :mod:`repro.bench._hooks`: deliberately imports nothing from
``repro.nn`` so ``ops`` can import it at module load without a cycle,
and the fast path when no tracer is active is a single truthiness check
on a module-level list.
"""

from __future__ import annotations

__all__ = ["active", "push", "pop", "call_op"]

#: Stack of active tracers (:class:`repro.nn.capture._Tracer`),
#: innermost last.  Capture never nests in practice, but the stack shape
#: keeps the discipline identical to the profiler hooks.
_TRACERS = []

#: Re-entrancy depth: >0 while inside a registered op's forward, so
#: nested registered calls are not recorded as separate replay steps.
_DEPTH = 0


def active():
    """Whether any capture tracer is currently recording."""
    return bool(_TRACERS)


def push(tracer):
    """Activate ``tracer`` (innermost position)."""
    _TRACERS.append(tracer)


def pop(tracer):
    """Deactivate ``tracer``; must be the innermost one."""
    if not _TRACERS or _TRACERS[-1] is not tracer:
        raise RuntimeError("capture tracers must be exited innermost-first")
    _TRACERS.pop()


def call_op(name, fn, args, kwargs):
    """Execute a registered op's forward, recording top-level calls.

    Each active tracer's ``record(name, args, kwargs, result)`` runs
    after the op, with the live argument objects and the op's result —
    the tracer derives buffers and replay thunks from them.
    """
    global _DEPTH
    top_level = _DEPTH == 0
    _DEPTH += 1
    try:
        result = fn(*args, **kwargs)
    finally:
        _DEPTH -= 1
    if top_level:
        for tracer in _TRACERS:
            tracer.record(name, args, kwargs, result)
    return result
