"""Weight initialization schemes.

All functions take an explicit ``numpy.random.Generator`` so that every
model in the benchmark suite is exactly reproducible from a seed.

Draws happen in float64 (the generator's native precision, so the
random stream is identical under every policy) and the result is cast
once to the policy default dtype on the way out.
"""

from __future__ import annotations

from .backend import xp as np

from .dtype import get_default_dtype

__all__ = ["glorot_uniform", "glorot_normal", "he_uniform", "orthogonal",
           "uniform", "normal", "zeros", "ones"]


def _as_default(array):
    """Cast a freshly drawn array to the policy dtype (no-op if equal)."""
    return np.asarray(array, dtype=get_default_dtype())


def _fans(shape):
    """Compute (fan_in, fan_out) for a weight of the given shape."""
    if len(shape) < 1:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    return shape[0] * receptive, shape[1] * receptive


def glorot_uniform(shape, rng):
    """Glorot/Xavier uniform: U(-limit, limit) with limit = sqrt(6/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return _as_default(rng.uniform(-limit, limit, size=shape))


def glorot_normal(shape, rng):
    """Glorot/Xavier normal: N(0, 2/(fan_in+fan_out))."""
    fan_in, fan_out = _fans(shape)
    std = np.sqrt(2.0 / (fan_in + fan_out))
    return _as_default(rng.normal(0.0, std, size=shape))


def he_uniform(shape, rng):
    """He uniform, suited to ReLU layers."""
    fan_in, _ = _fans(shape)
    limit = np.sqrt(6.0 / fan_in)
    return _as_default(rng.uniform(-limit, limit, size=shape))


def orthogonal(shape, rng, gain=1.0):
    """Orthogonal initialization (used for recurrent kernels)."""
    if len(shape) < 2:
        raise ValueError("orthogonal init requires at least 2 dimensions")
    rows, cols = shape[0], int(np.prod(shape[1:]))
    flat = rng.normal(0.0, 1.0, size=(max(rows, cols), min(rows, cols)))
    q, r = np.linalg.qr(flat)
    q *= np.sign(np.diag(r))
    if rows < cols:
        q = q.T
    return _as_default(gain * q[:rows, :cols].reshape(shape))


def uniform(shape, rng, low=-0.05, high=0.05):
    """Plain uniform initialization."""
    return _as_default(rng.uniform(low, high, size=shape))


def normal(shape, rng, std=0.05):
    """Plain zero-mean normal initialization."""
    return _as_default(rng.normal(0.0, std, size=shape))


def zeros(shape, rng=None):
    """All-zeros (biases)."""
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape, rng=None):
    """All-ones (scale parameters)."""
    return np.ones(shape, dtype=get_default_dtype())
