"""First-class finite-difference gradient checking.

This module is the ground truth for the autodiff engine.  It provides:

* :func:`numeric_gradient` — central differences of a scalar function of
  numpy arrays;
* :func:`gradcheck` — compare the backward pass of an arbitrary tensor
  expression against central differences, with per-input masking and an
  ``atol + rtol * |numeric|`` acceptance criterion;
* :func:`check_module` — perturb every parameter of a whole
  :class:`~repro.nn.module.Module` (optionally subsampling entries of
  large parameter tensors), so complete models can be gradchecked
  end-to-end rather than op by op.

Failures raise :class:`GradcheckFailure`, an ``AssertionError`` subclass,
so the helpers drop straight into pytest.  Both entry points also return a
report object for callers that want to inspect per-input errors.

Both helpers run in **float64 regardless of the ambient precision
policy**: finite differencing at ``eps ≈ 1e-6`` is meaningless in
float32, so :func:`gradcheck` scopes ``dtype.autocast(np.float64)``
around graph construction and every evaluation, and
:func:`check_module` additionally upcasts the module's parameters for
the duration of the check (float32 → float64 → float32 is lossless, so
the model comes back bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .backend import xp as np

from .dtype import autocast
from .tensor import Tensor, no_grad

__all__ = ["GradcheckFailure", "GradcheckReport", "numeric_gradient",
           "gradcheck", "check_module"]


class GradcheckFailure(AssertionError):
    """Raised when an analytic gradient disagrees with finite differences."""


@dataclass
class GradcheckReport:
    """Per-input comparison of analytic and numeric gradients."""

    #: ``(input_name, max_abs_error, worst_analytic, worst_numeric)`` rows.
    entries: list = field(default_factory=list)
    #: Rows of :attr:`entries` that violated the tolerance.
    failures: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.failures

    @property
    def max_error(self):
        return max((entry[1] for entry in self.entries), default=0.0)

    def summary(self):
        lines = [f"  {name}: max |analytic - numeric| = {err:.3e} "
                 f"(analytic={analytic:.6g}, numeric={numeric:.6g})"
                 for name, err, analytic, numeric in
                 (self.failures or self.entries)]
        return "\n".join(lines)

    def _record(self, name, analytic, numeric, atol, rtol):
        diff = np.abs(analytic - numeric)
        bad = diff > (atol + rtol * np.abs(numeric))
        worst = int(np.argmax(diff)) if diff.size else 0
        flat_a = np.asarray(analytic).reshape(-1)
        flat_n = np.asarray(numeric).reshape(-1)
        entry = (name, float(diff.max()) if diff.size else 0.0,
                 float(flat_a[worst]) if flat_a.size else 0.0,
                 float(flat_n[worst]) if flat_n.size else 0.0)
        self.entries.append(entry)
        if bad.any():
            self.failures.append(entry)


def numeric_gradient(fn, arrays, eps=1e-6):
    """Central finite differences of a scalar function of numpy arrays.

    ``fn()`` takes no arguments and must read the current contents of
    ``arrays``; each array is perturbed in place and restored.
    """
    grads = []
    for target in arrays:
        grad = np.zeros_like(target)
        # .flat writes through to the original memory even when the array
        # is non-contiguous (reshape(-1) would silently return a copy
        # there, making every perturbation a no-op).
        flat = target.flat
        grad_flat = grad.flat
        for i in range(target.size):
            original = flat[i]
            flat[i] = original + eps
            upper = fn()
            flat[i] = original - eps
            lower = fn()
            flat[i] = original
            grad_flat[i] = (upper - lower) / (2 * eps)
        grads.append(grad)
    return grads


def gradcheck(build_fn, *arrays, eps=1e-6, atol=2e-5, rtol=1e-4,
              check_inputs=None, raise_on_failure=True):
    """Check ``build_fn``'s backward pass against central differences.

    Parameters
    ----------
    build_fn:
        ``build_fn(*tensors) -> scalar Tensor``; called with one
        :class:`Tensor` per entry of ``arrays``.
    arrays:
        Numpy inputs (mutated in place during differencing, restored
        after).  Broadcasting shapes are fine.
    eps:
        Finite-difference step.
    atol, rtol:
        Acceptance criterion ``|analytic - numeric| <= atol + rtol * |numeric|``.
    check_inputs:
        Optional boolean mask (one entry per input); ``False`` marks an
        input as non-differentiable, so it neither requires grad nor is
        perturbed.  Defaults to checking every input.
    raise_on_failure:
        When true (default), raise :class:`GradcheckFailure` on mismatch.

    Returns
    -------
    A :class:`GradcheckReport` with one entry per checked input.
    """
    arrays = [np.asarray(a, dtype=np.float64) for a in arrays]
    if check_inputs is None:
        check_inputs = [True] * len(arrays)
    if len(check_inputs) != len(arrays):
        raise ValueError("check_inputs must have one entry per input")

    with autocast(np.float64):
        tensors = [Tensor(a, requires_grad=checked)
                   for a, checked in zip(arrays, check_inputs)]
        out = build_fn(*tensors)
        if out.size != 1:
            raise ValueError("build_fn must return a scalar tensor; got shape "
                             f"{out.shape}")
        out.backward()

    def evaluate():
        with autocast(np.float64), no_grad():
            fresh = [Tensor(a) for a in arrays]
            return build_fn(*fresh).item()

    targets = [a for a, checked in zip(arrays, check_inputs) if checked]
    numeric = iter(numeric_gradient(evaluate, targets, eps=eps))
    report = GradcheckReport()
    for index, (tensor, checked) in enumerate(zip(tensors, check_inputs)):
        if not checked:
            continue
        expected = next(numeric)
        analytic = tensor.grad if tensor.grad is not None \
            else np.zeros_like(tensor.data)
        report._record(f"input[{index}]", analytic, expected, atol, rtol)
    if report.failures and raise_on_failure:
        raise GradcheckFailure("gradient mismatch against finite differences:\n"
                               + report.summary())
    return report


def check_module(module, loss_fn, eps=1e-5, atol=1e-4, rtol=1e-3,
                 max_entries=8, rng=None, params=None, eval_mode=True,
                 raise_on_failure=True):
    """Gradcheck every parameter of a :class:`Module` end-to-end.

    Runs one forward/backward pass to collect analytic gradients, then
    perturbs parameter entries in place and compares against central
    differences.  Large parameter tensors are subsampled (``max_entries``
    random entries each), keeping whole-model checks tractable.

    Parameters
    ----------
    module:
        The module under test.
    loss_fn:
        ``loss_fn(module) -> scalar Tensor``.  Must be deterministic:
        seed any randomness and avoid stateful sampling (dropout is
        handled by ``eval_mode``).
    eps, atol, rtol:
        Finite-difference step and acceptance criterion (looser defaults
        than :func:`gradcheck`: whole-model losses compose many ops).
    max_entries:
        Number of entries checked per parameter tensor (``None`` checks
        every entry).
    rng:
        Generator used to subsample entries (default: seeded fresh).
    params:
        Optional iterable of parameter-name prefixes to restrict the
        check (e.g. ``["cell.w_ih"]``); default checks every parameter.
    eval_mode:
        Put the module in eval mode during the check (disables dropout,
        which would otherwise break determinism); restored afterwards.

    Returns
    -------
    A :class:`GradcheckReport` with one entry per checked parameter.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    was_training = getattr(module, "training", True)
    # Finite differencing needs double precision; upcast the parameters
    # for the duration of the check and restore their dtypes afterwards
    # (float32 -> float64 -> float32 round-trips bit-identically).
    original_dtypes = [(p, p.data.dtype) for _, p in module.named_parameters()]
    module.to(np.float64)
    if eval_mode:
        module.eval()
    try:
        named = list(module.named_parameters())
        if params is not None:
            prefixes = tuple(params)
            named = [(n, p) for n, p in named if n.startswith(prefixes)]
            if not named:
                raise ValueError(f"no parameters match prefixes {prefixes!r}")

        module.zero_grad()
        with autocast(np.float64):
            loss = loss_fn(module)
            if loss.size != 1:
                raise ValueError("loss_fn must return a scalar tensor; "
                                 f"got shape {loss.shape}")
            loss.backward()
        analytic = {name: (p.grad.copy() if p.grad is not None
                           else np.zeros_like(p.data))
                    for name, p in named}
        module.zero_grad()

        def evaluate():
            with autocast(np.float64), no_grad():
                return loss_fn(module).item()

        report = GradcheckReport()
        for name, param in named:
            # .flat writes through even for non-contiguous parameters
            # (e.g. orthogonal-initialized weights), where reshape(-1)
            # would return a copy and the perturbation would be a no-op.
            flat = param.data.flat
            size = param.data.size
            if max_entries is None or size <= max_entries:
                indices = np.arange(size)
            else:
                indices = rng.choice(size, size=max_entries,
                                     replace=False)
            analytic_flat = np.ravel(analytic[name])
            picked_analytic = analytic_flat[indices]
            picked_numeric = np.empty(len(indices))
            for k, i in enumerate(indices):
                original = flat[i]
                flat[i] = original + eps
                upper = evaluate()
                flat[i] = original - eps
                lower = evaluate()
                flat[i] = original
                picked_numeric[k] = (upper - lower) / (2 * eps)
            report._record(name, picked_analytic, picked_numeric, atol, rtol)
        if report.failures and raise_on_failure:
            raise GradcheckFailure(
                f"module gradcheck failed for {type(module).__name__}:\n"
                + report.summary())
        return report
    finally:
        module.train(was_training)
        for param, dt in original_dtypes:
            if param.data.dtype != dt:
                param.data = param.data.astype(dt)
