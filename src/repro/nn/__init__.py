"""``repro.nn`` — a from-scratch deep-learning substrate on numpy.

The ELDA paper implements its models in Keras/TensorFlow; this package
provides the equivalent substrate: a reverse-mode autodiff tensor, a module
system, layers (dense, recurrent, attention, conv, normalization),
initializers, optimizers, and losses.

Correctness is first-class: :mod:`repro.nn.gradcheck` validates any op or
whole module against central finite differences, :mod:`repro.nn.debug`
provides opt-in NaN/Inf anomaly detection and graph audits, and every
primitive in :mod:`repro.nn.ops` is registered with sample inputs that an
exhaustive test sweep gradchecks mechanically (see docs/CORRECTNESS.md).
"""

from . import backend, capture, debug, dtype, gradcheck, init, losses, ops, \
    schedules
from .backend import available_backends, get_backend, set_backend
from .capture import (CaptureBatch, CaptureError, CaptureShapeError,
                      CaptureUnsupportedError, CapturedGraph)
from .capture import trace as capture_trace
from .debug import AnomalyError, audit_backward, detect_anomaly
from .dtype import autocast, get_default_dtype, set_default_dtype
from .gradcheck import GradcheckFailure, check_module
from .inference import InferenceMixin
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adam, Optimizer, RMSProp, clip_grad_norm
from .serialization import load_state, load_weights, save_state, save_weights
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "get_default_dtype", "set_default_dtype", "autocast",
    "Module", "ModuleList", "Parameter", "InferenceMixin",
    "Optimizer", "SGD", "Adam", "RMSProp", "clip_grad_norm",
    "save_weights", "load_weights", "save_state", "load_state",
    "detect_anomaly", "AnomalyError", "audit_backward",
    "check_module", "GradcheckFailure",
    "get_backend", "set_backend", "available_backends",
    "CaptureBatch", "CapturedGraph", "capture_trace",
    "CaptureError", "CaptureShapeError", "CaptureUnsupportedError",
    "ops", "init", "losses", "schedules", "gradcheck", "debug", "dtype",
    "backend", "capture",
]
