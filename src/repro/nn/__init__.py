"""``repro.nn`` — a from-scratch deep-learning substrate on numpy.

The ELDA paper implements its models in Keras/TensorFlow; this package
provides the equivalent substrate: a reverse-mode autodiff tensor, a module
system, layers (dense, recurrent, attention, conv, normalization),
initializers, optimizers, and losses.  Gradients are validated against
finite differences in the test suite.
"""

from . import init, losses, ops, schedules
from .module import Module, ModuleList, Parameter
from .optim import SGD, Adam, Optimizer, RMSProp, clip_grad_norm
from .serialization import load_weights, save_weights
from .tensor import Tensor, as_tensor, is_grad_enabled, no_grad

__all__ = [
    "Tensor", "as_tensor", "no_grad", "is_grad_enabled",
    "Module", "ModuleList", "Parameter",
    "Optimizer", "SGD", "Adam", "RMSProp", "clip_grad_norm",
    "save_weights", "load_weights",
    "ops", "init", "losses", "schedules",
]
