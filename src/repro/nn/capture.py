"""Inference graph capture and replay.

:func:`trace` runs one ``no_grad`` forward of a model over a sample
batch while a tracer hook (:mod:`repro.nn._capture_hooks`) observes
every top-level registered op.  The trace is compiled into a
:class:`CapturedGraph`: a static list of replay thunks over a fixed set
of preallocated buffers, keyed by the batch shape it was captured at.

Replay re-executes the same numeric recipe with no autodiff graph and
no per-op Tensor boxing:

* the four batch arrays are copied into pinned *input buffers* that the
  traced forward consumed directly (``Tensor(...)`` passes a
  policy-dtype array through without copying, so the tensors the model
  built during the trace wrap these very buffers);
* each traced op's output array is retained as that step's *output
  buffer*; replay thunks write into it with ``out=``-style numpy calls
  that mirror the op's eager forward ufunc-for-ufunc, so replayed
  outputs are **bit-identical** to an eager forward on the same batch;
* ops that returned views (``reshape``, ``transpose``, ``getitem``
  slices, ``unbind_time`` …) need no thunk at all — the view objects
  captured at trace time stay live over the mutated base buffers;
* composite or fused ops with no hand kernel (``var``, ``gru_scan``,
  ``lstm_scan`` …) fall back to re-running their eager forward on the
  retained argument tensors — whose ``.data`` *are* the live buffers —
  and copying the result into the step's output buffer.  Exact by
  construction, at the cost of that one op's eager allocations.

Capture is validated by tracing **twice** (the second time on a
jittered copy of the sample batch) and comparing the op sequence, the
argument classification, and every baked constant, then checking
replay-vs-eager bit-identity end to end on the jitter batch.  A model
whose forward bakes input-derived values outside the op layer (e.g.
mask-derived sequence lengths) fails validation with
:class:`CaptureUnsupportedError` rather than silently replaying stale
data; callers such as :class:`repro.serve.Predictor` treat that as
"serve this model eagerly".

Invalidation rules (checked on every replay):

* batch shape must match the captured shape — :class:`CaptureShapeError`;
* the precision policy (:func:`repro.nn.dtype.get_default_dtype`) must
  still match the capture-time dtype;
* parameter *storage* must be unchanged: in-place updates
  (``load_state_dict``, optimizer steps) flow into a captured graph for
  free, but anything that replaces ``param.data`` with a new array
  (e.g. ``Module.to``) invalidates the capture — :class:`CaptureError`.
"""

from __future__ import annotations

from .backend import xp as np

from . import _capture_hooks, ops
from .dtype import get_default_dtype
from .ops import _stable_sigmoid
from .tensor import Tensor, no_grad

__all__ = [
    "CaptureBatch",
    "CaptureError",
    "CaptureShapeError",
    "CaptureUnsupportedError",
    "CapturedGraph",
    "trace",
]


class CaptureError(RuntimeError):
    """A captured graph cannot be built or is no longer valid."""


class CaptureShapeError(CaptureError):
    """Replay batch shape differs from the captured batch shape."""


class CaptureUnsupportedError(CaptureError):
    """The model's forward is not capture-safe (trace validation failed)."""


_INPUT_FIELDS = ("values", "mask", "deltas", "ever_observed")


class CaptureBatch:
    """The four model-facing batch arrays, pinned in the policy dtype.

    Quacks like :class:`repro.data.EMRDataset` for ``forward_batch``
    purposes (``values`` / ``mask`` / ``deltas`` / ``ever_observed``).
    Arrays are always fresh copies so a graph never aliases caller data.
    """

    __slots__ = _INPUT_FIELDS

    def __init__(self, values, mask, deltas, ever_observed):
        self.values = values
        self.mask = mask
        self.deltas = deltas
        self.ever_observed = ever_observed

    @classmethod
    def from_batch(cls, batch, dtype):
        return cls(*(np.asarray(getattr(batch, f)).astype(dtype, copy=True)
                     for f in _INPUT_FIELDS))

    def __len__(self):
        return self.values.shape[0]


# ----------------------------------------------------------------------
# Argument classification
# ----------------------------------------------------------------------

def _classify(obj, serial_of, param_index):
    """Map one op argument to a (kind, payload) signature node.

    ``slot`` — a tensor over a recorded buffer (dynamic data);
    ``param`` — a tensor over a registered parameter array;
    ``const`` — any other array-valued argument, baked by reference;
    ``lit`` — plain python values (axes, shapes, slices, floats).
    Sequences recurse so list-taking ops (``concat``, ``stack``)
    classify per element.
    """
    if isinstance(obj, Tensor):
        arr = obj.data
        serial = serial_of.get(id(arr))
        if serial is not None:
            return ("slot", serial)
        idx = param_index.get(id(arr))
        if idx is not None:
            return ("param", idx)
        return ("const", arr)
    if isinstance(obj, np.ndarray):
        # Raw arrays can alias a recorded buffer too: the scan composites
        # take constant (non-differentiated) planes like grud_scan's
        # observation mask directly as arrays, and those must bind as
        # dynamic slots — not baked constants — for the replay fallback
        # to see refreshed batch data.
        serial = serial_of.get(id(obj))
        if serial is not None:
            return ("slot", serial)
        return ("const", obj)
    if isinstance(obj, (list, tuple)):
        return ("seq", tuple(_classify(o, serial_of, param_index)
                             for o in obj))
    return ("lit", obj)


def _sig_equal(a, b):
    """Structural equality of two signature nodes (arrays by value)."""
    kind_a, pay_a = a
    kind_b, pay_b = b
    if kind_a != kind_b:
        return False
    if kind_a == "seq":
        return len(pay_a) == len(pay_b) and all(
            _sig_equal(x, y) for x, y in zip(pay_a, pay_b))
    if kind_a == "const":
        return (pay_a.shape == pay_b.shape
                and pay_a.dtype == pay_b.dtype
                and bool(np.array_equal(pay_a, pay_b)))
    if kind_a == "lit":
        return _lit_equal(pay_a, pay_b)
    return pay_a == pay_b


def _lit_equal(a, b):
    """Equality for literals, descending into tuples that may hold arrays
    (advanced ``getitem`` indices mix slices and index arrays)."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (isinstance(a, np.ndarray) and isinstance(b, np.ndarray)
                and a.shape == b.shape and bool(np.array_equal(a, b)))
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            _lit_equal(x, y) for x, y in zip(a, b))
    return type(a) is type(b) and a == b


def _is_view_of(arr, known_ids):
    """Whether ``arr``'s base chain reaches a registered buffer."""
    base = arr.base
    while base is not None:
        if id(base) in known_ids:
            return True
        base = getattr(base, "base", None)
    return False


def _param(args, kwargs, pos, name, default):
    """Fetch an op parameter given positionally or by keyword."""
    if len(args) > pos:
        return args[pos]
    return kwargs.get(name, default)


def _data(x):
    """Raw array (or passthrough literal) for kernel closures."""
    return x.data if isinstance(x, Tensor) else x


def _operand(x, dtype):
    """An argument as the array operand the eager op would compute with.

    Mirrors ``as_tensor``'s coercion: literals and off-policy arrays
    become policy-dtype arrays *before* the ufunc runs.  Passing e.g. a
    raw ``np.float64`` scalar straight to a ufunc instead would promote
    the whole loop to float64 under NEP 50 and break bit-identity on
    the float32 plane.
    """
    if isinstance(x, Tensor):
        return x.data
    if isinstance(x, np.ndarray):
        return x.astype(dtype) if x.dtype != dtype else x
    return np.asarray(x, dtype=dtype)


# ----------------------------------------------------------------------
# Replay kernels
#
# Each builder receives the op's live argument objects, its kwargs, and
# the output buffer, and returns a zero-argument thunk that recomputes
# the output *bit-identically* to the op's eager forward — same ufuncs,
# same order, writing into preallocated buffers.  Returning ``None``
# defers to the generic eager-fallback thunk.
# ----------------------------------------------------------------------

def _binary_kernel(ufunc):
    def build(args, kwargs, out):
        a, b = (_operand(args[0], out.dtype), _operand(args[1], out.dtype))

        def thunk():
            ufunc(a, b, out=out)
        return thunk
    return build


def _unary_kernel(ufunc):
    def build(args, kwargs, out):
        a = _operand(args[0], out.dtype)

        def thunk():
            ufunc(a, out=out)
        return thunk
    return build


def _build_power(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    exponent = float(_param(args, kwargs, 1, "exponent", None))

    def thunk():
        np.power(a, exponent, out=out)
    return thunk


def _build_clip(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    low = _param(args, kwargs, 1, "low", None)
    high = _param(args, kwargs, 2, "high", None)

    def thunk():
        np.clip(a, low, high, out=out)
    return thunk


def _build_relu(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    mask = np.empty(a.shape, dtype=bool)

    def thunk():
        np.greater(a, 0, out=mask)
        np.multiply(a, mask, out=out)
    return thunk


def _build_leaky_relu(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    negative_slope = _param(args, kwargs, 1, "negative_slope", 0.01)
    dt = a.dtype
    one, slope_val = dt.type(1.0), dt.type(negative_slope)
    mask = np.empty(a.shape, dtype=bool)
    slope = np.empty(a.shape, dtype=dt)

    def thunk():
        np.greater(a, 0, out=mask)
        slope.fill(slope_val)
        np.copyto(slope, one, where=mask)
        np.multiply(a, slope, out=out)
    return thunk


def _build_sigmoid(args, kwargs, out):
    a = _operand(args[0], out.dtype)

    def thunk():
        _stable_sigmoid(a, out=out)
    return thunk


def _build_abs_lt(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    threshold = _param(args, kwargs, 1, "threshold", None)
    bound = a.dtype.type(threshold)
    scratch = np.empty(a.shape, dtype=a.dtype)
    mask = np.empty(a.shape, dtype=bool)

    def thunk():
        np.abs(a, out=scratch)
        np.less(scratch, bound, out=mask)
        np.copyto(out, mask, casting="unsafe")
    return thunk


def _build_where(args, kwargs, out):
    cond = _data(_param(args, kwargs, 0, "condition", None))
    a = _operand(_param(args, kwargs, 1, "a", None), out.dtype)
    b = _operand(_param(args, kwargs, 2, "b", None), out.dtype)
    cond = np.asarray(cond)
    if cond.dtype == bool:
        mask, to_bool = cond, None
    else:
        mask = np.empty(cond.shape, dtype=bool)
        to_bool = cond

    def thunk():
        if to_bool is not None:
            np.not_equal(to_bool, 0, out=mask)
        np.copyto(out, b)
        np.copyto(out, a, where=mask)
    return thunk


def _extremum_kernel(primary):
    """maximum / minimum: mirror the tie-aware ``np.where`` select."""
    compare = np.greater if primary == "max" else np.less

    def build(args, kwargs, out):
        a, b = (_operand(args[0], out.dtype), _operand(args[1], out.dtype))
        wins = np.empty(out.shape, dtype=bool)
        ties = np.empty(out.shape, dtype=bool)

        def thunk():
            compare(a, b, out=wins)
            np.equal(a, b, out=ties)
            np.logical_or(wins, ties, out=wins)
            np.copyto(out, b)
            np.copyto(out, a, where=wins)
        return thunk
    return build


def _reduction_kernel(reducer):
    def build(args, kwargs, out):
        a = _operand(args[0], out.dtype)
        axis = _param(args, kwargs, 1, "axis", None)
        keepdims = _param(args, kwargs, 2, "keepdims", False)

        def thunk():
            reducer(a, axis=axis, out=out, keepdims=keepdims)
        return thunk
    return build


def _build_matmul(args, kwargs, out):
    if out.ndim == 0:
        return None  # np.matmul rejects 0-d out; vec·vec falls back
    a, b = _operand(args[0], out.dtype), _operand(args[1], out.dtype)

    def thunk():
        np.matmul(a, b, out=out)
    return thunk


def _build_outer_last(args, kwargs, out):
    a, b = _operand(args[0], out.dtype), _operand(args[1], out.dtype)

    def thunk():
        np.multiply(a[..., :, None], b[..., None, :], out=out)
    return thunk


def _build_softmax(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    axis = _param(args, kwargs, 1, "axis", -1)
    peak = np.empty_like(a.max(axis=axis, keepdims=True))
    total = np.empty_like(peak)

    def thunk():
        np.amax(a, axis=axis, keepdims=True, out=peak)
        np.subtract(a, peak, out=out)
        np.exp(out, out=out)
        np.sum(out, axis=axis, keepdims=True, out=total)
        np.divide(out, total, out=out)
    return thunk


def _build_log_softmax(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    axis = _param(args, kwargs, 1, "axis", -1)
    peak = np.empty_like(a.max(axis=axis, keepdims=True))
    total = np.empty_like(peak)
    exped = np.empty_like(out)

    def thunk():
        np.amax(a, axis=axis, keepdims=True, out=peak)
        np.subtract(a, peak, out=out)
        np.exp(out, out=exped)
        np.sum(exped, axis=axis, keepdims=True, out=total)
        np.log(total, out=total)
        np.subtract(out, total, out=out)
    return thunk


def _stacking_kernel(joiner, default_axis):
    def build(args, kwargs, out):
        arrays = [_operand(t, out.dtype) for t in args[0]]
        axis = _param(args, kwargs, 1, "axis", default_axis)

        def thunk():
            joiner(arrays, axis=axis, out=out)
        return thunk
    return build


def _build_pad_last(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    before = int(_param(args, kwargs, 1, "before", None))
    # Pad lanes hold the (constant) pad value from the trace and are
    # never rewritten; replay refreshes only the interior.
    interior = out[..., before:before + a.shape[-1]]

    def thunk():
        np.copyto(interior, a)
    return thunk


def _build_embedding_lookup(args, kwargs, out):
    table = _operand(args[0], out.dtype)
    indices = np.asarray(_param(args, kwargs, 1, "indices", None),
                         dtype=np.int64)

    def thunk():
        np.take(table, indices, axis=0, out=out)
    return thunk


def _build_reshape(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    shape = _param(args, kwargs, 1, "shape", None)

    def thunk():
        np.copyto(out, a.reshape(shape))
    return thunk


def _build_getitem(args, kwargs, out):
    a = _operand(args[0], out.dtype)
    index = _param(args, kwargs, 1, "index", None)

    def thunk():
        np.copyto(out, a[index])
    return thunk


_KERNEL_BUILDERS = {
    "add": _binary_kernel(np.add),
    "sub": _binary_kernel(np.subtract),
    "mul": _binary_kernel(np.multiply),
    "div": _binary_kernel(np.divide),
    "power": _build_power,
    "neg": _unary_kernel(np.negative),
    "exp": _unary_kernel(np.exp),
    "log": _unary_kernel(np.log),
    "sqrt": _unary_kernel(np.sqrt),
    "tanh": _unary_kernel(np.tanh),
    "abs": _unary_kernel(np.abs),
    "clip": _build_clip,
    "relu": _build_relu,
    "leaky_relu": _build_leaky_relu,
    "sigmoid": _build_sigmoid,
    "abs_lt": _build_abs_lt,
    "where": _build_where,
    "maximum": _extremum_kernel("max"),
    "minimum": _extremum_kernel("min"),
    "sum": _reduction_kernel(np.sum),
    "mean": _reduction_kernel(np.mean),
    "max": _reduction_kernel(np.amax),
    "matmul": _build_matmul,
    "outer_last": _build_outer_last,
    "softmax": _build_softmax,
    "log_softmax": _build_log_softmax,
    "concat": _stacking_kernel(np.concatenate, -1),
    "stack": _stacking_kernel(np.stack, 0),
    "pad_last": _build_pad_last,
    "embedding_lookup": _build_embedding_lookup,
    "reshape": _build_reshape,
    "getitem": _build_getitem,
}


def _make_fallback(name, args, kwargs, writes):
    """Generic thunk: re-run the op's eager forward on the retained
    argument tensors (whose ``.data`` are live buffers) and copy each
    result into its pinned output buffer.  Bit-exact by construction."""
    fn = getattr(ops, name)

    def thunk():
        result = fn(*args, **kwargs)
        outs = result if isinstance(result, (list, tuple)) else (result,)
        for position, buffer in writes:
            np.copyto(buffer, outs[position].data)
    return thunk


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------

class _Tracer:
    """Records top-level op calls into buffers, signatures, and thunks."""

    def __init__(self, batch, param_index):
        self.batch = batch
        self.param_index = param_index
        self.serial_of = {}
        for field in _INPUT_FIELDS:
            self.serial_of[id(getattr(batch, field))] = f"in:{field}"
        self.known = set(self.serial_of)
        self.known.update(param_index)
        self.thunks = []
        self.specs = []
        self._retained = []
        self._next_serial = 0

    def record(self, name, args, kwargs, result):
        outs = list(result) if isinstance(result, (list, tuple)) else [result]
        signature = (
            name,
            tuple(_classify(a, self.serial_of, self.param_index)
                  for a in args),
            tuple(sorted(
                (k, _classify(v, self.serial_of, self.param_index))
                for k, v in kwargs.items())),
            tuple(t.data.shape for t in outs),
        )
        self.specs.append(signature)
        self._retained.append(outs)

        writes = []
        for position, tensor in enumerate(outs):
            arr = tensor.data
            if id(arr) in self.known:
                continue  # op returned an existing buffer unchanged
            self.serial_of[id(arr)] = self._next_serial
            self._next_serial += 1
            self.known.add(id(arr))
            if not _is_view_of(arr, self.known):
                writes.append((position, arr))
        if not writes:
            return  # pure view/aliasing step: base-buffer writes suffice

        builder = _KERNEL_BUILDERS.get(name)
        thunk = None
        if builder is not None and len(writes) == 1 and writes[0][0] == 0:
            thunk = builder(args, kwargs, writes[0][1])
        if thunk is None:
            thunk = _make_fallback(name, args, kwargs, writes)
        self.thunks.append(thunk)


def _trace_once(model, arrays, dtype):
    """One traced ``predict_logits`` forward → a CapturedGraph."""
    params = [(tensor, tensor.data)
              for _, tensor in model.named_parameters()]
    param_index = {id(arr): idx for idx, (_, arr) in enumerate(params)}
    batch = CaptureBatch(*arrays)
    tracer = _Tracer(batch, param_index)
    _capture_hooks.push(tracer)
    try:
        output = model.predict_logits(batch)
    finally:
        _capture_hooks.pop(tracer)
    if id(output) not in tracer.known \
            and not _is_view_of(output, tracer.known):
        raise CaptureUnsupportedError(
            f"{type(model).__name__} produced an output array that no "
            "recorded op wrote; its forward computes outside the op layer")
    return CapturedGraph(
        model_name=type(model).__name__,
        batch=batch,
        thunks=tracer.thunks,
        specs=tracer.specs,
        params=params,
        output=output,
        dtype=dtype,
        retained=tracer._retained,
    )


def _jitter_arrays(arrays, dtype):
    """A perturbed copy of the sample batch for trace validation.

    Every input plane changes — continuous values and deltas shift,
    one mask bit flips (rows also rotate), one ever-observed bit flips —
    so anything a forward bakes from batch *data* diverges between the
    two traces and trips the signature or bit-identity comparison.
    """
    one = dtype(1.0)
    values, mask, deltas, ever = (a.copy() for a in arrays)
    values *= dtype(1.0625)
    values += dtype(0.03125)
    mask = np.roll(mask, 1, axis=0)
    mask[(0,) * mask.ndim] = one - mask[(0,) * mask.ndim]
    deltas += dtype(0.5)
    ever[(0,) * ever.ndim] = one - ever[(0,) * ever.ndim]
    return values, mask, deltas, ever


def trace(model, batch, validate=True):
    """Capture one inference forward of ``model`` over ``batch``.

    Parameters
    ----------
    model:
        A module with ``predict_logits`` (:class:`~repro.nn.InferenceMixin`).
    batch:
        Any object with ``values`` / ``mask`` / ``deltas`` /
        ``ever_observed`` arrays; the capture is pinned to these shapes.
    validate:
        Trace a second, jittered batch and require an identical op
        signature plus bit-identical replay-vs-eager output; raises
        :class:`CaptureUnsupportedError` on divergence.  Only disable
        for models already known capture-safe.

    Returns a :class:`CapturedGraph` whose :meth:`~CapturedGraph.replay`
    is bit-identical to ``model.predict_logits`` at the captured shape.
    """
    if _capture_hooks.active():
        raise CaptureError("cannot start a capture inside another capture")
    dtype = get_default_dtype()
    arrays = tuple(np.asarray(getattr(batch, f)).astype(dtype, copy=True)
                   for f in _INPUT_FIELDS)
    graph = _trace_once(model, arrays, dtype)
    if validate:
        jitter = _jitter_arrays(arrays, dtype)
        shadow = _trace_once(model, jitter, dtype)
        _compare_traces(graph, shadow)
        eager = model.predict_logits(CaptureBatch(*jitter))
        replayed = graph.replay(CaptureBatch(*jitter))
        if not np.array_equal(eager, replayed):
            raise CaptureUnsupportedError(
                f"captured replay of {graph.model_name} diverges from "
                "the eager forward on a perturbed batch; the model bakes "
                "batch-dependent state outside the op layer")
    return graph


def _compare_traces(graph, shadow):
    """Require two traces to agree step-for-step."""
    a, b = graph.specs, shadow.specs
    if len(a) != len(b):
        raise CaptureUnsupportedError(
            f"{graph.model_name} is not capture-safe: traced op counts "
            f"differ between batches ({len(a)} vs {len(b)}); the forward "
            "branches on batch data")
    for step, (sa, sb) in enumerate(zip(a, b)):
        if sa[0] != sb[0]:
            raise CaptureUnsupportedError(
                f"{graph.model_name} is not capture-safe: step {step} "
                f"records {sa[0]!r} on one batch and {sb[0]!r} on another")
        same = (len(sa[1]) == len(sb[1]) and len(sa[2]) == len(sb[2])
                and sa[3] == sb[3]
                and all(_sig_equal(x, y) for x, y in zip(sa[1], sb[1]))
                and all(ka == kb and _sig_equal(va, vb)
                        for (ka, va), (kb, vb) in zip(sa[2], sb[2])))
        if not same:
            raise CaptureUnsupportedError(
                f"{graph.model_name} is not capture-safe: step {step} "
                f"({sa[0]}) binds batch-dependent values as constants "
                "(its arguments differ between two traced batches)")


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------

class CapturedGraph:
    """A shape-pinned, replayable recording of one inference forward."""

    def __init__(self, model_name, batch, thunks, specs, params, output,
                 dtype, retained):
        self.model_name = model_name
        self._batch = batch
        self._thunks = thunks
        self.specs = specs
        self._params = params
        self._output = output
        self.dtype = dtype
        # Keeps every traced tensor alive so buffer ids stay unique and
        # fallback thunks' argument tensors remain valid.
        self._retained = retained

    @property
    def batch_shape(self):
        """Captured input shapes, one per batch field."""
        return {f: getattr(self._batch, f).shape for f in _INPUT_FIELDS}

    @property
    def num_steps(self):
        """Recorded top-level ops (including view-only steps)."""
        return len(self.specs)

    @property
    def num_thunks(self):
        """Replay thunks (view-only steps need none)."""
        return len(self._thunks)

    def _check_ready(self, batch):
        if _capture_hooks.active():
            raise CaptureError("cannot replay inside an active capture")
        policy = get_default_dtype()
        if policy != self.dtype:
            raise CaptureError(
                f"graph for {self.model_name} was captured under "
                f"{np.dtype(self.dtype).name} but the active policy is "
                f"{np.dtype(policy).name}; re-trace under the new policy")
        for name_idx, (tensor, arr) in enumerate(self._params):
            if tensor.data is not arr:
                raise CaptureError(
                    f"parameter storage of {self.model_name} changed "
                    f"(param #{name_idx}) since capture — e.g. via "
                    "Module.to(); in-place updates are fine, storage "
                    "replacement requires a re-trace")
        for field in _INPUT_FIELDS:
            buffer = getattr(self._batch, field)
            incoming = np.asarray(getattr(batch, field))
            if incoming.shape != buffer.shape:
                raise CaptureShapeError(
                    f"graph for {self.model_name} was captured at "
                    f"{field}.shape == {buffer.shape} but the replay "
                    f"batch has {field}.shape == {incoming.shape}; "
                    "capture is shape-pinned — trace once per shape "
                    "(or pad, as repro.serve.Predictor does)")

    def replay(self, batch):
        """Re-execute the captured forward on a new same-shape batch.

        Returns a fresh array, bit-identical to
        ``model.predict_logits(batch)`` under the capture-time policy.
        """
        self._check_ready(batch)
        with no_grad():
            for field in _INPUT_FIELDS:
                np.copyto(getattr(self._batch, field),
                          np.asarray(getattr(batch, field)),
                          casting="unsafe")
            for thunk in self._thunks:
                thunk()
        return self._output.astype(self.dtype, copy=True)
