"""Gradient-descent optimizers.

Each optimizer holds a list of :class:`~repro.nn.module.Parameter` objects
and updates them in place from their ``.grad`` fields.  Updates are plain
numpy math (no graph is recorded).
"""

from __future__ import annotations

from .backend import xp as np

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "clip_grad_norm"]


def clip_grad_norm(parameters, max_norm):
    """Scale gradients in place so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    total = 0.0
    grads = [p.grad for p in parameters if p.grad is not None]
    for grad in grads:
        total += float((grad ** 2).sum())
    norm = np.sqrt(total)
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for grad in grads:
            grad *= scale
    return norm


class Optimizer:
    """Base optimizer; subclasses implement :meth:`_update`.

    Optimizers are checkpointable: :meth:`state_dict` returns a nested
    tree of scalars and per-parameter slot arrays (aligned with the
    parameter list order) and :meth:`load_state_dict` restores it, so a
    resumed run continues with identical moments (see
    ``repro.train.engine``).
    """

    def __init__(self, parameters, lr):
        self.parameters = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def zero_grad(self):
        """Clear gradients on every managed parameter."""
        for param in self.parameters:
            param.zero_grad()

    def step(self):
        """Apply one update using the accumulated gradients."""
        for index, param in enumerate(self.parameters):
            if param.grad is None:
                continue
            self._update(index, param)

    def _update(self, index, param):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def state_dict(self):
        """Return the optimizer's mutable state as a nested tree.

        Contains ``lr`` plus whatever slot state the subclass keeps
        (moments, velocities); suitable for
        :func:`repro.nn.serialization.save_state`.
        """
        state = {"lr": float(self.lr)}
        state.update(self._slot_state())
        return state

    def load_state_dict(self, state):
        """Restore state produced by :meth:`state_dict`.

        Slot arrays are validated against the current parameter shapes.
        """
        self.lr = float(state["lr"])
        self._load_slot_state(state)

    def _slot_state(self):
        return {}

    def _load_slot_state(self, state):
        pass

    def _checked_slots(self, arrays, name):
        """Coerce a list of slot arrays, validating length and shapes."""
        if len(arrays) != len(self.parameters):
            raise ValueError(
                f"optimizer state {name!r} has {len(arrays)} slots for "
                f"{len(self.parameters)} parameters")
        out = []
        for array, param in zip(arrays, self.parameters):
            # Moment buffers follow their parameter's dtype (the policy
            # dtype the model was built under), not a hard-coded float64.
            array = np.asarray(array, dtype=param.data.dtype)
            if array.shape != param.data.shape:
                raise ValueError(f"slot {name!r} shape {array.shape} does not "
                                 f"match parameter shape {param.data.shape}")
            out.append(array.copy())
        return out


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr=0.01, momentum=0.0, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [None] * len(self.parameters)

    def _update(self, index, param):
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        if self.momentum:
            if self._velocity[index] is None:
                self._velocity[index] = np.zeros_like(param.data)
            vel = self._velocity[index]
            vel *= self.momentum
            vel -= self.lr * grad
            param.data += vel
        else:
            param.data -= self.lr * grad

    def _slot_state(self):
        # Lazily-created velocities serialize as zeros (the same thing).
        return {"velocity": [np.zeros_like(p.data) if v is None else v
                             for v, p in zip(self._velocity,
                                             self.parameters)]}

    def _load_slot_state(self, state):
        self._velocity = self._checked_slots(state["velocity"], "velocity")


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(self, parameters, lr=0.001, beta1=0.9, beta2=0.999,
                 eps=1e-8, weight_decay=0.0):
        super().__init__(parameters, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self):
        self._step_count += 1
        super().step()

    def _update(self, index, param):
        grad = param.grad
        if self.weight_decay:
            grad = grad + self.weight_decay * param.data
        m, v = self._m[index], self._v[index]
        m *= self.beta1
        m += (1.0 - self.beta1) * grad
        v *= self.beta2
        v += (1.0 - self.beta2) * grad ** 2
        m_hat = m / (1.0 - self.beta1 ** self._step_count)
        v_hat = v / (1.0 - self.beta2 ** self._step_count)
        param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _slot_state(self):
        return {"step_count": int(self._step_count),
                "m": list(self._m), "v": list(self._v)}

    def _load_slot_state(self, state):
        self._step_count = int(state["step_count"])
        self._m = self._checked_slots(state["m"], "m")
        self._v = self._checked_slots(state["v"], "v")


class RMSProp(Optimizer):
    """RMSProp with exponentially decayed squared-gradient average."""

    def __init__(self, parameters, lr=0.001, rho=0.9, eps=1e-8):
        super().__init__(parameters, lr)
        self.rho = rho
        self.eps = eps
        self._sq = [np.zeros_like(p.data) for p in self.parameters]

    def _update(self, index, param):
        sq = self._sq[index]
        sq *= self.rho
        sq += (1.0 - self.rho) * param.grad ** 2
        param.data -= self.lr * param.grad / (np.sqrt(sq) + self.eps)

    def _slot_state(self):
        return {"sq": list(self._sq)}

    def _load_slot_state(self, state):
        self._sq = self._checked_slots(state["sq"], "sq")
