"""Repo-wide floating-point precision policy.

Every construction site in the stack — :class:`~repro.nn.Tensor`
coercion, :mod:`repro.nn.init` draws, :class:`~repro.nn.Parameter`
wrapping, optimizer moment buffers, loss-side label coercion, and
checkpoint loading — asks this module for the current default dtype
instead of hard-coding one.  The engine therefore runs end-to-end in a
single dtype chosen at one place.

The default is **float32**: clinical sequence models are bandwidth
bound, and halving every array doubles effective memory bandwidth
while letting BLAS pick ``sgemm`` over ``dgemm`` (see
``docs/PERFORMANCE.md``).  Correctness tooling that genuinely needs
float64 — :func:`repro.nn.gradcheck.gradcheck` and the finite-
difference sweeps — opts back in *locally* with :class:`autocast`
rather than dragging the whole engine up to double precision.

Three knobs, narrowest first:

* :class:`autocast` — context manager scoping a dtype to a block.
* :func:`set_default_dtype` — process-wide mutation.
* ``REPRO_DTYPE`` environment variable — start-up override
  (``float32``/``float64``), read once at import.

Only real floating dtypes are accepted; integer/bool arrays (masks,
targets, index arrays) are never coerced by the policy — they keep
their own dtypes throughout.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "get_default_dtype",
    "set_default_dtype",
    "resolve_dtype",
    "autocast",
]

#: dtypes the policy accepts; everything else raises at the boundary.
SUPPORTED_DTYPES = (np.float32, np.float64)


def resolve_dtype(dtype):
    """Normalize a user-supplied dtype spec to a supported numpy dtype.

    Accepts ``np.float32``/``np.float64``, their dtype instances, the
    strings ``"float32"``/``"float64"``, and python ``float`` (which
    maps to the *current policy default*, not float64 — ``float`` means
    "a float of whatever precision we run at").
    """
    if dtype is None or dtype is float:
        return get_default_dtype()
    resolved = np.dtype(dtype)
    if resolved.type not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported precision dtype {dtype!r}; the policy supports "
            + " / ".join(np.dtype(d).name for d in SUPPORTED_DTYPES))
    return resolved.type


def _initial_default():
    name = os.environ.get("REPRO_DTYPE", "").strip().lower()
    if not name:
        return np.float32
    try:
        resolved = np.dtype(name)
    except TypeError:
        raise ValueError(
            f"REPRO_DTYPE={name!r} is not a dtype name; "
            "use 'float32' or 'float64'") from None
    if resolved.type not in SUPPORTED_DTYPES:
        raise ValueError(
            f"REPRO_DTYPE={name!r} is unsupported; use 'float32' or 'float64'")
    return resolved.type


#: Start-up default (float32 unless overridden via ``REPRO_DTYPE``).
DEFAULT_DTYPE = _initial_default()

_default_dtype = DEFAULT_DTYPE


def get_default_dtype():
    """The dtype every float array in the engine is coerced to."""
    return _default_dtype


def set_default_dtype(dtype):
    """Set the process-wide default dtype; returns the previous one.

    Existing tensors/parameters are left untouched — the policy governs
    *construction*, not storage.  Use :meth:`repro.nn.Module.to` to
    migrate an already-built model.
    """
    global _default_dtype
    previous = _default_dtype
    if dtype is float or dtype is None:
        raise ValueError("set_default_dtype needs an explicit dtype "
                         "(np.float32 or np.float64)")
    resolved = np.dtype(dtype)
    if resolved.type not in SUPPORTED_DTYPES:
        raise ValueError(
            f"unsupported precision dtype {dtype!r}; the policy supports "
            + " / ".join(np.dtype(d).name for d in SUPPORTED_DTYPES))
    _default_dtype = resolved.type
    return previous


class autocast:
    """Scope the default dtype to a ``with`` block (re-entrant).

    >>> with autocast(np.float64):
    ...     t = Tensor([1.0, 2.0])      # float64 despite a float32 policy
    >>> Tensor([1.0, 2.0]).dtype        # back to the ambient policy
    dtype('float32')

    This is how gradcheck and the anomaly harness run in double
    precision locally while the engine default stays float32.
    """

    def __init__(self, dtype):
        if dtype is float or dtype is None:
            raise ValueError("autocast needs an explicit dtype "
                             "(np.float32 or np.float64)")
        resolved = np.dtype(dtype)
        if resolved.type not in SUPPORTED_DTYPES:
            raise ValueError(
                f"unsupported precision dtype {dtype!r}; the policy supports "
                + " / ".join(np.dtype(d).name for d in SUPPORTED_DTYPES))
        self.dtype = resolved.type
        self._previous = None

    def __enter__(self):
        global _default_dtype
        self._previous = _default_dtype
        _default_dtype = self.dtype
        return self

    def __exit__(self, exc_type, exc, tb):
        global _default_dtype
        _default_dtype = self._previous
        return False
