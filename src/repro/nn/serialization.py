"""Save and load module weights as ``.npz`` archives."""

from __future__ import annotations

import numpy as np

__all__ = ["save_weights", "load_weights"]

# ``/`` is illegal inside npz member names on some platforms, and ``.`` is the
# natural separator in parameter names; keep names verbatim — numpy handles
# arbitrary keys fine since archives are plain zip files.


def save_weights(module, path):
    """Write ``module.state_dict()`` to ``path`` as a compressed npz archive."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_weights(module, path):
    """Load weights saved by :func:`save_weights` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)
