"""Save and load module weights and nested state trees as ``.npz`` archives.

Two layers:

* :func:`save_weights` / :func:`load_weights` — flat parameter archives
  (``module.state_dict()`` verbatim), the historical format.
* :func:`save_state` / :func:`load_state` — nested *state trees* (dicts
  and lists of arrays and scalars), used for optimizer moments and other
  checkpoint state.  Trees are flattened to dotted npz keys
  (``m.0``, ``m.1`` ...) and reconstructed on load, with integer-keyed
  levels turned back into lists.

Arrays round-trip with their exact dtype (npz archives store it), so a
checkpoint written under one precision policy reloads byte-identical;
any cast happens at the *consumer* — ``Module.load_state_dict`` casts
into each parameter's dtype (warning on precision loss), and optimizer
slot loading casts to the matching parameter's dtype.
"""

from __future__ import annotations

import numpy as np

__all__ = ["save_weights", "load_weights", "flatten_state",
           "unflatten_state", "save_state", "load_state"]

# ``/`` is illegal inside npz member names on some platforms, and ``.`` is the
# natural separator in parameter names; keep names verbatim — numpy handles
# arbitrary keys fine since archives are plain zip files.


def save_weights(module, path):
    """Write ``module.state_dict()`` to ``path`` as a compressed npz archive."""
    state = module.state_dict()
    np.savez_compressed(path, **state)


def load_weights(module, path):
    """Load weights saved by :func:`save_weights` into ``module``."""
    with np.load(path) as archive:
        state = {name: archive[name] for name in archive.files}
    module.load_state_dict(state)


# ----------------------------------------------------------------------
# Nested state trees (optimizer moments, checkpoint bookkeeping)
# ----------------------------------------------------------------------

def flatten_state(tree, prefix=""):
    """Flatten a nested dict/list tree of arrays and scalars.

    Returns ``{dotted_key: ndarray}``.  List elements get their index as
    the key component, so ``{"m": [a, b]}`` flattens to ``m.0`` / ``m.1``.
    Dict keys must not contain ``.`` (it is the path separator) and must
    not be all-digit strings (those are reserved for list indices).
    """
    flat = {}
    if isinstance(tree, dict):
        items = []
        for key, value in tree.items():
            key = str(key)
            if "." in key or key.isdigit():
                raise ValueError(
                    f"state key {key!r} would be ambiguous when flattened "
                    "(no dots, no all-digit keys)")
            items.append((key, value))
    elif isinstance(tree, (list, tuple)):
        items = [(str(i), value) for i, value in enumerate(tree)]
    else:
        flat[prefix[:-1]] = np.asarray(tree)
        return flat
    for key, value in items:
        flat.update(flatten_state(value, prefix=f"{prefix}{key}."))
    return flat


def unflatten_state(flat):
    """Invert :func:`flatten_state`; 0-d arrays become python scalars."""
    tree = {}
    for dotted, value in flat.items():
        parts = dotted.split(".")
        node = tree
        for part in parts[:-1]:
            node = node.setdefault(part, {})
        node[parts[-1]] = value.item() if np.ndim(value) == 0 else value
    return _listify(tree)


def _listify(node):
    if isinstance(node, dict):
        if node and all(key.isdigit() for key in node):
            return [_listify(node[key]) for key in sorted(node, key=int)]
        return {key: _listify(value) for key, value in node.items()}
    return node


def save_state(path, tree):
    """Write a nested state tree to a compressed npz archive."""
    np.savez_compressed(path, **flatten_state(tree))


def load_state(path):
    """Read a state tree written by :func:`save_state`."""
    with np.load(path) as archive:
        flat = {name: archive[name] for name in archive.files}
    return unflatten_state(flat)
