"""1-D convolution over the time axis (used by StageNet's pattern extractor)."""

from __future__ import annotations

from ..backend import xp as np

from .. import init, ops
from ..module import Module, Parameter

__all__ = ["Conv1D"]


class Conv1D(Module):
    """Temporal convolution on (batch, time, channels) with 'same' padding.

    Implemented as a sum of shifted matmuls, which keeps the backward pass
    inside the existing autodiff primitives.
    """

    def __init__(self, in_channels, out_channels, kernel_size, rng,
                 activation=None):
        super().__init__()
        if kernel_size % 2 == 0:
            raise ValueError("Conv1D requires an odd kernel size for 'same' padding")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.kernel = Parameter(
            init.glorot_uniform((kernel_size, in_channels, out_channels), rng))
        self.bias = Parameter(np.zeros(out_channels))
        from .dense import resolve_activation
        self.activation = resolve_activation(activation)

    def forward(self, x):
        batch, steps, _ = x.shape
        half = self.kernel_size // 2
        out = None
        for offset in range(-half, half + 1):
            tap = self.kernel[offset + half]          # (C_in, C_out)
            lo = max(0, -offset)
            hi = min(steps, steps - offset)
            if lo >= hi:
                continue
            segment = x[:, lo + offset:hi + offset, :]
            term = ops.matmul(segment, tap)
            term = _pad_time(term, lo, steps - hi)
            out = term if out is None else out + term
        out = out + self.bias
        return self.activation(out)


def _pad_time(x, before, after):
    """Zero-pad the time axis of a (batch, time, channels) tensor."""
    if before == 0 and after == 0:
        return x
    padded = ops.swapaxes(x, 1, 2)
    padded = ops.pad_last(padded, before, after)
    return ops.swapaxes(padded, 1, 2)
