"""Embedding layers for categorical indices and positional encodings."""

from __future__ import annotations

from ..backend import xp as np

from .. import init, ops
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["Embedding", "positional_encoding"]


class Embedding(Module):
    """Lookup table mapping integer indices to dense vectors."""

    def __init__(self, num_embeddings, embedding_size, rng):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_size = embedding_size
        self.table = Parameter(init.normal((num_embeddings, embedding_size), rng))

    def forward(self, indices):
        return ops.embedding_lookup(self.table, indices)


def positional_encoding(steps, model_size):
    """Sinusoidal positional encoding of shape (steps, model_size).

    Used by SAnD to inject temporal order into its self-attention stack.
    """
    positions = np.arange(steps)[:, None]
    dims = np.arange(model_size)[None, :]
    angle_rates = 1.0 / np.power(10000.0, (2 * (dims // 2)) / model_size)
    angles = positions * angle_rates
    encoding = np.zeros((steps, model_size))
    encoding[:, 0::2] = np.sin(angles[:, 0::2])
    encoding[:, 1::2] = np.cos(angles[:, 1::2])
    return Tensor(encoding)
