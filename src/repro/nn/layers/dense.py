"""Fully connected layers."""

from __future__ import annotations

from ..backend import xp as np

from .. import init, ops
from ..module import Module, Parameter

__all__ = ["Dense", "MLP"]

_ACTIVATIONS = {
    None: lambda x: x,
    "linear": lambda x: x,
    "relu": ops.relu,
    "tanh": ops.tanh,
    "sigmoid": ops.sigmoid,
}


def resolve_activation(activation):
    """Return a callable activation from a name, callable, or None."""
    if callable(activation):
        return activation
    if activation in _ACTIVATIONS:
        return _ACTIVATIONS[activation]
    raise ValueError(f"unknown activation {activation!r}")


class Dense(Module):
    """Affine layer ``y = activation(x W + b)`` applied over the last axis."""

    def __init__(self, in_features, out_features, rng, activation=None,
                 use_bias=True, weight_init=init.glorot_uniform):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(weight_init((in_features, out_features), rng))
        self.use_bias = use_bias
        if use_bias:
            self.bias = Parameter(np.zeros(out_features))
        self.activation = resolve_activation(activation)

    def forward(self, x):
        out = ops.matmul(x, self.weight)
        if self.use_bias:
            out = out + self.bias
        return self.activation(out)


class MLP(Module):
    """Stack of Dense layers with a shared hidden activation."""

    def __init__(self, sizes, rng, hidden_activation="relu",
                 output_activation=None):
        super().__init__()
        if len(sizes) < 2:
            raise ValueError("MLP needs at least input and output sizes")
        from ..module import ModuleList
        layers = []
        for index, (fan_in, fan_out) in enumerate(zip(sizes[:-1], sizes[1:])):
            last = index == len(sizes) - 2
            layers.append(Dense(fan_in, fan_out, rng,
                                activation=output_activation if last
                                else hidden_activation))
        self.layers = ModuleList(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x
