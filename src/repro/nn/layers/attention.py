"""Attention mechanisms.

Provides the attention building blocks used across the baselines:

* :class:`AdditiveAttention` — Bahdanau-style scoring (Dipole's "concat"
  variant, RETAIN's visit attention);
* :class:`LocationAttention` — score from the hidden state alone
  (Dipole's "location" variant);
* :class:`GeneralAttention` — bilinear query-key scoring (Dipole's
  "general" variant);
* :class:`MultiHeadSelfAttention` — transformer-style self-attention with
  an optional causal mask (SAnD, ConCare).
"""

from __future__ import annotations

from ..backend import xp as np

from .. import init, ops
from ..module import Module, Parameter
from .dense import Dense

__all__ = ["LocationAttention", "GeneralAttention", "AdditiveAttention",
           "MultiHeadSelfAttention", "attention_pool"]


def _causal_mask(steps):
    """The additive causal mask for ``steps`` positions, cached.

    The mask is a pure function of the step count; caching it matters
    for the incremental streaming paths (SAnD reruns its attention
    blocks over the cached prefix every step, so without the cache each
    served observation would rebuild one mask per block).  The cached
    array is shared — callers must treat it as read-only, which the
    additive ``scores + mask`` below does.
    """
    mask = _CAUSAL_MASKS.get(steps)
    if mask is None:
        mask = np.triu(np.full((steps, steps), -1e9), k=1)
        _CAUSAL_MASKS[steps] = mask
    return mask


_CAUSAL_MASKS = {}


def attention_pool(scores, values, axis=1):
    """Softmax ``scores`` along ``axis`` and return the weighted sum of values.

    Returns ``(context, weights)`` so callers can expose the weights for
    interpretability.
    """
    weights = ops.softmax(scores, axis=axis)
    context = ops.sum(weights * values, axis=axis)
    return context, weights


class LocationAttention(Module):
    """Score each time step from its own hidden state: ``a_t = w^T h_t + b``."""

    def __init__(self, hidden_size, rng):
        super().__init__()
        self.weight = Parameter(init.glorot_uniform((hidden_size, 1), rng))
        self.bias = Parameter(np.zeros(1))

    def forward(self, states):
        """``states``: (batch, time, hidden) -> scores (batch, time, 1)."""
        return ops.matmul(states, self.weight) + self.bias


class GeneralAttention(Module):
    """Bilinear score between a query state and each key: ``q^T W k``."""

    def __init__(self, hidden_size, rng):
        super().__init__()
        self.weight = Parameter(init.glorot_uniform((hidden_size, hidden_size), rng))

    def forward(self, query, keys):
        """``query``: (batch, hidden); ``keys``: (batch, time, hidden)."""
        projected = ops.matmul(query, self.weight)          # (B, H)
        scores = ops.sum(keys * projected.reshape(-1, 1, projected.shape[-1]),
                         axis=-1, keepdims=True)             # (B, T, 1)
        return scores


class AdditiveAttention(Module):
    """Bahdanau attention: ``v^T tanh(W_q q + W_k k)``."""

    def __init__(self, hidden_size, attention_size, rng):
        super().__init__()
        self.query_proj = Dense(hidden_size, attention_size, rng, use_bias=False)
        self.key_proj = Dense(hidden_size, attention_size, rng, use_bias=True)
        self.score_vec = Parameter(init.glorot_uniform((attention_size, 1), rng))

    def forward(self, query, keys):
        """``query``: (batch, hidden); ``keys``: (batch, time, hidden)."""
        q = self.query_proj(query)                           # (B, A)
        k = self.key_proj(keys)                              # (B, T, A)
        mixed = ops.tanh(k + q.reshape(-1, 1, q.shape[-1]))
        return ops.matmul(mixed, self.score_vec)             # (B, T, 1)


class MultiHeadSelfAttention(Module):
    """Scaled dot-product multi-head self-attention over (batch, time, model)."""

    def __init__(self, model_size, num_heads, rng, causal=False):
        super().__init__()
        if model_size % num_heads:
            raise ValueError("model_size must be divisible by num_heads")
        self.model_size = model_size
        self.num_heads = num_heads
        self.head_size = model_size // num_heads
        self.causal = causal
        self.query = Dense(model_size, model_size, rng, use_bias=False)
        self.key = Dense(model_size, model_size, rng, use_bias=False)
        self.value = Dense(model_size, model_size, rng, use_bias=False)
        self.output = Dense(model_size, model_size, rng, use_bias=True)

    def _split_heads(self, x, batch, steps):
        x = x.reshape(batch, steps, self.num_heads, self.head_size)
        return x.swapaxes(1, 2)                              # (B, H, T, d)

    def forward(self, x, return_weights=False):
        batch, steps, _ = x.shape
        q = self._split_heads(self.query(x), batch, steps)
        k = self._split_heads(self.key(x), batch, steps)
        v = self._split_heads(self.value(x), batch, steps)
        scores = ops.matmul(q, k.swapaxes(-1, -2)) / np.sqrt(self.head_size)
        if self.causal:
            scores = scores + _causal_mask(steps)
        weights = ops.softmax(scores, axis=-1)               # (B, H, T, T)
        context = ops.matmul(weights, v)                     # (B, H, T, d)
        context = context.swapaxes(1, 2).reshape(batch, steps, self.model_size)
        out = self.output(context)
        if return_weights:
            return out, weights
        return out
