"""Neural network layers built on the :mod:`repro.nn` autodiff engine."""

from .attention import (AdditiveAttention, GeneralAttention, LocationAttention,
                        MultiHeadSelfAttention, attention_pool)
from .conv import Conv1D
from .dense import MLP, Dense
from .dropout import Dropout
from .embedding import Embedding, positional_encoding
from .norm import LayerNorm
from .recurrent import GRU, LSTM, BiGRU, GRUCell, LSTMCell

__all__ = [
    "Dense", "MLP", "Dropout", "LayerNorm", "Conv1D",
    "Embedding", "positional_encoding",
    "GRUCell", "GRU", "LSTMCell", "LSTM", "BiGRU",
    "LocationAttention", "GeneralAttention", "AdditiveAttention",
    "MultiHeadSelfAttention", "attention_pool",
]
