"""Recurrent layers: GRU, LSTM, and bidirectional wrappers.

Sequences are represented as tensors of shape ``(batch, time, features)``.
By default GRU/LSTM run through the sequence-fused scan kernels
(:func:`repro.nn.ops.gru_scan` / :func:`repro.nn.ops.lstm_scan`): one
graph node per sequence with a hand-derived backward, instead of one
node (or node chain) per timestep.  Set ``fused_scan=False`` to fall
back to the step-unrolled reference path, which the autodiff tape
handles naturally; ``tests/nn/test_scan_equivalence.py`` pins the two
paths together in both dtype planes.
"""

from __future__ import annotations

from ..backend import xp as np

from .. import init, ops
from ..dtype import get_default_dtype
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["GRUCell", "GRU", "LSTMCell", "LSTM", "BiGRU"]


class GRUCell(Module):
    """Single-step gated recurrent unit (Cho et al., 2014).

    Gate layout in the fused kernels is ``[update z | reset r | candidate n]``.

    By default each step runs through the fused
    :func:`repro.nn.ops.gru_step` kernel — one graph node with a single
    hand-derived backward instead of the ~20-node unfused composition.
    Pass ``fused=False`` (or flip the attribute) to fall back to the
    reference composition; ``tests/nn/test_fused_equivalence.py`` pins
    the two paths together to 1e-10 in both forward and backward.
    """

    def __init__(self, input_size, hidden_size, rng, fused=True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        self.w_ih = Parameter(init.glorot_uniform((input_size, 3 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 3 * hidden_size), rng))
        self.b_ih = Parameter(np.zeros(3 * hidden_size))
        self.b_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x, h):
        """Advance one step: ``x`` is (batch, input), ``h`` is (batch, hidden)."""
        if self.fused:
            return ops.gru_step(x, h, self.w_ih, self.w_hh,
                                self.b_ih, self.b_hh)
        return self.reference_step(x, h)

    def reference_step(self, x, h):
        """The unfused op-by-op composition (ground truth for the kernel)."""
        gates_x = ops.matmul(x, self.w_ih) + self.b_ih
        gates_h = ops.matmul(h, self.w_hh) + self.b_hh
        zx, rx, nx = ops.split(gates_x, 3, axis=-1)
        zh, rh, nh = ops.split(gates_h, 3, axis=-1)
        update = ops.sigmoid(zx + zh)
        reset = ops.sigmoid(rx + rh)
        candidate = ops.tanh(nx + reset * nh)
        return update * h + (1.0 - update) * candidate


def _step_keep_masks(lengths, steps, batch):
    """Per-step ``(batch, 1)`` keep-masks for the step-unrolled paths.

    ``None`` when no lengths are given; otherwise ``masks[t]`` is True
    for rows still active at step ``t`` — frozen rows carry their state
    unchanged, matching the scan kernels' semantics.
    """
    if lengths is None:
        return None
    lengths = np.asarray(lengths, dtype=np.int64).reshape(batch, 1)
    return [lengths > t for t in range(steps)]


class GRU(Module):
    """GRU over a full sequence, returning all hidden states.

    Parameters
    ----------
    return_sequences:
        When true (default), :meth:`forward` returns a (batch, time, hidden)
        tensor; otherwise only the final state (batch, hidden).
    fused_scan:
        When true (default), the whole sequence runs through
        :func:`repro.nn.ops.gru_scan` — one graph node with a single
        sequence-level backward.  Set false (or ``cell.fused = False``,
        which implies the step path) for the step-unrolled reference.

    :meth:`forward` accepts optional per-row ``lengths``; rows freeze at
    their true length on both paths (scan: mask-aware early stop; steps:
    per-step ``where``).
    """

    def __init__(self, input_size, hidden_size, rng, return_sequences=True,
                 fused_scan=True):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.fused_scan = fused_scan

    def forward(self, x, h0=None, lengths=None):
        batch, steps, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        if self.fused_scan and self.cell.fused:
            cell = self.cell
            return ops.gru_scan(x, h, cell.w_ih, cell.w_hh, cell.b_ih,
                                cell.b_hh, lengths=lengths,
                                return_sequences=self.return_sequences)
        keep = _step_keep_masks(lengths, steps, batch)
        outputs = []
        # unbind_time shares one preallocated per-sequence gradient buffer
        # across steps instead of one full-size scatter per step.
        for t, x_t in enumerate(ops.unbind_time(x)):
            h_new = self.cell(x_t, h)
            h = h_new if keep is None else ops.where(keep[t], h_new, h)
            outputs.append(h)
        if self.return_sequences:
            return ops.stack(outputs, axis=1)
        return h

    # -- streaming inference (serve tier) ------------------------------
    def initial_state(self, batch_size):
        """Zero hidden state for :meth:`stream_step` (policy dtype)."""
        return np.zeros((batch_size, self.hidden_size),
                        dtype=get_default_dtype())

    def stream_step(self, x_t, h):
        """Advance one inference-only step on plain arrays.

        ``x_t`` is ``(batch, features)``, ``h`` ``(batch, hidden)``;
        returns the new hidden state.  Bit-identical to one step of the
        fused scan (:func:`repro.nn.ops.gru_scan_step`), which is what
        lets :class:`repro.serve.StreamingSession` turn each new hourly
        observation into an O(1) update instead of a full-sequence
        recompute.
        """
        cell = self.cell
        x_t = np.asarray(x_t, dtype=get_default_dtype())
        return ops.gru_scan_step(x_t, h, cell.w_ih.data, cell.w_hh.data,
                                 cell.b_ih.data, cell.b_hh.data)


class LSTMCell(Module):
    """Single-step LSTM (Hochreiter & Schmidhuber, 1997).

    Gate layout is ``[input i | forget f | cell g | output o]``; the forget
    bias is initialized to 1 as is conventional.
    """

    def __init__(self, input_size, hidden_size, rng):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x, state):
        """Advance one step; ``state`` is the tuple (h, c)."""
        h, c = state
        gates = ops.matmul(x, self.w_ih) + ops.matmul(h, self.w_hh) + self.bias
        i, f, g, o = ops.split(gates, 4, axis=-1)
        i, f, o = ops.sigmoid(i), ops.sigmoid(f), ops.sigmoid(o)
        g = ops.tanh(g)
        c_next = f * c + i * g
        h_next = o * ops.tanh(c_next)
        return h_next, c_next


class LSTM(Module):
    """LSTM over a full sequence.

    Like :class:`GRU`, runs through :func:`repro.nn.ops.lstm_scan` by
    default (``fused_scan=True``) and accepts optional per-row
    ``lengths`` on both paths.
    """

    def __init__(self, input_size, hidden_size, rng, return_sequences=True,
                 fused_scan=True):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences
        self.fused_scan = fused_scan

    def forward(self, x, state=None, lengths=None):
        batch, steps, _ = x.shape
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = state
        if self.fused_scan:
            cell = self.cell
            return ops.lstm_scan(x, h, c, cell.w_ih, cell.w_hh, cell.bias,
                                 lengths=lengths,
                                 return_sequences=self.return_sequences)
        keep = _step_keep_masks(lengths, steps, batch)
        outputs = []
        for t, x_t in enumerate(ops.unbind_time(x)):
            h_new, c_new = self.cell(x_t, (h, c))
            if keep is None:
                h, c = h_new, c_new
            else:
                h = ops.where(keep[t], h_new, h)
                c = ops.where(keep[t], c_new, c)
            outputs.append(h)
        if self.return_sequences:
            return ops.stack(outputs, axis=1)
        return h

    # -- streaming inference (serve tier) ------------------------------
    def initial_state(self, batch_size):
        """Zero ``(h, c)`` state for :meth:`stream_step` (policy dtype)."""
        dtype = get_default_dtype()
        return (np.zeros((batch_size, self.hidden_size), dtype=dtype),
                np.zeros((batch_size, self.hidden_size), dtype=dtype))

    def stream_step(self, x_t, state):
        """One inference-only step; ``state`` is ``(h, c)`` arrays.

        Bit-identical to one step of the fused scan
        (:func:`repro.nn.ops.lstm_scan_step`); see :meth:`GRU.stream_step`.
        """
        cell = self.cell
        h, c = state
        x_t = np.asarray(x_t, dtype=get_default_dtype())
        return ops.lstm_scan_step(x_t, h, c, cell.w_ih.data,
                                  cell.w_hh.data, cell.bias.data)


class BiGRU(Module):
    """Bidirectional GRU; outputs forward and backward states concatenated.

    Output shape is (batch, time, 2*hidden).  Used by Dipole.
    """

    def __init__(self, input_size, hidden_size, rng):
        super().__init__()
        self.forward_gru = GRU(input_size, hidden_size, rng)
        self.backward_gru = GRU(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, x):
        steps = x.shape[1]
        fwd = self.forward_gru(x)
        reversed_x = x[:, ::-1, :]
        bwd = self.backward_gru(reversed_x)
        bwd = bwd[:, ::-1, :]
        return ops.concat([fwd, bwd], axis=-1)
