"""Recurrent layers: GRU, LSTM, and bidirectional wrappers.

Sequences are represented as tensors of shape ``(batch, time, features)``.
The recurrence is unrolled in Python, which the autodiff tape handles
naturally; 48-step clinical sequences stay comfortably within budget.
"""

from __future__ import annotations

import numpy as np

from .. import init, ops
from ..module import Module, Parameter
from ..tensor import Tensor

__all__ = ["GRUCell", "GRU", "LSTMCell", "LSTM", "BiGRU"]


class GRUCell(Module):
    """Single-step gated recurrent unit (Cho et al., 2014).

    Gate layout in the fused kernels is ``[update z | reset r | candidate n]``.

    By default each step runs through the fused
    :func:`repro.nn.ops.gru_step` kernel — one graph node with a single
    hand-derived backward instead of the ~20-node unfused composition.
    Pass ``fused=False`` (or flip the attribute) to fall back to the
    reference composition; ``tests/nn/test_fused_equivalence.py`` pins
    the two paths together to 1e-10 in both forward and backward.
    """

    def __init__(self, input_size, hidden_size, rng, fused=True):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.fused = fused
        self.w_ih = Parameter(init.glorot_uniform((input_size, 3 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 3 * hidden_size), rng))
        self.b_ih = Parameter(np.zeros(3 * hidden_size))
        self.b_hh = Parameter(np.zeros(3 * hidden_size))

    def forward(self, x, h):
        """Advance one step: ``x`` is (batch, input), ``h`` is (batch, hidden)."""
        if self.fused:
            return ops.gru_step(x, h, self.w_ih, self.w_hh,
                                self.b_ih, self.b_hh)
        return self.reference_step(x, h)

    def reference_step(self, x, h):
        """The unfused op-by-op composition (ground truth for the kernel)."""
        gates_x = ops.matmul(x, self.w_ih) + self.b_ih
        gates_h = ops.matmul(h, self.w_hh) + self.b_hh
        zx, rx, nx = ops.split(gates_x, 3, axis=-1)
        zh, rh, nh = ops.split(gates_h, 3, axis=-1)
        update = ops.sigmoid(zx + zh)
        reset = ops.sigmoid(rx + rh)
        candidate = ops.tanh(nx + reset * nh)
        return update * h + (1.0 - update) * candidate


class GRU(Module):
    """GRU over a full sequence, returning all hidden states.

    Parameters
    ----------
    return_sequences:
        When true (default), :meth:`forward` returns a (batch, time, hidden)
        tensor; otherwise only the final state (batch, hidden).
    """

    def __init__(self, input_size, hidden_size, rng, return_sequences=True):
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    def forward(self, x, h0=None):
        batch, _, _ = x.shape
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        # unbind_time shares one preallocated per-sequence gradient buffer
        # across steps instead of one full-size scatter per step.
        for x_t in ops.unbind_time(x):
            h = self.cell(x_t, h)
            outputs.append(h)
        if self.return_sequences:
            return ops.stack(outputs, axis=1)
        return h


class LSTMCell(Module):
    """Single-step LSTM (Hochreiter & Schmidhuber, 1997).

    Gate layout is ``[input i | forget f | cell g | output o]``; the forget
    bias is initialized to 1 as is conventional.
    """

    def __init__(self, input_size, hidden_size, rng):
        super().__init__()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.w_ih = Parameter(init.glorot_uniform((input_size, 4 * hidden_size), rng))
        self.w_hh = Parameter(init.orthogonal((hidden_size, 4 * hidden_size), rng))
        bias = np.zeros(4 * hidden_size)
        bias[hidden_size:2 * hidden_size] = 1.0
        self.bias = Parameter(bias)

    def forward(self, x, state):
        """Advance one step; ``state`` is the tuple (h, c)."""
        h, c = state
        gates = ops.matmul(x, self.w_ih) + ops.matmul(h, self.w_hh) + self.bias
        i, f, g, o = ops.split(gates, 4, axis=-1)
        i, f, o = ops.sigmoid(i), ops.sigmoid(f), ops.sigmoid(o)
        g = ops.tanh(g)
        c_next = f * c + i * g
        h_next = o * ops.tanh(c_next)
        return h_next, c_next


class LSTM(Module):
    """LSTM over a full sequence."""

    def __init__(self, input_size, hidden_size, rng, return_sequences=True):
        super().__init__()
        self.cell = LSTMCell(input_size, hidden_size, rng)
        self.hidden_size = hidden_size
        self.return_sequences = return_sequences

    def forward(self, x, state=None):
        batch, _, _ = x.shape
        if state is None:
            h = Tensor(np.zeros((batch, self.hidden_size)))
            c = Tensor(np.zeros((batch, self.hidden_size)))
        else:
            h, c = state
        outputs = []
        for x_t in ops.unbind_time(x):
            h, c = self.cell(x_t, (h, c))
            outputs.append(h)
        if self.return_sequences:
            return ops.stack(outputs, axis=1)
        return h


class BiGRU(Module):
    """Bidirectional GRU; outputs forward and backward states concatenated.

    Output shape is (batch, time, 2*hidden).  Used by Dipole.
    """

    def __init__(self, input_size, hidden_size, rng):
        super().__init__()
        self.forward_gru = GRU(input_size, hidden_size, rng)
        self.backward_gru = GRU(input_size, hidden_size, rng)
        self.hidden_size = hidden_size

    def forward(self, x):
        steps = x.shape[1]
        fwd = self.forward_gru(x)
        reversed_x = x[:, ::-1, :]
        bwd = self.backward_gru(reversed_x)
        bwd = bwd[:, ::-1, :]
        return ops.concat([fwd, bwd], axis=-1)
