"""Dropout regularization."""

from __future__ import annotations

from ..backend import xp as np

from .. import ops
from ..module import Module

__all__ = ["Dropout"]


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    An explicit generator keeps runs reproducible.
    """

    def __init__(self, rate, rng=None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def forward(self, x):
        if not self.training or self.rate == 0.0:
            return x
        return ops.dropout_mask(x, self.rate, self.rng)
