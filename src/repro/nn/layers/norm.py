"""Normalization layers."""

from __future__ import annotations

from ..backend import xp as np

from .. import ops
from ..module import Module, Parameter

__all__ = ["LayerNorm"]


class LayerNorm(Module):
    """Layer normalization over the last axis with learned scale and shift."""

    def __init__(self, size, eps=1e-5):
        super().__init__()
        self.size = size
        self.eps = eps
        self.scale = Parameter(np.ones(size))
        self.shift = Parameter(np.zeros(size))

    def forward(self, x):
        mu = ops.mean(x, axis=-1, keepdims=True)
        variance = ops.var(x, axis=-1, keepdims=True)
        normalized = (x - mu) / ops.sqrt(variance + self.eps)
        return normalized * self.scale + self.shift
