"""Learning-rate schedules.

Schedulers wrap an :class:`~repro.nn.optim.Optimizer` and mutate its
``lr`` on each :meth:`step` (called once per epoch by convention).
Each exposes ``state_dict()`` / ``load_state_dict()`` so a checkpointed
run resumes mid-schedule (the optimizer's ``lr`` itself rides along in
the optimizer's own state dict).
"""

from __future__ import annotations

import math

__all__ = ["StepDecay", "CosineAnnealing", "ReduceOnPlateau"]


class StepDecay:
    """Multiply the learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer, step_size, gamma=0.1):
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self, value=None):
        """Advance one epoch (``value`` accepted for interface uniformity)."""
        self._epoch += 1
        decays = self._epoch // self.step_size
        self.optimizer.lr = self._base_lr * (self.gamma ** decays)
        return self.optimizer.lr

    def state_dict(self):
        return {"epoch": self._epoch, "base_lr": self._base_lr}

    def load_state_dict(self, state):
        self._epoch = int(state["epoch"])
        self._base_lr = float(state["base_lr"])


class CosineAnnealing:
    """Cosine decay from the initial lr to ``min_lr`` over ``total_epochs``."""

    def __init__(self, optimizer, total_epochs, min_lr=0.0):
        if total_epochs < 1:
            raise ValueError("total_epochs must be >= 1")
        self.optimizer = optimizer
        self.total_epochs = total_epochs
        self.min_lr = min_lr
        self._base_lr = optimizer.lr
        self._epoch = 0

    def step(self, value=None):
        """Advance one epoch (``value`` accepted for interface uniformity)."""
        self._epoch = min(self._epoch + 1, self.total_epochs)
        progress = self._epoch / self.total_epochs
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        self.optimizer.lr = self.min_lr + (self._base_lr - self.min_lr) * cosine
        return self.optimizer.lr

    def state_dict(self):
        return {"epoch": self._epoch, "base_lr": self._base_lr}

    def load_state_dict(self, state):
        self._epoch = int(state["epoch"])
        self._base_lr = float(state["base_lr"])


class ReduceOnPlateau:
    """Halve (by ``factor``) the lr when a monitored value stops improving.

    ``step(value)`` takes the latest validation loss (lower is better).
    """

    def __init__(self, optimizer, factor=0.5, patience=2, min_lr=1e-6):
        if not 0.0 < factor < 1.0:
            raise ValueError("factor must be in (0, 1)")
        self.optimizer = optimizer
        self.factor = factor
        self.patience = patience
        self.min_lr = min_lr
        self._best = math.inf
        self._stall = 0

    def step(self, value):
        """Report a new monitored value; maybe reduce the lr."""
        if value < self._best - 1e-12:
            self._best = value
            self._stall = 0
        else:
            self._stall += 1
            if self._stall > self.patience:
                self.optimizer.lr = max(self.min_lr,
                                        self.optimizer.lr * self.factor)
                self._stall = 0
        return self.optimizer.lr

    def state_dict(self):
        return {"best": self._best, "stall": self._stall}

    def load_state_dict(self, state):
        self._best = float(state["best"])
        self._stall = int(state["stall"])
