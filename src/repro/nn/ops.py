"""Differentiable primitive operations for :class:`repro.nn.Tensor`.

Every function takes tensors (or array-likes, which are promoted) and
returns a new tensor wired into the computation graph.  The backward
closures follow a single convention: they receive the gradient of the loss
w.r.t. the op output and accumulate gradients into each parent that
requires them, using :func:`repro.nn.tensor.unbroadcast` to undo numpy
broadcasting.

Dtype discipline
----------------
Ops must preserve the dtype of their tensor inputs (the policy dtype
from :mod:`repro.nn.dtype`).  Under NEP 50 numpy promotion, python
scalars are "weak" (``float32_array * 0.5`` stays float32) but numpy
scalars and bool arrays are not (``np.prod(...)`` yields a strong
int64/float64 scalar, and ``bool_array + 0.5`` promotes to float64), so
coefficient arrays derived from masks are built with explicit dtypes
below — a silent promotion to float64 in one backward closure would
drag the whole gradient plane back to double precision.

Gradient ownership
------------------
Backward closures pass ``owned=True`` to ``Tensor._accumulate`` when the
array they hand over is freshly computed inside the closure; the tensor
then adopts it as its gradient buffer without a copy.  Closures that
forward the *incoming* gradient, or a view of it (reshape/transpose/
concat slices), must not claim ownership — the same buffer may feed a
sibling branch of the graph.

Op registry
-----------
Each primitive is declared with the :func:`differentiable` decorator,
which records it in a registry together with a *sample-input factory*: a
callable ``rng -> [OpSample, ...]`` producing scalar-valued test
scenarios for the op.  The test suite enumerates the registry and runs a
finite-difference gradient check over every sample
(``tests/nn/test_gradcheck_registry.py``), so a new op cannot land
without gradcheck coverage: registering one without a factory makes the
sweep fail with :class:`MissingSampleFactory`.
"""

from __future__ import annotations

import builtins
import functools
from collections import OrderedDict

from .backend import xp as np

from ..bench import _hooks as _bench_hooks
from . import _capture_hooks
from .tensor import Tensor, as_tensor, is_grad_enabled, unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "exp", "log",
    "sqrt", "tanh", "sigmoid", "relu", "leaky_relu", "clip", "abs",
    "abs_lt", "maximum", "minimum", "sum", "mean", "max", "min", "var",
    "reshape", "transpose", "swapaxes", "getitem", "concat", "stack",
    "split", "unbind_time", "softmax", "log_softmax",
    "softmax_cross_entropy", "where", "dropout_mask", "pad_last",
    "outer_last", "embedding_lookup", "gru_step", "gru_scan", "lstm_scan",
    "grud_scan", "stagenet_scan",
]
# gru_scan_step / lstm_scan_step / grud_scan_step / stagenet_scan_step /
# linear_rows are deliberately NOT in __all__: they are inference-only
# array kernels (no Tensor, no graph, no backward) behind the streaming
# stream_step hooks, and __all__ doubles as the differentiable-op
# registry contract (tests/nn/test_gradcheck_registry).


# ----------------------------------------------------------------------
# Op registry
# ----------------------------------------------------------------------

class MissingSampleFactory(LookupError):
    """An op was registered without gradcheck sample inputs."""


class OpSample:
    """One gradcheck scenario for a registered op.

    Parameters
    ----------
    build:
        ``build(*tensors) -> scalar Tensor`` exercising the op; receives
        one tensor per entry of ``arrays``.
    arrays:
        The differentiable numpy inputs of the scenario.
    """

    __slots__ = ("build", "arrays")

    def __init__(self, build, *arrays):
        self.build = build
        self.arrays = tuple(np.asarray(a, dtype=np.float64) for a in arrays)


class OpSpec:
    """Registry record: the op callable plus its sample-input factory."""

    __slots__ = ("name", "fn", "sample_factory")

    def __init__(self, name, fn, sample_factory):
        self.name = name
        self.fn = fn
        self.sample_factory = sample_factory

    def __repr__(self):
        flag = "" if self.sample_factory else ", no samples"
        return f"OpSpec({self.name!r}{flag})"


_REGISTRY = OrderedDict()


def differentiable(sample_factory=None):
    """Decorator registering a differentiable primitive.

    ``sample_factory(rng)`` must return a list of :class:`OpSample`
    scenarios; the registry-driven test sweep gradchecks every one.
    Registering without a factory is allowed syntactically but fails the
    sweep — the escape hatch exists only so the failure mode itself is
    testable.
    """
    def decorate(fn):
        name = fn.__name__
        active_profilers = _bench_hooks._PROFILERS  # bound once; shared list
        active_tracers = _capture_hooks._TRACERS    # bound once; shared list

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            # Fast path: two truthiness checks when nothing observes.
            if active_profilers:
                return _bench_hooks.call_op(name, fn, args, kwargs)
            if active_tracers:
                return _capture_hooks.call_op(name, fn, args, kwargs)
            return fn(*args, **kwargs)

        _REGISTRY[name] = OpSpec(name, wrapper, sample_factory)
        return wrapper
    return decorate


def registered_ops():
    """Snapshot of the op registry: ``name -> OpSpec``."""
    return OrderedDict(_REGISTRY)


def sample_inputs(name, rng):
    """Build the gradcheck scenarios for a registered op.

    Raises :class:`MissingSampleFactory` when the op was registered
    without a factory, and ``KeyError`` for unknown ops.
    """
    spec = _REGISTRY[name]
    if spec.sample_factory is None:
        raise MissingSampleFactory(
            f"op {name!r} is registered without a sample-input factory; "
            f"every differentiable primitive must declare gradcheck "
            f"samples via @differentiable(factory)")
    return list(spec.sample_factory(rng))


def _sqsum(t):
    """Scalar-valued wrapper used by sample factories: ``sum(t * t)``."""
    return sum(mul(t, t))


def _away_from_zero(rng, shape, gap=0.3):
    """Random values with ``|x| >= gap`` (keeps kinked ops off their kink)."""
    signs = np.where(rng.random(shape) < 0.5, -1.0, 1.0)
    return rng.uniform(gap, 1.0 + gap, size=shape) * signs


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(add(a, b)),
             rng.normal(size=(3, 4)), rng.normal(size=(4,))),
    OpSample(lambda a, b: _sqsum(add(a, b)),
             rng.normal(size=(2, 1, 3)), rng.normal(size=(3,))),
])
def add(a, b):
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(sub(a, b)),
             rng.normal(size=(3, 4)), rng.normal(size=(3, 1))),
    OpSample(lambda a, b: _sqsum(sub(a, b)),
             rng.normal(), rng.normal(size=(5,))),
])
def sub(a, b):
    """Elementwise ``a - b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad, b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(mul(a, b)),
             rng.normal(size=(3, 4)), rng.normal(size=(4,))),
    OpSample(lambda a, b: _sqsum(mul(a, b)),
             rng.normal(size=(2, 3)), rng.normal()),
])
def mul(a, b):
    """Elementwise ``a * b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * b.data, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * a.data, b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(div(a, b)),
             rng.normal(size=(3, 4)), _away_from_zero(rng, (4,), gap=1.0)),
    OpSample(lambda a, b: _sqsum(div(a, b)),
             rng.normal(size=(2, 3)), _away_from_zero(rng, (2, 1), gap=1.0)),
])
def div(a, b):
    """Elementwise ``a / b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad / b.data, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad * a.data / (b.data ** 2), b.shape),
                          owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(neg(a)), rng.normal(size=(5,))),
])
def neg(a):
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(-grad, owned=True)

    return Tensor._make(-a.data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(power(a, 3)), rng.normal(size=(4,))),
    OpSample(lambda a: sum(power(a, 1.5)),
             rng.uniform(0.5, 2.0, size=(4,))),
    # exponent 0 must have an exactly-zero gradient, even at base 0
    OpSample(lambda a: sum(power(a, 0)),
             np.concatenate([rng.normal(size=(3,)), [0.0]])),
])
def power(a, exponent):
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() only supports constant scalar exponents")
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad):
        if a.requires_grad:
            if exponent == 0.0:
                # d/dx x^0 = 0 everywhere; the generic formula would
                # evaluate 0 * x^-1 and emit NaN at x = 0.
                a._accumulate(np.zeros_like(a.data), owned=True)
            else:
                a._accumulate(grad * exponent * a.data ** (exponent - 1.0),
                              owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(abs(a)), _away_from_zero(rng, (6,))),
])
def abs(a):  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient 0 at 0)."""
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * np.sign(a.data), owned=True)

    return Tensor._make(np.abs(a.data), (a,), backward)


@differentiable(lambda rng: [
    # Values kept away from the threshold so finite differences see a
    # locally constant indicator (gradient exactly zero / exactly one
    # through the product).
    OpSample(lambda a: sum(mul(a, abs_lt(a, 0.5))),
             rng.uniform(1.0, 2.0, size=(6,)) * rng.choice([-1.0, 1.0], 6)),
    OpSample(lambda a: sum(mul(a, abs_lt(a, 5.0))),
             rng.uniform(1.0, 2.0, size=(6,)) * rng.choice([-1.0, 1.0], 6)),
])
def abs_lt(a, threshold):
    """Indicator ``|a| < threshold`` as a 0/1 tensor of ``a``'s dtype.

    Non-differentiable (zero gradient everywhere, like a constant):
    exists so mask-style conditions derived from tensor values flow
    through the op layer — and therefore through graph capture — instead
    of being computed with raw numpy and baked stale into a trace.
    """
    a = as_tensor(a)
    dt = a.data.dtype
    out = (np.abs(a.data) < dt.type(threshold)).astype(dt)
    return Tensor._make(out, (), None)


def _tie_samples(rng, op_name):
    """Samples for maximum/minimum: a generic pair plus an exact-tie pair."""
    fn = _REGISTRY[op_name].fn
    a = rng.normal(size=(5,))
    offsets = rng.choice([-0.75, 0.75], size=(5,))
    b_tied = a.copy()
    b_tied[::2] += offsets[::2]          # odd positions tie exactly
    return [
        OpSample(lambda x, y: sum(fn(x, y)),
                 rng.normal(size=(4,)) , rng.normal(size=(4,)) + 2.5),
        OpSample(lambda x, y: sum(fn(x, y)), a, b_tied),
        OpSample(lambda x, y: _sqsum(fn(x, y)),
                 rng.normal(size=(3, 4)), rng.normal(size=(4,))),
    ]


@differentiable(lambda rng: _tie_samples(rng, "maximum"))
def maximum(a, b):
    """Elementwise maximum; exact ties split the gradient evenly.

    The even split matches central finite differences (each tied input
    receives half the sensitivity), which a winner-take-all subgradient
    would not.
    """
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data > b.data
    tie = a.data == b.data
    out_data = np.where(a_wins | tie, a.data, b.data)
    # Built with an explicit dtype: bool + python-float arithmetic would
    # promote the coefficients (and thus the gradients) to float64.
    coeff_a = a_wins.astype(out_data.dtype)
    coeff_a[tie] = 0.5
    coeff_b = 1.0 - coeff_a

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * coeff_a, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * coeff_b, b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: _tie_samples(rng, "minimum"))
def minimum(a, b):
    """Elementwise minimum; exact ties split the gradient evenly."""
    a, b = as_tensor(a), as_tensor(b)
    a_wins = a.data < b.data
    tie = a.data == b.data
    out_data = np.where(a_wins | tie, a.data, b.data)
    coeff_a = a_wins.astype(out_data.dtype)
    coeff_a[tie] = 0.5
    coeff_b = 1.0 - coeff_a

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * coeff_a, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * coeff_b, b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(clip(a, -0.5, 0.5)), rng.normal(size=(8,)) * 2.0),
])
def clip(a, low, high):
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(where(np.arange(6) % 2 == 0, a, b)),
             rng.normal(size=(6,)), rng.normal(size=(6,))),
    OpSample(lambda a, b: _sqsum(where(np.eye(3, dtype=bool), a, b)),
             rng.normal(size=(3, 3)), rng.normal(size=(3,))),
])
def where(condition, a, b):
    """Elementwise select: ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is not differentiated through: a constant boolean
    array, or a tensor (e.g. an :func:`abs_lt` indicator) whose non-zero
    entries select ``a`` — routing dynamic conditions through tensors
    keeps them visible to graph capture.
    """
    if isinstance(condition, Tensor):
        condition = condition.data
    cond = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape), owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~cond), b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Transcendental / activation functions
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    OpSample(lambda a: sum(exp(a)), rng.normal(size=(5,))),
])
def exp(a):
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(log(a)), rng.uniform(0.5, 3.0, size=(5,))),
])
def log(a):
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad / a.data, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(sqrt(a)), rng.uniform(0.5, 3.0, size=(5,))),
])
def sqrt(a):
    """Elementwise square root."""
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * 0.5 / out_data, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(tanh(a)), rng.normal(size=(5,))),
])
def tanh(a):
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out_data ** 2), owned=True)

    return Tensor._make(out_data, (a,), backward)


def _stable_sigmoid(x, out=None):
    """Numerically stable logistic sigmoid on a raw numpy array.

    With ``out`` the result is written into that array (which may be
    ``x`` itself, or a view such as a gate slice) instead of a fresh
    allocation.
    """
    out = np.empty_like(x) if out is None else out
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@differentiable(lambda rng: [
    OpSample(lambda a: sum(sigmoid(a)), rng.normal(size=(5,)) * 3.0),
])
def sigmoid(a):
    """Numerically stable elementwise logistic sigmoid."""
    a = as_tensor(a)
    out_data = _stable_sigmoid(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data), owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(relu(a)), _away_from_zero(rng, (7,))),
])
def relu(a):
    """Elementwise rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(leaky_relu(a, 0.1)), _away_from_zero(rng, (7,))),
])
def leaky_relu(a, negative_slope=0.01):
    """Leaky ReLU with configurable negative-side slope."""
    a = as_tensor(a)
    mask = a.data > 0
    # np.where with python-float branches yields float64; pin the policy
    # dtype so the slope (and every gradient through it) stays put.
    dt = a.data.dtype
    slope = np.where(mask, dt.type(1.0), dt.type(negative_slope))
    out_data = a.data * slope

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * slope, owned=True)

    return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def _expand_reduced(grad, shape, axis, keepdims):
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = builtins.sorted(ax % len(shape) for ax in axes)
        for ax in axes:
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(a), rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(sum(a, axis=1)), rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(sum(a, axis=0, keepdims=True)),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(sum(a, axis=(0, 2))),
             rng.normal(size=(2, 3, 4))),
    OpSample(lambda a: _sqsum(sum(a, axis=-1)), rng.normal(size=(2, 3))),
])
def sum(a, axis=None, keepdims=False):  # noqa: A001 - mirrors numpy naming
    """Sum over the given axis (or all axes)."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims))

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: mean(a), rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(mean(a, axis=1)), rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(mean(a, axis=(0, 2), keepdims=True)),
             rng.normal(size=(2, 3, 4))),
])
def mean(a, axis=None, keepdims=False):
    """Mean over the given axis (or all axes)."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    # A python int: an np.prod scalar is "strong" under NEP 50 and would
    # promote float32 gradients to float64 in the division below.
    count = a.data.size if axis is None else int(np.prod(
        [a.shape[ax % a.ndim] for ax in (axis if isinstance(axis, tuple) else (axis,))]))

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims) / count,
                          owned=True)

    return Tensor._make(out_data, (a,), backward)


def _distinct(rng, shape):
    """Values with well-separated magnitudes (unambiguous arg-extrema)."""
    size = int(np.prod(shape))
    return (np.linspace(0.0, 1.0, size).reshape(shape)
            + rng.normal(size=shape) * 0.01)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(max(a, axis=1)), _distinct(rng, (3, 4))),
    OpSample(lambda a: max(a), _distinct(rng, (6,))),
    OpSample(lambda a: _sqsum(max(a, axis=0, keepdims=True)),
             _distinct(rng, (3, 4))),
    # two exactly-tied maxima: the gradient splits 0.5 / 0.5
    OpSample(lambda a: max(a), np.array([0.2, 1.5, -0.3, 1.5])),
])
def max(a, axis=None, keepdims=False):  # noqa: A001
    """Maximum over the given axis; gradient is split evenly among ties."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded = a.data.max(axis=axis, keepdims=True) if axis is not None else out_data
    mask = (a.data == expanded).astype(a.data.dtype)
    mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims) * mask,
                          owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(min(a, axis=0)), _distinct(rng, (3, 4))),
    OpSample(lambda a: min(a), _distinct(rng, (6,))),
    OpSample(lambda a: min(a), np.array([0.2, -1.5, 0.3, -1.5])),
])
def min(a, axis=None, keepdims=False):  # noqa: A001
    """Minimum over the given axis; gradient is split evenly among ties."""
    return neg(max(neg(a), axis=axis, keepdims=keepdims))


@differentiable(lambda rng: [
    OpSample(lambda a: sum(var(a, axis=-1)), rng.normal(size=(3, 5))),
    OpSample(lambda a: var(a), rng.normal(size=(4,))),
])
def var(a, axis=None, keepdims=False):
    """Population variance over the given axis (ddof=0)."""
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    return mean(mul(centered, centered), axis=axis, keepdims=keepdims)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(3, 4)), rng.normal(size=(4, 2))),
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(2, 3, 4)), rng.normal(size=(2, 4, 2))),
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(2, 3, 4)), rng.normal(size=(4, 2))),
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(4,)), rng.normal(size=(4, 3))),
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(3, 4)), rng.normal(size=(4,))),
    OpSample(lambda a, b: matmul(a, b),
             rng.normal(size=(4,)), rng.normal(size=(4,))),
    OpSample(lambda a, b: sum(matmul(a, b)),
             rng.normal(size=(2, 3, 4)), rng.normal(size=(4,))),
])
def matmul(a, b):
    """Matrix product with numpy's stacked-batch semantics.

    Supports ``(..., m, k) @ (..., k, n)`` with broadcasting of the leading
    batch dimensions, plus 1-D operands following numpy's rules.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a.requires_grad:
            if b_data.ndim == 1:
                if a_data.ndim == 1:
                    grad_a = grad * b_data
                else:
                    grad_a = np.expand_dims(grad, -1) * b_data
            else:
                g = np.expand_dims(grad, -2) if a_data.ndim == 1 else grad
                grad_a = g @ np.swapaxes(b_data, -1, -2)
                if a_data.ndim == 1:
                    grad_a = grad_a.reshape(a_data.shape[-1:]) if grad_a.ndim <= 2 \
                        else grad_a.sum(axis=tuple(range(grad_a.ndim - 2))).reshape(-1)
            a._accumulate(unbroadcast(grad_a, a.shape), owned=True)
        if b.requires_grad:
            if a_data.ndim == 1:
                if b_data.ndim == 1:
                    grad_b = grad * a_data
                else:
                    grad_b = np.expand_dims(a_data, -1) * grad
            else:
                g = np.expand_dims(grad, -1) if b_data.ndim == 1 else grad
                grad_b = np.swapaxes(a_data, -1, -2) @ g
                if b_data.ndim == 1:
                    # Drop the column axis we added, then sum any batch dims.
                    grad_b = grad_b[..., 0]
                    if grad_b.ndim > 1:
                        grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
            b._accumulate(unbroadcast(grad_b, b.shape), owned=True)

    return Tensor._make(out_data, (a, b), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: _sqsum(outer_last(a, b)),
             rng.normal(size=(2, 3)), rng.normal(size=(2, 3))),
    OpSample(lambda a, b: _sqsum(outer_last(a, b)),
             rng.normal(size=(2, 3)), rng.normal(size=(2, 4))),
])
def outer_last(a, b):
    """Pairwise product over the last axis: ``out[..., i, j] = a[..., i] * b[..., j]``.

    Used to form explicit pairwise interaction grids without a Python loop.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data[..., :, None] * b.data[..., None, :]

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast((grad * b.data[..., None, :]).sum(-1), a.shape),
                          owned=True)
        if b.requires_grad:
            b._accumulate(unbroadcast((grad * a.data[..., :, None]).sum(-2), b.shape),
                          owned=True)

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(reshape(a, (6,))), rng.normal(size=(2, 3))),
    OpSample(lambda a: _sqsum(reshape(a, (3, 4))),
             rng.normal(size=(2, 3, 2))),
])
def reshape(a, shape):
    """Reshape without copying data."""
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad.reshape(a.shape))

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(transpose(a)), rng.normal(size=(2, 3))),
    OpSample(lambda a: _sqsum(transpose(a, (1, 2, 0))),
             rng.normal(size=(2, 3, 4))),
    # negative axes must invert correctly (regression: argsort on raw
    # negative axes produced a wrong inverse permutation)
    OpSample(lambda a: _sqsum(transpose(a, (0, -1, 1))),
             rng.normal(size=(2, 3, 4))),
])
def transpose(a, axes=None):
    """Permute axes (full reverse by default, like ``ndarray.T``)."""
    a = as_tensor(a)
    out_data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        # Normalize negative axes before inverting the permutation.
        inverse = np.argsort([ax % a.ndim for ax in axes])

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad.transpose(inverse) if inverse is not None
                          else grad.transpose())

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(swapaxes(a, 0, 2)), rng.normal(size=(2, 3, 4))),
    OpSample(lambda a: _sqsum(swapaxes(a, -1, -2)),
             rng.normal(size=(2, 3, 4))),
])
def swapaxes(a, axis1, axis2):
    """Swap two axes."""
    a = as_tensor(a)
    out_data = np.swapaxes(a.data, axis1, axis2)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(np.swapaxes(grad, axis1, axis2))

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(getitem(a, (slice(1, None), slice(None, 2)))),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(getitem(a, (slice(None), slice(None, None, -1)))),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(getitem(a, np.array([0, 2, 2]))),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(getitem(a, np.array([True, False, True]))),
             rng.normal(size=(3, 4))),
])
def getitem(a, index):
    """Basic and advanced indexing; gradients scatter-add back."""
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a._accumulate(full, owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: _sqsum(concat([a, b], axis=1)),
             rng.normal(size=(2, 3)), rng.normal(size=(2, 2))),
    OpSample(lambda a, b, c: _sqsum(concat([a, b, c], axis=-1)),
             rng.normal(size=(2, 1)), rng.normal(size=(2, 2)),
             rng.normal(size=(2, 3))),
])
def concat(tensors, axis=-1):
    """Concatenate tensors along an axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


@differentiable(lambda rng: [
    OpSample(lambda a, b: _sqsum(stack([a, b], axis=1)),
             rng.normal(size=(2, 3)), rng.normal(size=(2, 3))),
    OpSample(lambda a, b: _sqsum(stack([a, b], axis=-1)),
             rng.normal(size=(2, 3)), rng.normal(size=(2, 3))),
])
def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)


def _split_weighted(a, sections, axis):
    parts = split(a, sections, axis=axis)
    total = None
    for i, part in enumerate(parts):
        term = mul(float(i + 1), _sqsum(part))
        total = term if total is None else add(total, term)
    return total


@differentiable(lambda rng: [
    OpSample(lambda a: _split_weighted(a, 3, -1), rng.normal(size=(2, 6))),
    OpSample(lambda a: _split_weighted(a, 2, 0), rng.normal(size=(4, 3))),
])
def split(a, sections, axis=-1):
    """Split into equal sections along an axis; returns a list of tensors."""
    a = as_tensor(a)
    size = a.shape[axis]
    if size % sections:
        raise ValueError(f"axis of size {size} cannot be split into {sections} equal parts")
    step = size // sections
    outs = []
    for k in range(sections):
        slicer = [slice(None)] * a.ndim
        slicer[axis] = slice(k * step, (k + 1) * step)
        outs.append(getitem(a, tuple(slicer)))
    return outs


def _unbind_weighted(a):
    """Scalar build for the unbind_time factory: weighted sum of slices."""
    total = None
    for i, step in enumerate(unbind_time(a)):
        term = mul(float(i + 1), _sqsum(step))
        total = term if total is None else add(total, term)
    return total


@differentiable(lambda rng: [
    OpSample(_unbind_weighted, rng.normal(size=(2, 3, 4))),
    OpSample(_unbind_weighted, rng.normal(size=(3, 2))),
])
def unbind_time(a):
    """Split a sequence tensor along axis 1 into per-step tensors.

    ``unbind_time(x)[t]`` equals ``x[:, t]``, but the backward pass of all
    steps shares one preallocated ``(batch, time, ...)`` gradient buffer
    (written slice-wise into ``a.grad``) instead of scattering each step's
    gradient through a fresh full-size zero array the way per-step
    ``getitem`` does.  This is the hot path of every recurrent loop: for a
    48-step sequence the unfused form allocates 48 full-sequence arrays
    per backward, this form allocates one.
    """
    a = as_tensor(a)
    if a.ndim < 2:
        raise ValueError("unbind_time needs a (batch, time, ...) tensor")
    steps = a.shape[1]

    def make_backward(t):
        def backward(grad):
            if a.requires_grad:
                # Preallocate the full per-sequence buffer once; later
                # steps accumulate into their slice of the same array.
                if a.grad is None:
                    a.grad = np.zeros_like(a.data)
                    if _bench_hooks._PROFILERS:
                        _bench_hooks.grad_alloc(a.grad.nbytes)
                a.grad[:, t] += grad
        return backward

    return [Tensor._make(a.data[:, t], (a,), make_backward(t))
            for t in range(steps)]


@differentiable(lambda rng: [
    OpSample(lambda a: _sqsum(pad_last(a, 1, 2)), rng.normal(size=(2, 3))),
    OpSample(lambda a: _sqsum(pad_last(a, 0, 1, value=0.7)),
             rng.normal(size=(3,))),
])
def pad_last(a, before, after, value=0.0):
    """Pad the last axis with a constant value."""
    a = as_tensor(a)
    widths = [(0, 0)] * (a.ndim - 1) + [(before, after)]
    out_data = np.pad(a.data, widths, constant_values=value)

    def backward(grad):
        if a.requires_grad:
            slicer = [slice(None)] * (a.ndim - 1) + [slice(before, before + a.shape[-1])]
            a._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    OpSample(lambda a: sum(mul(softmax(a, axis=-1), np.arange(4.0))),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: _sqsum(softmax(a, axis=0)), rng.normal(size=(3, 4))),
])
def softmax(a, axis=-1):
    """Numerically stable softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    out_data = exped / exped.sum(axis=axis, keepdims=True)

    def backward(grad):
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (grad - dot), owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: sum(mul(log_softmax(a, axis=-1), np.arange(4.0))),
             rng.normal(size=(2, 4))),
    OpSample(lambda a: _sqsum(log_softmax(a, axis=0)),
             rng.normal(size=(3, 2))),
])
def log_softmax(a, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True),
                          owned=True)

    return Tensor._make(out_data, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda a: mean(softmax_cross_entropy(a, np.array([0, 2, 1]))),
             rng.normal(size=(3, 4))),
    OpSample(lambda a: sum(softmax_cross_entropy(a, np.array([1]))),
             rng.normal(size=(1, 3)) * 2.0),
])
def softmax_cross_entropy(logits, targets):
    """Fused log-softmax + negative-log-likelihood gather.

    ``logits`` is (batch, classes); ``targets`` a constant integer class
    vector.  Returns the per-sample loss vector (callers reduce).  The
    forward values are bit-identical to the unfused composition
    ``neg(getitem(log_softmax(logits), (rows, targets)))``; the single
    backward closure replaces four graph nodes (and getitem's
    ``np.add.at`` scatter) with one dense update.
    """
    logits = as_tensor(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if logits.ndim != 2 or targets.ndim != 1:
        raise ValueError("softmax_cross_entropy expects (batch, classes) "
                         "logits and a 1-D integer target vector")
    x = logits.data
    shifted = x - x.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    rows = np.arange(x.shape[0])
    out_data = -log_probs[rows, targets]

    def backward(grad):
        if logits.requires_grad:
            # d loss_i / d logits_i = softmax_i - onehot_i, row-scaled by
            # the incoming per-sample gradient.  One buffer: exp writes
            # it, the row scale and one-hot subtraction update in place,
            # and the tensor adopts it as its gradient without a copy.
            full = np.exp(log_probs)
            full *= grad[:, None]
            full[rows, targets] -= grad
            logits._accumulate(full, owned=True)

    return Tensor._make(out_data, (logits,), backward)


# ----------------------------------------------------------------------
# Fused recurrent kernels
# ----------------------------------------------------------------------

def _gru_step_sample(rng):
    batch, num_in, hidden = 2, 3, 2
    return [OpSample(
        lambda x, h, wi, wh, bi, bh: _sqsum(gru_step(x, h, wi, wh, bi, bh)),
        rng.normal(size=(batch, num_in)), rng.normal(size=(batch, hidden)),
        rng.normal(size=(num_in, 3 * hidden)) * 0.5,
        rng.normal(size=(hidden, 3 * hidden)) * 0.5,
        rng.normal(size=3 * hidden) * 0.1, rng.normal(size=3 * hidden) * 0.1,
    )]


@differentiable(_gru_step_sample)
def gru_step(x, h, w_ih, w_hh, b_ih, b_hh):
    """One fused GRU step with a single hand-derived backward.

    Computes exactly the function of :class:`~repro.nn.layers.GRUCell`
    (gate layout ``[update z | reset r | candidate n]``, candidate of the
    form ``tanh(n_x + r * n_h)``) but as **one** graph node: the input and
    hidden projections for all gates run as a single
    ``[x h] @ [W_ih; W_hh]`` matmul over the concatenated batch (plus one
    small ``h @ W_hh[:, 2H:]`` product to keep the candidate's hidden
    branch separate from the summed gates), and the ~20-node unfused
    elementwise tail collapses into raw numpy.  The backward closure
    reuses the cached gate activations, so the whole step costs four BLAS
    calls backward instead of a long chain of tape nodes.
    """
    x, h = as_tensor(x), as_tensor(h)
    w_ih, w_hh = as_tensor(w_ih), as_tensor(w_hh)
    b_ih, b_hh = as_tensor(b_ih), as_tensor(b_hh)
    hidden = h.shape[-1]
    if w_ih.shape != (x.shape[-1], 3 * hidden) \
            or w_hh.shape != (hidden, 3 * hidden):
        raise ValueError(
            f"gru_step weight shapes {w_ih.shape}/{w_hh.shape} do not match "
            f"input {x.shape} and hidden {h.shape}")

    xh = np.concatenate([x.data, h.data], axis=-1)
    w_all = np.concatenate([w_ih.data, w_hh.data], axis=0)
    gates = xh @ w_all                               # summed z | r | n
    gates += b_ih.data + b_hh.data
    # The candidate needs n_x and n_h separately (reset scales only n_h);
    # recover n_x from the summed gate instead of a third full matmul.
    n_h = h.data @ w_hh.data[:, 2 * hidden:]
    n_h += b_hh.data[2 * hidden:]
    # Gate activations overwrite their pre-activation slices of the one
    # ``gates`` buffer — the pre-activations are never needed again.
    z = _stable_sigmoid(gates[:, :hidden], out=gates[:, :hidden])
    r = _stable_sigmoid(gates[:, hidden:2 * hidden],
                        out=gates[:, hidden:2 * hidden])
    n_pre = gates[:, 2 * hidden:]
    n_pre -= n_h
    n_pre += r * n_h
    n = np.tanh(n_pre, out=n_pre)
    out_data = h.data - n                            # z*h + (1-z)*n
    out_data *= z
    out_data += n

    def backward(grad):
        # One (batch, 3H) buffer holds the x-side gate gradients; the
        # three blocks are filled in place via out= ufuncs instead of
        # three temporaries plus an np.concatenate copy.
        d_gates = np.empty_like(gates)
        d_z = d_gates[:, :hidden]
        d_r = d_gates[:, hidden:2 * hidden]
        d_n = d_gates[:, 2 * hidden:]
        one_minus = 1.0 - z
        np.multiply(n, n, out=d_n)                   # d_n_pre
        np.subtract(1.0, d_n, out=d_n)
        d_n *= grad
        d_n *= one_minus
        np.subtract(h.data, n, out=d_z)              # d_z_pre
        d_z *= grad
        d_z *= z
        d_z *= one_minus
        np.subtract(1.0, r, out=one_minus)           # buffer becomes 1-r
        np.multiply(d_n, n_h, out=d_r)               # d_r_pre
        d_r *= r
        d_r *= one_minus
        if h.requires_grad or w_hh.requires_grad or b_hh.requires_grad:
            # h-side gates differ only in the candidate block (scaled by
            # the reset gate): one copy, one in-place scale.
            d_gates_h = d_gates.copy()
            d_gates_h[:, 2 * hidden:] *= r
        if x.requires_grad:
            x._accumulate(d_gates @ w_ih.data.T, owned=True)
        if h.requires_grad:
            grad_h = d_gates_h @ w_hh.data.T
            grad_h += grad * z
            h._accumulate(grad_h, owned=True)
        if w_ih.requires_grad:
            w_ih._accumulate(x.data.T @ d_gates, owned=True)
        if w_hh.requires_grad:
            w_hh._accumulate(h.data.T @ d_gates_h, owned=True)
        if b_ih.requires_grad:
            b_ih._accumulate(d_gates.sum(axis=0), owned=True)
        if b_hh.requires_grad:
            b_hh._accumulate(d_gates_h.sum(axis=0), owned=True)

    return Tensor._make(out_data, (x, h, w_ih, w_hh, b_ih, b_hh), backward)


def _sigmoid_into(x, out):
    """Branch-free sigmoid via ``0.5 * (1 + tanh(x/2))`` for the scans.

    Mathematically identical to :func:`_stable_sigmoid` and equally
    stable (tanh saturates cleanly), but four strided ufunc passes with
    no boolean fancy indexing — an order of magnitude cheaper on the
    small per-timestep gate slabs the scan loop touches.  The scan
    kernels are held to the step path by tolerance (not bit-identity),
    so they are free to use it; the per-step kernels keep
    ``_stable_sigmoid`` whose exact floats historical recordings pin.
    """
    np.multiply(x, 0.5, out=out)
    np.tanh(out, out=out)
    out += 1.0
    out *= 0.5
    return out


def _rowstable_matmul(a, b):
    """``a @ b`` computed in the BLAS row-stable regime (M >= 2).

    On this container's BLAS, a single-row float64 GEMM dispatches to a
    GEMV-shaped kernel whose accumulation order differs in the last bits
    from the GEMM used for M >= 2 rows, while every M >= 2 shape agrees
    row-for-row.  Padding the lone row keeps all callers — the fused
    scans' flattened input projection and the streaming single-step
    kernels — inside the same row-stable class, which is what makes
    streaming inference bit-identical to the full forward
    (tests/serve/test_streaming.py pins the contract).
    """
    if a.shape[0] == 1:
        padded = np.zeros((2, a.shape[1]), dtype=a.dtype)
        padded[0] = a[0]
        return np.matmul(padded, b)[:1]
    return np.matmul(a, b)


def _check_scan_lengths(lengths, batch, steps):
    """Validate per-row sequence lengths for the scan kernels."""
    if lengths is None:
        return None
    lengths = np.asarray(lengths, dtype=np.int64)
    if lengths.shape != (batch,):
        raise ValueError(
            f"lengths shape {lengths.shape} does not match batch {batch}")
    if lengths.size and (lengths.min() < 0 or lengths.max() > steps):
        raise ValueError(
            f"lengths must lie in [0, {steps}], got "
            f"[{lengths.min()}, {lengths.max()}]")
    return lengths


def _gru_scan_sample(rng):
    batch, steps, num_in, hidden = 2, 3, 3, 2

    def arrays():
        return (rng.normal(size=(batch, steps, num_in)),
                rng.normal(size=(batch, hidden)),
                rng.normal(size=(num_in, 3 * hidden)) * 0.5,
                rng.normal(size=(hidden, 3 * hidden)) * 0.5,
                rng.normal(size=3 * hidden) * 0.1,
                rng.normal(size=3 * hidden) * 0.1)

    ragged = np.array([1, 3])
    return [
        OpSample(lambda x, h, wi, wh, bi, bh: _sqsum(
            gru_scan(x, h, wi, wh, bi, bh)), *arrays()),
        OpSample(lambda x, h, wi, wh, bi, bh: _sqsum(
            gru_scan(x, h, wi, wh, bi, bh, lengths=ragged)), *arrays()),
        OpSample(lambda x, h, wi, wh, bi, bh: _sqsum(
            gru_scan(x, h, wi, wh, bi, bh, lengths=ragged,
                     return_sequences=False)), *arrays()),
    ]


@differentiable(_gru_scan_sample)
def gru_scan(x, h0, w_ih, w_hh, b_ih, b_hh, lengths=None,
             return_sequences=True):
    """Fused GRU over a whole ``(batch, steps, features)`` sequence.

    Extends the coarse-grained-op idiom of :func:`gru_step` from one
    timestep to the full scan: the input projection ``X @ W_ih`` for all
    timesteps runs as a single GEMM up front, the python loop touches
    only the small recurrent ``h @ W_hh`` product plus the elementwise
    gate tail (all via out= ufuncs into preallocated stacks), and the
    whole sequence records **one** graph node whose hand-derived backward
    replays the loop in reverse and then collapses the weight gradients
    into one big GEMM each.

    ``lengths`` (optional, ``(batch,)`` ints) gives each row's true
    sequence length: the loop runs only to ``lengths.max()`` and rows are
    *frozen* once exhausted — ``h_t = h_{t-1}`` for ``t >= lengths[i]``,
    so the final state equals the state at each row's last real step and
    padded timesteps cost nothing beyond the masked copy.  Gradients
    honour the same semantics: frozen steps contribute no gate gradients
    and pass the carried ``dh`` straight through.

    Returns ``(batch, steps, hidden)`` when ``return_sequences`` (frozen
    rows repeat their final state over the padded tail) else
    ``(batch, hidden)``.
    """
    x, h0 = as_tensor(x), as_tensor(h0)
    w_ih, w_hh = as_tensor(w_ih), as_tensor(w_hh)
    b_ih, b_hh = as_tensor(b_ih), as_tensor(b_hh)
    if x.data.ndim != 3:
        raise ValueError(f"gru_scan expects (batch, steps, features) input, "
                         f"got shape {x.shape}")
    batch, steps, num_in = x.shape
    hidden = h0.shape[-1]
    h2 = 2 * hidden
    if h0.shape != (batch, hidden) \
            or w_ih.shape != (num_in, 3 * hidden) \
            or w_hh.shape != (hidden, 3 * hidden):
        raise ValueError(
            f"gru_scan shapes do not line up: x {x.shape}, h0 {h0.shape}, "
            f"w_ih {w_ih.shape}, w_hh {w_hh.shape}")
    lengths = _check_scan_lengths(lengths, batch, steps)
    t_run = steps if lengths is None else (int(lengths.max())
                                           if lengths.size else 0)
    min_len = 0 if lengths is None else int(lengths.min())

    # One big GEMM for the input projection of every timestep.  The
    # time-major copy makes each per-step slice GX[t] contiguous and the
    # flattened 2-D view free.
    x_2d = np.ascontiguousarray(
        x.data[:, :t_run].swapaxes(0, 1)).reshape(t_run * batch, num_in)
    gx = _rowstable_matmul(x_2d, w_ih.data)
    gx += b_ih.data
    gx = gx.reshape(t_run, batch, 3 * hidden)
    dt = gx.dtype

    needs_grad = is_grad_enabled() and any(
        p.requires_grad for p in (x, h0, w_ih, w_hh, b_ih, b_hh))
    h_stack = np.empty((t_run + 1, batch, hidden), dtype=dt)
    h_stack[0] = h0.data
    if needs_grad:
        # One (B, 3H) activation slab per step: [z | r | n] post-gate.
        gact = np.empty((t_run, batch, 3 * hidden), dtype=dt)
        nhs = np.empty((t_run, batch, hidden), dtype=dt)
    else:
        scratch = np.empty((batch, 3 * hidden), dtype=dt)

    w_hh_d, b_hh_d = w_hh.data, b_hh.data
    gh = np.empty((batch, 3 * hidden), dtype=dt)
    tmp = np.empty((batch, hidden), dtype=dt)
    for t in range(t_run):
        h_prev = h_stack[t]
        h_new = h_stack[t + 1]
        g_act = gact[t] if needs_grad else scratch
        np.matmul(h_prev, w_hh_d, out=gh)
        gh += b_hh_d
        gt = gx[t]
        gt[:, :h2] += gh[:, :h2]
        _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])
        z = g_act[:, :hidden]
        r = g_act[:, hidden:h2]
        nh = gh[:, h2:]                      # h @ W_hh_n + b_hh_n
        if needs_grad:
            nhs[t] = nh
        n_pre = gt[:, h2:]
        np.multiply(r, nh, out=tmp)
        n_pre += tmp
        n = np.tanh(n_pre, out=g_act[:, h2:])
        np.subtract(h_prev, n, out=h_new)    # z*h + (1-z)*n
        h_new *= z
        h_new += n
        if lengths is not None and t >= min_len:
            frozen = lengths <= t
            h_new[frozen] = h_prev[frozen]

    if return_sequences:
        out_data = np.empty((batch, steps, hidden), dtype=dt)
        if t_run:
            out_data[:, :t_run] = h_stack[1:].swapaxes(0, 1)
        if t_run < steps:
            out_data[:, t_run:] = h_stack[t_run][:, None, :]
    else:
        out_data = h_stack[t_run].copy()

    def backward(grad):
        w_ih_d = w_ih.data
        if return_sequences:
            # Padded-tail slots all carry the frozen final state.
            dh = grad[:, t_run:].sum(axis=1)
        else:
            dh = grad.copy()
        dgx = np.empty((t_run, batch, 3 * hidden), dtype=dt)
        dgh = np.empty_like(dgx)
        om = np.empty((batch, hidden), dtype=dt)
        scr = np.empty_like(om)
        for t in range(t_run - 1, -1, -1):
            if return_sequences:
                dh += grad[:, t]
            g_act = gact[t]
            z = g_act[:, :hidden]
            r = g_act[:, hidden:h2]
            n = g_act[:, h2:]
            nh = nhs[t]
            h_prev = h_stack[t]
            dgx_t, dgh_t = dgx[t], dgh[t]
            d_z = dgx_t[:, :hidden]
            d_r = dgx_t[:, hidden:h2]
            d_n = dgx_t[:, h2:]
            np.subtract(1.0, z, out=om)              # 1 - z
            np.multiply(n, n, out=d_n)               # d_n_pre
            np.subtract(1.0, d_n, out=d_n)
            d_n *= dh
            d_n *= om
            np.subtract(h_prev, n, out=d_z)          # d_z_pre
            d_z *= dh
            d_z *= z
            d_z *= om
            np.subtract(1.0, r, out=om)              # buffer becomes 1-r
            np.multiply(d_n, nh, out=d_r)            # d_r_pre
            d_r *= r
            d_r *= om
            # h-side gates differ only in the candidate block (scaled by
            # the reset gate).
            dgh_t[:, :h2] = dgx_t[:, :h2]
            np.multiply(d_n, r, out=dgh_t[:, h2:])
            frozen = None
            if lengths is not None and t >= min_len:
                frozen = lengths <= t
                dgx_t[frozen] = 0.0
                dgh_t[frozen] = 0.0
            carry = dgh_t @ w_hh_d.T
            np.multiply(dh, z, out=scr)
            carry += scr
            if frozen is not None:
                carry[frozen] = dh[frozen]
            dh = carry
        dgx_2d = dgx.reshape(-1, 3 * hidden)
        dgh_2d = dgh.reshape(-1, 3 * hidden)
        if x.requires_grad:
            dx_tm = (dgx_2d @ w_ih_d.T).reshape(t_run, batch, num_in)
            if t_run == steps:
                grad_x = np.ascontiguousarray(dx_tm.swapaxes(0, 1))
            else:
                grad_x = np.zeros((batch, steps, num_in), dtype=dt)
                grad_x[:, :t_run] = dx_tm.swapaxes(0, 1)
            x._accumulate(grad_x, owned=True)
        if h0.requires_grad:
            h0._accumulate(dh, owned=True)
        if w_ih.requires_grad:
            w_ih._accumulate(x_2d.T @ dgx_2d, owned=True)
        if w_hh.requires_grad:
            h_prev_2d = h_stack[:t_run].reshape(-1, hidden)
            w_hh._accumulate(h_prev_2d.T @ dgh_2d, owned=True)
        if b_ih.requires_grad:
            b_ih._accumulate(dgx_2d.sum(axis=0), owned=True)
        if b_hh.requires_grad:
            b_hh._accumulate(dgh_2d.sum(axis=0), owned=True)

    return Tensor._make(out_data, (x, h0, w_ih, w_hh, b_ih, b_hh), backward)


def _lstm_scan_sample(rng):
    batch, steps, num_in, hidden = 2, 3, 3, 2

    def arrays():
        return (rng.normal(size=(batch, steps, num_in)),
                rng.normal(size=(batch, hidden)),
                rng.normal(size=(batch, hidden)),
                rng.normal(size=(num_in, 4 * hidden)) * 0.5,
                rng.normal(size=(hidden, 4 * hidden)) * 0.5,
                rng.normal(size=4 * hidden) * 0.1)

    ragged = np.array([2, 3])
    return [
        OpSample(lambda x, h, c, wi, wh, b: _sqsum(
            lstm_scan(x, h, c, wi, wh, b)), *arrays()),
        OpSample(lambda x, h, c, wi, wh, b: _sqsum(
            lstm_scan(x, h, c, wi, wh, b, lengths=ragged,
                      return_sequences=False)), *arrays()),
    ]


@differentiable(_lstm_scan_sample)
def lstm_scan(x, h0, c0, w_ih, w_hh, bias, lengths=None,
              return_sequences=True):
    """Fused LSTM over a whole sequence; see :func:`gru_scan`.

    Gate layout ``[input i | forget f | cell g | output o]`` with the
    single combined bias of :class:`~repro.nn.layers.LSTMCell`.  Frozen
    rows carry both ``h`` and ``c`` unchanged past their length, and the
    backward passes both ``dh`` and ``dc`` straight through those steps.
    Returns the hidden-state sequence (or final hidden state); the final
    cell state stays internal, as in the layer API.
    """
    x, h0, c0 = as_tensor(x), as_tensor(h0), as_tensor(c0)
    w_ih, w_hh, bias = as_tensor(w_ih), as_tensor(w_hh), as_tensor(bias)
    if x.data.ndim != 3:
        raise ValueError(f"lstm_scan expects (batch, steps, features) input, "
                         f"got shape {x.shape}")
    batch, steps, num_in = x.shape
    hidden = h0.shape[-1]
    h2, h3 = 2 * hidden, 3 * hidden
    if h0.shape != (batch, hidden) or c0.shape != (batch, hidden) \
            or w_ih.shape != (num_in, 4 * hidden) \
            or w_hh.shape != (hidden, 4 * hidden):
        raise ValueError(
            f"lstm_scan shapes do not line up: x {x.shape}, h0 {h0.shape}, "
            f"c0 {c0.shape}, w_ih {w_ih.shape}, w_hh {w_hh.shape}")
    lengths = _check_scan_lengths(lengths, batch, steps)
    t_run = steps if lengths is None else (int(lengths.max())
                                           if lengths.size else 0)
    min_len = 0 if lengths is None else int(lengths.min())

    x_2d = np.ascontiguousarray(
        x.data[:, :t_run].swapaxes(0, 1)).reshape(t_run * batch, num_in)
    gx = _rowstable_matmul(x_2d, w_ih.data)
    gx += bias.data
    gx = gx.reshape(t_run, batch, 4 * hidden)
    dt = gx.dtype

    needs_grad = is_grad_enabled() and any(
        p.requires_grad for p in (x, h0, c0, w_ih, w_hh, bias))
    h_stack = np.empty((t_run + 1, batch, hidden), dtype=dt)
    c_stack = np.empty_like(h_stack)
    h_stack[0] = h0.data
    c_stack[0] = c0.data
    if needs_grad:
        # One (B, 4H) activation slab per step: [i | f | g | o] post-gate.
        gact = np.empty((t_run, batch, 4 * hidden), dtype=dt)
        tcs = np.empty((t_run, batch, hidden), dtype=dt)
    else:
        scratch = np.empty((batch, 4 * hidden), dtype=dt)
        scratch_tc = np.empty((batch, hidden), dtype=dt)

    w_hh_d = w_hh.data
    gh = np.empty((batch, 4 * hidden), dtype=dt)
    tmp = np.empty((batch, hidden), dtype=dt)
    for t in range(t_run):
        h_prev, c_prev = h_stack[t], c_stack[t]
        h_new, c_new = h_stack[t + 1], c_stack[t + 1]
        g_act = gact[t] if needs_grad else scratch
        np.matmul(h_prev, w_hh_d, out=gh)
        gt = gx[t]
        gt += gh
        _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])       # i | f
        g = np.tanh(gt[:, h2:h3], out=g_act[:, h2:h3])
        o = _sigmoid_into(gt[:, h3:], out=g_act[:, h3:])
        i = g_act[:, :hidden]
        f = g_act[:, hidden:h2]
        np.multiply(f, c_prev, out=c_new)
        np.multiply(i, g, out=tmp)
        c_new += tmp
        tc = np.tanh(c_new, out=tcs[t] if needs_grad else scratch_tc)
        np.multiply(o, tc, out=h_new)
        if lengths is not None and t >= min_len:
            frozen = lengths <= t
            h_new[frozen] = h_prev[frozen]
            c_new[frozen] = c_prev[frozen]

    if return_sequences:
        out_data = np.empty((batch, steps, hidden), dtype=dt)
        if t_run:
            out_data[:, :t_run] = h_stack[1:].swapaxes(0, 1)
        if t_run < steps:
            out_data[:, t_run:] = h_stack[t_run][:, None, :]
    else:
        out_data = h_stack[t_run].copy()

    def backward(grad):
        w_ih_d = w_ih.data
        if return_sequences:
            dh = grad[:, t_run:].sum(axis=1)
        else:
            dh = grad.copy()
        dc = np.zeros((batch, hidden), dtype=dt)
        dg = np.empty((t_run, batch, 4 * hidden), dtype=dt)
        om = np.empty((batch, hidden), dtype=dt)
        scr = np.empty_like(om)
        for t in range(t_run - 1, -1, -1):
            if return_sequences:
                dh += grad[:, t]
            g_act = gact[t]
            i = g_act[:, :hidden]
            f = g_act[:, hidden:h2]
            g = g_act[:, h2:h3]
            o = g_act[:, h3:]
            tc = tcs[t]
            c_prev = c_stack[t]
            dg_t = dg[t]
            d_i = dg_t[:, :hidden]
            d_f = dg_t[:, hidden:h2]
            d_g = dg_t[:, h2:h3]
            d_o = dg_t[:, h3:]
            frozen = None
            if lengths is not None and t >= min_len:
                frozen = lengths <= t
            np.multiply(dh, tc, out=d_o)             # d_o_pre
            d_o *= o
            np.subtract(1.0, o, out=om)
            d_o *= om
            np.multiply(tc, tc, out=scr)             # dh -> dc via tanh(c)
            np.subtract(1.0, scr, out=scr)
            scr *= o
            scr *= dh
            if frozen is not None:
                scr[frozen] = 0.0                    # frozen: h_t not from c_t
            dc += scr
            np.multiply(dc, g, out=d_i)              # d_i_pre
            d_i *= i
            np.subtract(1.0, i, out=om)
            d_i *= om
            np.multiply(dc, c_prev, out=d_f)         # d_f_pre
            d_f *= f
            np.subtract(1.0, f, out=om)
            d_f *= om
            np.multiply(g, g, out=d_g)               # d_g_pre
            np.subtract(1.0, d_g, out=d_g)
            d_g *= dc
            d_g *= i
            if frozen is not None:
                dg_t[frozen] = 0.0
            carry = dg_t @ w_hh_d.T
            if frozen is not None:
                dc_frozen = dc[frozen].copy()
                dc *= f
                dc[frozen] = dc_frozen
                carry[frozen] = dh[frozen]
            else:
                dc *= f
            dh = carry
        dg_2d = dg.reshape(-1, 4 * hidden)
        if x.requires_grad:
            dx_tm = (dg_2d @ w_ih_d.T).reshape(t_run, batch, num_in)
            if t_run == steps:
                grad_x = np.ascontiguousarray(dx_tm.swapaxes(0, 1))
            else:
                grad_x = np.zeros((batch, steps, num_in), dtype=dt)
                grad_x[:, :t_run] = dx_tm.swapaxes(0, 1)
            x._accumulate(grad_x, owned=True)
        if h0.requires_grad:
            h0._accumulate(dh, owned=True)
        if c0.requires_grad:
            c0._accumulate(dc, owned=True)
        if w_ih.requires_grad:
            w_ih._accumulate(x_2d.T @ dg_2d, owned=True)
        if w_hh.requires_grad:
            h_prev_2d = h_stack[:t_run].reshape(-1, hidden)
            w_hh._accumulate(h_prev_2d.T @ dg_2d, owned=True)
        if bias.requires_grad:
            bias._accumulate(dg_2d.sum(axis=0), owned=True)

    return Tensor._make(out_data, (x, h0, c0, w_ih, w_hh, bias), backward)


def _grud_scan_sample(rng):
    batch, steps, channels, hidden = 2, 3, 3, 2
    mask = (rng.random(size=(batch, steps, channels)) < 0.6).astype(
        np.float64)

    def arrays():
        return (rng.normal(size=(batch, steps, channels)),
                np.abs(rng.normal(size=(batch, steps, channels))) + 0.5,
                rng.normal(size=(batch, hidden)),
                _away_from_zero(rng, (channels,)),
                rng.normal(size=(channels, hidden)) * 0.5,
                rng.normal(size=hidden) * 0.1,
                rng.normal(size=(2 * channels, 3 * hidden)) * 0.5,
                rng.normal(size=(hidden, 3 * hidden)) * 0.5,
                rng.normal(size=3 * hidden) * 0.1,
                rng.normal(size=3 * hidden) * 0.1)

    ragged = np.array([1, 3])
    return [
        OpSample(lambda v, d, h, wd, whd, bhd, wi, wh, bi, bh: _sqsum(
            grud_scan(v, mask, d, h, wd, whd, bhd, wi, wh, bi, bh)),
            *arrays()),
        OpSample(lambda v, d, h, wd, whd, bhd, wi, wh, bi, bh: _sqsum(
            grud_scan(v, mask, d, h, wd, whd, bhd, wi, wh, bi, bh,
                      lengths=ragged, return_sequences=True)),
            *arrays()),
    ]


@differentiable(_grud_scan_sample)
def grud_scan(values, mask, deltas, h0, input_decay, hidden_decay_w,
              hidden_decay_b, w_ih, w_hh, b_ih, b_hh, lengths=None,
              return_sequences=False):
    """Fused GRU-D over a whole sequence; see :func:`gru_scan`.

    The decay-augmented recurrence of :class:`repro.baselines.GRUD`
    (Che et al. 2018) as one graph node: every input-side projection —
    the elementwise input decay ``γ_x = exp(-relu(δ ⊙ w))``, the imputed
    ``x̂ = (m + (1-m) γ_x) ⊙ v``, the hidden-decay GEMM
    ``γ_h = exp(-relu(δ W_h + b_h))`` and the gate projection
    ``[x̂ ; m] @ W_ih`` — is hoisted out of the time loop into batched
    ``(T*B, ·)`` computations, leaving only the per-step recurrent GEMM
    on the decayed state ``γ_h(t) ⊙ h_{t-1}`` plus the out=-buffered
    gate tail inside the loop.  One hand-derived backward walks the
    sequence once in reverse filling per-step gate/decay delta stacks,
    then collapses every weight gradient into a single GEMM.

    ``mask`` is the 0/1 observation indicator and is a **constant**
    (non-differentiated) input, exactly as in the reference model where
    it enters as data.  ``lengths`` freezes finished rows as in
    :func:`gru_scan`.  Returns the final hidden state ``(batch, hidden)``
    by default (the model's head consumes only ``h_T``), or the full
    ``(batch, steps, hidden)`` trajectory with ``return_sequences``.
    """
    values, deltas, h0 = as_tensor(values), as_tensor(deltas), as_tensor(h0)
    input_decay = as_tensor(input_decay)
    hidden_decay_w = as_tensor(hidden_decay_w)
    hidden_decay_b = as_tensor(hidden_decay_b)
    w_ih, w_hh = as_tensor(w_ih), as_tensor(w_hh)
    b_ih, b_hh = as_tensor(b_ih), as_tensor(b_hh)
    if values.data.ndim != 3:
        raise ValueError(f"grud_scan expects (batch, steps, features) "
                         f"values, got shape {values.shape}")
    batch, steps, channels = values.shape
    hidden = h0.shape[-1]
    h2 = 2 * hidden
    mask_data = np.asarray(getattr(mask, "data", mask))
    if mask_data.shape != (batch, steps, channels) \
            or deltas.shape != (batch, steps, channels):
        raise ValueError(
            f"grud_scan mask/deltas shapes {mask_data.shape}/{deltas.shape} "
            f"do not match values {values.shape}")
    if h0.shape != (batch, hidden) \
            or input_decay.shape != (channels,) \
            or hidden_decay_w.shape != (channels, hidden) \
            or w_ih.shape != (2 * channels, 3 * hidden) \
            or w_hh.shape != (hidden, 3 * hidden):
        raise ValueError(
            f"grud_scan shapes do not line up: values {values.shape}, "
            f"h0 {h0.shape}, input_decay {input_decay.shape}, "
            f"hidden_decay_w {hidden_decay_w.shape}, w_ih {w_ih.shape}, "
            f"w_hh {w_hh.shape}")
    lengths = _check_scan_lengths(lengths, batch, steps)
    t_run = steps if lengths is None else (int(lengths.max())
                                           if lengths.size else 0)
    min_len = 0 if lengths is None else int(lengths.min())
    dt = np.result_type(values.data, w_ih.data)

    # Hoisted input plane, all time-major: input decay, imputation, the
    # hidden-decay GEMM, and the gate projection of every timestep.
    v_tm = np.ascontiguousarray(values.data[:, :t_run].swapaxes(0, 1))
    d_tm = np.ascontiguousarray(deltas.data[:, :t_run].swapaxes(0, 1))
    m_tm = mask_data[:, :t_run].swapaxes(0, 1).astype(dt)
    gamma_x = d_tm * input_decay.data            # pre-activation ...
    np.maximum(gamma_x, 0.0, out=gamma_x)        # ... -> relu ...
    np.negative(gamma_x, out=gamma_x)
    np.exp(gamma_x, out=gamma_x)                 # ... -> decay (T, B, C)
    xm = np.empty((t_run, batch, 2 * channels), dtype=dt)
    x_hat = xm[..., :channels]
    np.subtract(1.0, m_tm, out=x_hat)            # (m + (1-m) γ_x) ⊙ v
    x_hat *= gamma_x
    x_hat += m_tm
    x_hat *= v_tm
    xm[..., channels:] = m_tm
    d_2d = d_tm.reshape(t_run * batch, channels)
    ph = _rowstable_matmul(d_2d, hidden_decay_w.data)
    ph += hidden_decay_b.data                    # pre-relu, kept for bwd
    gamma_h = np.maximum(ph, 0.0)
    np.negative(gamma_h, out=gamma_h)
    np.exp(gamma_h, out=gamma_h)
    gamma_h = gamma_h.reshape(t_run, batch, hidden)
    xm_2d = xm.reshape(t_run * batch, 2 * channels)
    gx = _rowstable_matmul(xm_2d, w_ih.data)
    gx += b_ih.data
    gx = gx.reshape(t_run, batch, 3 * hidden)

    needs_grad = is_grad_enabled() and any(
        p.requires_grad for p in (values, deltas, h0, input_decay,
                                  hidden_decay_w, hidden_decay_b,
                                  w_ih, w_hh, b_ih, b_hh))
    h_stack = np.empty((t_run + 1, batch, hidden), dtype=dt)
    h_stack[0] = h0.data
    if needs_grad:
        gact = np.empty((t_run, batch, 3 * hidden), dtype=dt)
        nhs = np.empty((t_run, batch, hidden), dtype=dt)
    else:
        scratch = np.empty((batch, 3 * hidden), dtype=dt)

    w_hh_d, b_hh_d = w_hh.data, b_hh.data
    gh = np.empty((batch, 3 * hidden), dtype=dt)
    tmp = np.empty((batch, hidden), dtype=dt)
    heff = np.empty((batch, hidden), dtype=dt)
    for t in range(t_run):
        h_prev = h_stack[t]
        h_new = h_stack[t + 1]
        g_act = gact[t] if needs_grad else scratch
        np.multiply(gamma_h[t], h_prev, out=heff)
        np.matmul(heff, w_hh_d, out=gh)
        gh += b_hh_d
        gt = gx[t]
        gt[:, :h2] += gh[:, :h2]
        _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])
        z = g_act[:, :hidden]
        r = g_act[:, hidden:h2]
        nh = gh[:, h2:]
        if needs_grad:
            nhs[t] = nh
        n_pre = gt[:, h2:]
        np.multiply(r, nh, out=tmp)
        n_pre += tmp
        n = np.tanh(n_pre, out=g_act[:, h2:])
        np.subtract(heff, n, out=h_new)          # z*γ_h h + (1-z)*n
        h_new *= z
        h_new += n
        if lengths is not None and t >= min_len:
            frozen = lengths <= t
            h_new[frozen] = h_prev[frozen]

    if return_sequences:
        out_data = np.empty((batch, steps, hidden), dtype=dt)
        if t_run:
            out_data[:, :t_run] = h_stack[1:].swapaxes(0, 1)
        if t_run < steps:
            out_data[:, t_run:] = h_stack[t_run][:, None, :]
    else:
        out_data = h_stack[t_run].copy()

    def backward(grad):
        if return_sequences:
            dh = grad[:, t_run:].sum(axis=1)
        else:
            dh = grad.copy()
        dgx = np.empty((t_run, batch, 3 * hidden), dtype=dt)
        dgh = np.empty_like(dgx)
        dgamma_h = np.empty((t_run, batch, hidden), dtype=dt)
        om = np.empty((batch, hidden), dtype=dt)
        scr = np.empty_like(om)
        heff_t = np.empty_like(om)
        for t in range(t_run - 1, -1, -1):
            if return_sequences:
                dh += grad[:, t]
            g_act = gact[t]
            z = g_act[:, :hidden]
            r = g_act[:, hidden:h2]
            n = g_act[:, h2:]
            nh = nhs[t]
            h_prev = h_stack[t]
            np.multiply(gamma_h[t], h_prev, out=heff_t)
            dgx_t, dgh_t = dgx[t], dgh[t]
            d_z = dgx_t[:, :hidden]
            d_r = dgx_t[:, hidden:h2]
            d_n = dgx_t[:, h2:]
            np.subtract(1.0, z, out=om)              # 1 - z
            np.multiply(n, n, out=d_n)               # d_n_pre
            np.subtract(1.0, d_n, out=d_n)
            d_n *= dh
            d_n *= om
            np.subtract(heff_t, n, out=d_z)          # d_z_pre
            d_z *= dh
            d_z *= z
            d_z *= om
            np.subtract(1.0, r, out=om)              # buffer becomes 1-r
            np.multiply(d_n, nh, out=d_r)            # d_r_pre
            d_r *= r
            d_r *= om
            dgh_t[:, :h2] = dgx_t[:, :h2]
            np.multiply(d_n, r, out=dgh_t[:, h2:])
            frozen = None
            if lengths is not None and t >= min_len:
                frozen = lengths <= t
                dgx_t[frozen] = 0.0
                dgh_t[frozen] = 0.0
            carry = dgh_t @ w_hh_d.T                 # d(γ_h ⊙ h_prev)
            np.multiply(dh, z, out=scr)
            carry += scr
            if frozen is not None:
                carry[frozen] = 0.0
            np.multiply(carry, h_prev, out=dgamma_h[t])
            carry *= gamma_h[t]
            if frozen is not None:
                carry[frozen] = dh[frozen]
            dh = carry
        dgx_2d = dgx.reshape(-1, 3 * hidden)
        dgh_2d = dgh.reshape(-1, 3 * hidden)
        x_side = (values.requires_grad or deltas.requires_grad
                  or input_decay.requires_grad)
        if x_side:
            dxhat = (dgx_2d @ w_ih.data.T)[:, :channels].reshape(
                t_run, batch, channels)
        grad_v = None
        if values.requires_grad:
            coef = np.subtract(1.0, m_tm)            # m + (1-m) γ_x
            coef *= gamma_x
            coef += m_tm
            coef *= dxhat                            # becomes dv (T,B,C)
            grad_v = coef
        grad_d = None
        if deltas.requires_grad or input_decay.requires_grad:
            dpx = np.subtract(1.0, m_tm)             # d γ_x
            dpx *= v_tm
            dpx *= dxhat
            dpx *= gamma_x                           # chain exp(-relu(·))
            np.negative(dpx, out=dpx)
            dpx *= (d_tm * input_decay.data) > 0
            if input_decay.requires_grad:
                input_decay._accumulate(
                    (d_tm * dpx).sum(axis=(0, 1)), owned=True)
            if deltas.requires_grad:
                grad_d = dpx * input_decay.data
        if deltas.requires_grad or hidden_decay_w.requires_grad \
                or hidden_decay_b.requires_grad:
            dph = dgamma_h.reshape(t_run * batch, hidden)
            dph *= gamma_h.reshape(t_run * batch, hidden)
            np.negative(dph, out=dph)
            dph *= ph > 0
            if hidden_decay_w.requires_grad:
                hidden_decay_w._accumulate(d_2d.T @ dph, owned=True)
            if hidden_decay_b.requires_grad:
                hidden_decay_b._accumulate(dph.sum(axis=0), owned=True)
            if deltas.requires_grad:
                dd_h = (dph @ hidden_decay_w.data.T).reshape(
                    t_run, batch, channels)
                if grad_d is None:
                    grad_d = dd_h
                else:
                    grad_d += dd_h

        def scatter_bt(g_tm):
            if t_run == steps:
                return np.ascontiguousarray(g_tm.swapaxes(0, 1))
            full = np.zeros((batch, steps, channels), dtype=dt)
            full[:, :t_run] = g_tm.swapaxes(0, 1)
            return full

        if values.requires_grad:
            values._accumulate(scatter_bt(grad_v), owned=True)
        if deltas.requires_grad:
            deltas._accumulate(scatter_bt(grad_d), owned=True)
        if h0.requires_grad:
            h0._accumulate(dh, owned=True)
        if w_ih.requires_grad:
            w_ih._accumulate(xm_2d.T @ dgx_2d, owned=True)
        if w_hh.requires_grad:
            heff_2d = (gamma_h * h_stack[:t_run]).reshape(-1, hidden)
            w_hh._accumulate(heff_2d.T @ dgh_2d, owned=True)
        if b_ih.requires_grad:
            b_ih._accumulate(dgx_2d.sum(axis=0), owned=True)
        if b_hh.requires_grad:
            b_hh._accumulate(dgh_2d.sum(axis=0), owned=True)

    return Tensor._make(
        out_data,
        (values, deltas, h0, input_decay, hidden_decay_w, hidden_decay_b,
         w_ih, w_hh, b_ih, b_hh), backward)


def _stagenet_scan_sample(rng):
    batch, steps, channels, hidden = 2, 3, 3, 2

    def arrays():
        return (rng.normal(size=(batch, steps, channels)),
                rng.normal(size=(batch, hidden)),
                rng.normal(size=(batch, hidden)),
                rng.normal(size=(channels, 4 * hidden)) * 0.5,
                rng.normal(size=(hidden, 4 * hidden)) * 0.5,
                rng.normal(size=4 * hidden) * 0.1,
                rng.normal(size=(hidden + channels, 1)) * 0.5,
                rng.normal(size=1) * 0.1)

    ragged = np.array([2, 3])
    return [
        OpSample(lambda x, h, c, wi, wh, b, sw, sb: _sqsum(
            stagenet_scan(x, h, c, wi, wh, b, sw, sb)), *arrays()),
        OpSample(lambda x, h, c, wi, wh, b, sw, sb: _sqsum(
            stagenet_scan(x, h, c, wi, wh, b, sw, sb, lengths=ragged,
                          return_sequences=False)), *arrays()),
    ]


@differentiable(_stagenet_scan_sample)
def stagenet_scan(x, h0, c0, w_ih, w_hh, bias, stage_weight, stage_bias,
                  lengths=None, return_sequences=True):
    """Fused stage-aware LSTM over a whole sequence; see :func:`lstm_scan`.

    The :class:`repro.baselines.StageNet` recurrence (Gao et al. 2020)
    as one graph node: an LSTM step followed by a scalar stage-
    progression gate ``s_t = σ(h_t W_sh + x_t W_sx + b_s)`` that
    re-calibrates the cell state, ``c_t = s_t ⊙ (f c_{t-1} + i g)``.
    ``stage_weight`` is the stacked ``(hidden + features, 1)`` kernel of
    the model's stage Dense layer (hidden rows first); its input-side
    slice joins the gate projection in the hoisted pre-loop GEMMs, so
    the loop touches only the recurrent GEMM, the ``(B, 1)`` stage
    product, and the out=-buffered elementwise tail.  Returns the hidden
    trajectory ``(batch, steps, hidden)`` (the conv/attention head reads
    all of it) or the final hidden state with ``return_sequences=False``.
    """
    x, h0, c0 = as_tensor(x), as_tensor(h0), as_tensor(c0)
    w_ih, w_hh, bias = as_tensor(w_ih), as_tensor(w_hh), as_tensor(bias)
    stage_weight = as_tensor(stage_weight)
    stage_bias = as_tensor(stage_bias)
    if x.data.ndim != 3:
        raise ValueError(f"stagenet_scan expects (batch, steps, features) "
                         f"input, got shape {x.shape}")
    batch, steps, num_in = x.shape
    hidden = h0.shape[-1]
    h2, h3 = 2 * hidden, 3 * hidden
    if h0.shape != (batch, hidden) or c0.shape != (batch, hidden) \
            or w_ih.shape != (num_in, 4 * hidden) \
            or w_hh.shape != (hidden, 4 * hidden) \
            or stage_weight.shape != (hidden + num_in, 1):
        raise ValueError(
            f"stagenet_scan shapes do not line up: x {x.shape}, "
            f"h0 {h0.shape}, c0 {c0.shape}, w_ih {w_ih.shape}, "
            f"w_hh {w_hh.shape}, stage_weight {stage_weight.shape}")
    lengths = _check_scan_lengths(lengths, batch, steps)
    t_run = steps if lengths is None else (int(lengths.max())
                                           if lengths.size else 0)
    min_len = 0 if lengths is None else int(lengths.min())

    w_sh = stage_weight.data[:hidden]
    w_sx = stage_weight.data[hidden:]
    x_2d = np.ascontiguousarray(
        x.data[:, :t_run].swapaxes(0, 1)).reshape(t_run * batch, num_in)
    gx = _rowstable_matmul(x_2d, w_ih.data)
    gx += bias.data
    gx = gx.reshape(t_run, batch, 4 * hidden)
    sx = _rowstable_matmul(x_2d, w_sx)
    sx += stage_bias.data
    sx = sx.reshape(t_run, batch, 1)
    dt = gx.dtype

    needs_grad = is_grad_enabled() and any(
        p.requires_grad for p in (x, h0, c0, w_ih, w_hh, bias,
                                  stage_weight, stage_bias))
    h_stack = np.empty((t_run + 1, batch, hidden), dtype=dt)
    c_stack = np.empty_like(h_stack)
    h_stack[0] = h0.data
    c_stack[0] = c0.data
    if needs_grad:
        gact = np.empty((t_run, batch, 4 * hidden), dtype=dt)
        tcs = np.empty((t_run, batch, hidden), dtype=dt)
        cmid = np.empty((t_run, batch, hidden), dtype=dt)
        s_stack = np.empty((t_run, batch, 1), dtype=dt)
    else:
        scratch = np.empty((batch, 4 * hidden), dtype=dt)
        scratch_tc = np.empty((batch, hidden), dtype=dt)
        scratch_cm = np.empty((batch, hidden), dtype=dt)
        scratch_s = np.empty((batch, 1), dtype=dt)

    w_hh_d = w_hh.data
    gh = np.empty((batch, 4 * hidden), dtype=dt)
    tmp = np.empty((batch, hidden), dtype=dt)
    pbuf = np.empty((batch, 1), dtype=dt)
    for t in range(t_run):
        h_prev, c_prev = h_stack[t], c_stack[t]
        h_new, c_new = h_stack[t + 1], c_stack[t + 1]
        g_act = gact[t] if needs_grad else scratch
        np.matmul(h_prev, w_hh_d, out=gh)
        gt = gx[t]
        gt += gh
        _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])       # i | f
        g = np.tanh(gt[:, h2:h3], out=g_act[:, h2:h3])
        o = _sigmoid_into(gt[:, h3:], out=g_act[:, h3:])
        i = g_act[:, :hidden]
        f = g_act[:, hidden:h2]
        c_mid = cmid[t] if needs_grad else scratch_cm
        np.multiply(f, c_prev, out=c_mid)
        np.multiply(i, g, out=tmp)
        c_mid += tmp
        tc = np.tanh(c_mid, out=tcs[t] if needs_grad else scratch_tc)
        np.multiply(o, tc, out=h_new)
        np.matmul(h_new, w_sh, out=pbuf)                   # stage gate
        pbuf += sx[t]
        s = _sigmoid_into(pbuf, out=s_stack[t] if needs_grad
                          else scratch_s)
        np.multiply(s, c_mid, out=c_new)                   # re-calibrate
        if lengths is not None and t >= min_len:
            frozen = lengths <= t
            h_new[frozen] = h_prev[frozen]
            c_new[frozen] = c_prev[frozen]

    if return_sequences:
        out_data = np.empty((batch, steps, hidden), dtype=dt)
        if t_run:
            out_data[:, :t_run] = h_stack[1:].swapaxes(0, 1)
        if t_run < steps:
            out_data[:, t_run:] = h_stack[t_run][:, None, :]
    else:
        out_data = h_stack[t_run].copy()

    def backward(grad):
        if return_sequences:
            dh = grad[:, t_run:].sum(axis=1)
        else:
            dh = grad.copy()
        dc = np.zeros((batch, hidden), dtype=dt)
        dg = np.empty((t_run, batch, 4 * hidden), dtype=dt)
        dp = np.empty((t_run, batch, 1), dtype=dt)
        om = np.empty((batch, hidden), dtype=dt)
        scr = np.empty_like(om)
        dcm = np.empty_like(om)
        for t in range(t_run - 1, -1, -1):
            if return_sequences:
                dh += grad[:, t]
            g_act = gact[t]
            i = g_act[:, :hidden]
            f = g_act[:, hidden:h2]
            g = g_act[:, h2:h3]
            o = g_act[:, h3:]
            tc = tcs[t]
            c_mid = cmid[t]
            s = s_stack[t]
            c_prev = c_stack[t]
            dg_t, dp_t = dg[t], dp[t]
            d_i = dg_t[:, :hidden]
            d_f = dg_t[:, hidden:h2]
            d_g = dg_t[:, h2:h3]
            d_o = dg_t[:, h3:]
            frozen = None
            if lengths is not None and t >= min_len:
                frozen = lengths <= t
            # Stage gate: c_t = s ⊙ c_mid with s = σ(h_t W_sh + sx).
            np.multiply(dc, c_mid, out=scr)
            ds = scr.sum(axis=-1, keepdims=True)
            np.subtract(1.0, s, out=dp_t)            # d p = ds·s·(1-s)
            dp_t *= s
            dp_t *= ds
            np.multiply(dc, s, out=dcm)              # d c_mid (stage leg)
            dh_tot = dp_t @ w_sh.T                   # h_t feeds the gate
            dh_tot += dh
            np.multiply(dh_tot, tc, out=d_o)         # d_o_pre
            d_o *= o
            np.subtract(1.0, o, out=om)
            d_o *= om
            np.multiply(tc, tc, out=scr)             # dh -> dc via tanh
            np.subtract(1.0, scr, out=scr)
            scr *= o
            scr *= dh_tot
            dcm += scr
            np.multiply(dcm, g, out=d_i)             # d_i_pre
            d_i *= i
            np.subtract(1.0, i, out=om)
            d_i *= om
            np.multiply(dcm, c_prev, out=d_f)        # d_f_pre
            d_f *= f
            np.subtract(1.0, f, out=om)
            d_f *= om
            np.multiply(g, g, out=d_g)               # d_g_pre
            np.subtract(1.0, d_g, out=d_g)
            d_g *= dcm
            d_g *= i
            if frozen is not None:
                dg_t[frozen] = 0.0
                dp_t[frozen] = 0.0
            carry = dg_t @ w_hh_d.T
            dc_next = np.multiply(dcm, f)
            if frozen is not None:
                carry[frozen] = dh[frozen]
                dc_next[frozen] = dc[frozen]
            dh = carry
            dc = dc_next
        dg_2d = dg.reshape(-1, 4 * hidden)
        dp_2d = dp.reshape(-1, 1)
        if x.requires_grad:
            dx_2d = dg_2d @ w_ih.data.T
            dx_2d += dp_2d @ w_sx.T
            dx_tm = dx_2d.reshape(t_run, batch, num_in)
            if t_run == steps:
                grad_x = np.ascontiguousarray(dx_tm.swapaxes(0, 1))
            else:
                grad_x = np.zeros((batch, steps, num_in), dtype=dt)
                grad_x[:, :t_run] = dx_tm.swapaxes(0, 1)
            x._accumulate(grad_x, owned=True)
        if h0.requires_grad:
            h0._accumulate(dh, owned=True)
        if c0.requires_grad:
            c0._accumulate(dc, owned=True)
        if w_ih.requires_grad:
            w_ih._accumulate(x_2d.T @ dg_2d, owned=True)
        if w_hh.requires_grad:
            h_prev_2d = h_stack[:t_run].reshape(-1, hidden)
            w_hh._accumulate(h_prev_2d.T @ dg_2d, owned=True)
        if bias.requires_grad:
            bias._accumulate(dg_2d.sum(axis=0), owned=True)
        if stage_weight.requires_grad:
            h_out_2d = h_stack[1:].reshape(-1, hidden)
            stage_weight._accumulate(np.concatenate(
                [h_out_2d.T @ dp_2d, x_2d.T @ dp_2d], axis=0), owned=True)
        if stage_bias.requires_grad:
            stage_bias._accumulate(dp_2d.sum(axis=0), owned=True)

    return Tensor._make(
        out_data, (x, h0, c0, w_ih, w_hh, bias, stage_weight, stage_bias),
        backward)


def gru_scan_step(x_t, h, w_ih, w_hh, b_ih, b_hh):
    """One inference-only GRU step, bit-identical to a :func:`gru_scan` step.

    Operates on plain arrays (no tensors, no graph, no backward): ``x_t``
    is ``(batch, features)``, ``h`` is ``(batch, hidden)``; returns the
    new hidden state.  The body replays exactly the scan loop's ufunc
    tail and runs the input projection through :func:`_rowstable_matmul`
    — the same row-stable GEMM class as the scan's flattened projection
    — so feeding a sequence one step at a time reproduces ``gru_scan``
    bit-for-bit at every prefix.  That equality is the streaming
    inference contract (:class:`repro.serve.StreamingSession`); it holds
    per batch width, i.e. a streaming session of ``n`` admissions
    matches a full forward over those same ``n`` rows.
    """
    hidden = h.shape[-1]
    h2 = 2 * hidden
    gh = np.matmul(h, w_hh)
    gh += b_hh
    gt = _rowstable_matmul(x_t, w_ih)
    gt += b_ih
    gt[:, :h2] += gh[:, :h2]
    g_act = np.empty_like(gt)
    _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])
    z = g_act[:, :hidden]
    r = g_act[:, hidden:h2]
    nh = gh[:, h2:]                          # h @ W_hh_n + b_hh_n
    n_pre = gt[:, h2:]
    n_pre += np.multiply(r, nh)
    n = np.tanh(n_pre, out=g_act[:, h2:])
    h_new = np.subtract(h, n)                # z*h + (1-z)*n
    h_new *= z
    h_new += n
    return h_new


def lstm_scan_step(x_t, h, c, w_ih, w_hh, bias):
    """One inference-only LSTM step, bit-identical to a :func:`lstm_scan`
    step; see :func:`gru_scan_step`.  Returns ``(h_new, c_new)``.
    """
    hidden = h.shape[-1]
    h2, h3 = 2 * hidden, 3 * hidden
    gh = np.matmul(h, w_hh)
    gt = _rowstable_matmul(x_t, w_ih)
    gt += bias
    gt += gh
    g_act = np.empty_like(gt)
    _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])       # i | f
    g = np.tanh(gt[:, h2:h3], out=g_act[:, h2:h3])
    o = _sigmoid_into(gt[:, h3:], out=g_act[:, h3:])
    i = g_act[:, :hidden]
    f = g_act[:, hidden:h2]
    c_new = np.multiply(f, c)
    c_new += np.multiply(i, g)
    tc = np.tanh(c_new)
    h_new = np.multiply(o, tc)
    return h_new, c_new


def grud_scan_step(values_t, mask_t, deltas_t, h, input_decay,
                   hidden_decay_w, hidden_decay_b, w_ih, w_hh, b_ih, b_hh):
    """One inference-only GRU-D step, bit-identical to a :func:`grud_scan`
    step; see :func:`gru_scan_step`.  All inputs are plain arrays;
    ``mask_t`` must already be in the compute dtype.  Returns the new
    hidden state.
    """
    channels = values_t.shape[-1]
    hidden = h.shape[-1]
    h2 = 2 * hidden
    gamma_x = deltas_t * input_decay
    np.maximum(gamma_x, 0.0, out=gamma_x)
    np.negative(gamma_x, out=gamma_x)
    np.exp(gamma_x, out=gamma_x)
    xm = np.empty((values_t.shape[0], 2 * channels), dtype=gamma_x.dtype)
    x_hat = xm[:, :channels]
    np.subtract(1.0, mask_t, out=x_hat)          # (m + (1-m) γ_x) ⊙ v
    x_hat *= gamma_x
    x_hat += mask_t
    x_hat *= values_t
    xm[:, channels:] = mask_t
    ph = _rowstable_matmul(deltas_t, hidden_decay_w)
    ph += hidden_decay_b
    np.maximum(ph, 0.0, out=ph)
    np.negative(ph, out=ph)
    gamma_h = np.exp(ph, out=ph)
    heff = np.multiply(gamma_h, h)
    gh = np.matmul(heff, w_hh)
    gh += b_hh
    gt = _rowstable_matmul(xm, w_ih)
    gt += b_ih
    gt[:, :h2] += gh[:, :h2]
    g_act = np.empty_like(gt)
    _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])
    z = g_act[:, :hidden]
    r = g_act[:, hidden:h2]
    nh = gh[:, h2:]
    n_pre = gt[:, h2:]
    n_pre += np.multiply(r, nh)
    n = np.tanh(n_pre, out=g_act[:, h2:])
    h_new = np.subtract(heff, n)                 # z*γ_h h + (1-z)*n
    h_new *= z
    h_new += n
    return h_new


def stagenet_scan_step(x_t, h, c, w_ih, w_hh, bias, stage_weight,
                       stage_bias):
    """One inference-only StageNet step, bit-identical to a
    :func:`stagenet_scan` step; see :func:`gru_scan_step`.  Returns
    ``(h_new, c_new)`` where ``c_new`` is the stage-recalibrated cell.
    """
    hidden = h.shape[-1]
    h2, h3 = 2 * hidden, 3 * hidden
    w_sh = stage_weight[:hidden]
    w_sx = stage_weight[hidden:]
    gh = np.matmul(h, w_hh)
    gt = _rowstable_matmul(x_t, w_ih)
    gt += bias
    gt += gh
    g_act = np.empty_like(gt)
    _sigmoid_into(gt[:, :h2], out=g_act[:, :h2])       # i | f
    g = np.tanh(gt[:, h2:h3], out=g_act[:, h2:h3])
    o = _sigmoid_into(gt[:, h3:], out=g_act[:, h3:])
    i = g_act[:, :hidden]
    f = g_act[:, hidden:h2]
    c_mid = np.multiply(f, c)
    c_mid += np.multiply(i, g)
    tc = np.tanh(c_mid)
    h_new = np.multiply(o, tc)
    p = np.matmul(h_new, w_sh)                         # stage gate
    sxt = _rowstable_matmul(x_t, w_sx)
    sxt += stage_bias
    p += sxt
    s = _sigmoid_into(p, out=p)
    c_new = np.multiply(s, c_mid)
    return h_new, c_new


def linear_rows(x_t, weight, bias=None):
    """Inference-only affine projection of one timestep slice.

    ``x_t`` is a plain ``(batch, features)`` array; returns
    ``x_t @ weight (+ bias)`` through :func:`_rowstable_matmul`, the
    same row-stable GEMM class as a batched ``(B, T, F) @ (F, M)``
    projection over a multi-step sequence.  Row ``b`` of the result is
    therefore bit-identical to row ``(b, t)`` of the full-sequence
    projection whenever ``T >= 2`` — which is what lets the incremental
    streaming paths (RETAIN's visit embedding, SAnD's input embedding)
    cache per-step projections instead of re-embedding the whole prefix
    every step.  The lone exception is the ``T == 1`` prefix, whose
    full-sequence projection runs in the GEMV regime; streaming models
    serve that prefix via the exact full forward instead.
    """
    out = _rowstable_matmul(x_t, weight)
    if bias is not None:
        out += bias
    return out


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------

@differentiable(lambda rng: [
    # a freshly seeded generator inside the build keeps the mask identical
    # across the repeated evaluations of finite differencing
    OpSample(lambda a: sum(dropout_mask(a, 0.4, np.random.default_rng(3))),
             rng.normal(size=(4, 5))),
])
def dropout_mask(a, rate, rng):
    """Apply inverted dropout with drop probability ``rate``.

    The binary mask is sampled from ``rng`` and treated as a constant.
    """
    a = as_tensor(a)
    if rate <= 0.0:
        return a
    keep = 1.0 - rate
    # astype + in-place divide keeps the mask (and the gradients through
    # it) in the policy dtype; bool / python-float would give float64.
    mask = (rng.random(a.shape) < keep).astype(a.data.dtype)
    mask /= keep

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask, owned=True)

    return Tensor._make(a.data * mask, (a,), backward)


@differentiable(lambda rng: [
    OpSample(lambda t: _sqsum(embedding_lookup(t, np.array([[0, 1], [2, 0]]))),
             rng.normal(size=(3, 5))),
    OpSample(lambda t: sum(embedding_lookup(t, np.array([1, 1, 1]))),
             rng.normal(size=(2, 4))),
])
def embedding_lookup(table, indices):
    """Gather rows of a 2-D embedding ``table`` by integer ``indices``."""
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad):
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1),
                      grad.reshape(-1, table.shape[-1]))
            table._accumulate(full, owned=True)

    return Tensor._make(out_data, (table,), backward)
