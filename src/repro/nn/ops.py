"""Differentiable primitive operations for :class:`repro.nn.Tensor`.

Every function takes tensors (or array-likes, which are promoted) and
returns a new tensor wired into the computation graph.  The backward
closures follow a single convention: they receive the gradient of the loss
w.r.t. the op output and accumulate gradients into each parent that
requires them, using :func:`repro.nn.tensor.unbroadcast` to undo numpy
broadcasting.
"""

from __future__ import annotations

import builtins

import numpy as np

from .tensor import Tensor, as_tensor, unbroadcast

__all__ = [
    "add", "sub", "mul", "div", "neg", "power", "matmul", "exp", "log",
    "sqrt", "tanh", "sigmoid", "relu", "leaky_relu", "clip", "abs",
    "maximum", "minimum", "sum", "mean", "max", "min", "var",
    "reshape", "transpose", "swapaxes", "getitem", "concat", "stack",
    "split", "softmax", "log_softmax", "where", "dropout_mask", "pad_last",
    "outer_last", "embedding_lookup",
]


# ----------------------------------------------------------------------
# Elementwise arithmetic
# ----------------------------------------------------------------------

def add(a, b):
    """Elementwise ``a + b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data + b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def sub(a, b):
    """Elementwise ``a - b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data - b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def mul(a, b):
    """Elementwise ``a * b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data * b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * b.data, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * a.data, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def div(a, b):
    """Elementwise ``a / b`` with numpy broadcasting."""
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data / b.data

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad / b.data, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(-grad * a.data / (b.data ** 2), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def neg(a):
    """Elementwise negation."""
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(-grad)

    return Tensor._make(-a.data, (a,), backward)


def power(a, exponent):
    """Elementwise ``a ** exponent`` for a constant scalar exponent."""
    a = as_tensor(a)
    if isinstance(exponent, Tensor):
        raise TypeError("power() only supports constant scalar exponents")
    exponent = float(exponent)
    out_data = a.data ** exponent

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * exponent * a.data ** (exponent - 1.0))

    return Tensor._make(out_data, (a,), backward)


def abs(a):  # noqa: A001 - mirrors numpy naming
    """Elementwise absolute value (subgradient 0 at 0)."""
    a = as_tensor(a)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * np.sign(a.data))

    return Tensor._make(np.abs(a.data), (a,), backward)


def maximum(a, b):
    """Elementwise maximum; ties send the gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data >= b.data
    out_data = np.where(mask, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * mask, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~mask), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def minimum(a, b):
    """Elementwise minimum; ties send the gradient to ``a``."""
    a, b = as_tensor(a), as_tensor(b)
    mask = a.data <= b.data
    out_data = np.where(mask, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * mask, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~mask), b.shape))

    return Tensor._make(out_data, (a, b), backward)


def clip(a, low, high):
    """Clamp values to ``[low, high]``; gradient is zero outside the range."""
    a = as_tensor(a)
    out_data = np.clip(a.data, low, high)
    mask = (a.data >= low) & (a.data <= high)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask)

    return Tensor._make(out_data, (a,), backward)


def where(condition, a, b):
    """Elementwise select: ``a`` where ``condition`` is true, else ``b``.

    ``condition`` is a constant boolean array, not differentiated through.
    """
    cond = np.asarray(condition, dtype=bool)
    a, b = as_tensor(a), as_tensor(b)
    out_data = np.where(cond, a.data, b.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * (~cond), b.shape))

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Transcendental / activation functions
# ----------------------------------------------------------------------

def exp(a):
    """Elementwise exponential."""
    a = as_tensor(a)
    out_data = np.exp(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data)

    return Tensor._make(out_data, (a,), backward)


def log(a):
    """Elementwise natural logarithm."""
    a = as_tensor(a)
    out_data = np.log(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad / a.data)

    return Tensor._make(out_data, (a,), backward)


def sqrt(a):
    """Elementwise square root."""
    a = as_tensor(a)
    out_data = np.sqrt(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * 0.5 / out_data)

    return Tensor._make(out_data, (a,), backward)


def tanh(a):
    """Elementwise hyperbolic tangent."""
    a = as_tensor(a)
    out_data = np.tanh(a.data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * (1.0 - out_data ** 2))

    return Tensor._make(out_data, (a,), backward)


def sigmoid(a):
    """Numerically stable elementwise logistic sigmoid."""
    a = as_tensor(a)
    x = a.data
    out_data = np.empty_like(x)
    pos = x >= 0
    out_data[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out_data[~pos] = ex / (1.0 + ex)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * out_data * (1.0 - out_data))

    return Tensor._make(out_data, (a,), backward)


def relu(a):
    """Elementwise rectified linear unit."""
    a = as_tensor(a)
    mask = a.data > 0
    out_data = a.data * mask

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask)

    return Tensor._make(out_data, (a,), backward)


def leaky_relu(a, negative_slope=0.01):
    """Leaky ReLU with configurable negative-side slope."""
    a = as_tensor(a)
    mask = a.data > 0
    slope = np.where(mask, 1.0, negative_slope)
    out_data = a.data * slope

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * slope)

    return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Reductions
# ----------------------------------------------------------------------

def _expand_reduced(grad, shape, axis, keepdims):
    """Broadcast a reduced gradient back to the pre-reduction shape."""
    if axis is None:
        return np.broadcast_to(grad, shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = builtins.sorted(ax % len(shape) for ax in axes)
        for ax in axes:
            grad = np.expand_dims(grad, ax)
    return np.broadcast_to(grad, shape)


def sum(a, axis=None, keepdims=False):  # noqa: A001 - mirrors numpy naming
    """Sum over the given axis (or all axes)."""
    a = as_tensor(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims))

    return Tensor._make(out_data, (a,), backward)


def mean(a, axis=None, keepdims=False):
    """Mean over the given axis (or all axes)."""
    a = as_tensor(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    count = a.data.size if axis is None else np.prod(
        [a.shape[ax % a.ndim] for ax in (axis if isinstance(axis, tuple) else (axis,))])

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims) / count)

    return Tensor._make(out_data, (a,), backward)


def max(a, axis=None, keepdims=False):  # noqa: A001
    """Maximum over the given axis; gradient is split evenly among ties."""
    a = as_tensor(a)
    out_data = a.data.max(axis=axis, keepdims=keepdims)
    expanded = a.data.max(axis=axis, keepdims=True) if axis is not None else out_data
    mask = (a.data == expanded).astype(np.float64)
    mask /= mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()

    def backward(grad):
        if a.requires_grad:
            a._accumulate(_expand_reduced(grad, a.shape, axis, keepdims) * mask)

    return Tensor._make(out_data, (a,), backward)


def min(a, axis=None, keepdims=False):  # noqa: A001
    """Minimum over the given axis; gradient is split evenly among ties."""
    return neg(max(neg(a), axis=axis, keepdims=keepdims))


def var(a, axis=None, keepdims=False):
    """Population variance over the given axis (ddof=0)."""
    mu = mean(a, axis=axis, keepdims=True)
    centered = sub(a, mu)
    return mean(mul(centered, centered), axis=axis, keepdims=keepdims)


# ----------------------------------------------------------------------
# Linear algebra
# ----------------------------------------------------------------------

def matmul(a, b):
    """Matrix product with numpy's stacked-batch semantics.

    Supports ``(..., m, k) @ (..., k, n)`` with broadcasting of the leading
    batch dimensions, plus 1-D operands following numpy's rules.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data @ b.data

    def backward(grad):
        a_data, b_data = a.data, b.data
        if a.requires_grad:
            if b_data.ndim == 1:
                if a_data.ndim == 1:
                    grad_a = grad * b_data
                else:
                    grad_a = np.expand_dims(grad, -1) * b_data
            else:
                g = np.expand_dims(grad, -2) if a_data.ndim == 1 else grad
                grad_a = g @ np.swapaxes(b_data, -1, -2)
                if a_data.ndim == 1:
                    grad_a = grad_a.reshape(a_data.shape[-1:]) if grad_a.ndim <= 2 \
                        else grad_a.sum(axis=tuple(range(grad_a.ndim - 2))).reshape(-1)
            a._accumulate(unbroadcast(grad_a, a.shape))
        if b.requires_grad:
            if a_data.ndim == 1:
                if b_data.ndim == 1:
                    grad_b = grad * a_data
                else:
                    grad_b = np.expand_dims(a_data, -1) * grad
            else:
                g = np.expand_dims(grad, -1) if b_data.ndim == 1 else grad
                grad_b = np.swapaxes(a_data, -1, -2) @ g
                if b_data.ndim == 1:
                    # Drop the column axis we added, then sum any batch dims.
                    grad_b = grad_b[..., 0]
                    if grad_b.ndim > 1:
                        grad_b = grad_b.sum(axis=tuple(range(grad_b.ndim - 1)))
            b._accumulate(unbroadcast(grad_b, b.shape))

    return Tensor._make(out_data, (a, b), backward)


def outer_last(a, b):
    """Pairwise product over the last axis: ``out[..., i, j] = a[..., i] * b[..., j]``.

    Used to form explicit pairwise interaction grids without a Python loop.
    """
    a, b = as_tensor(a), as_tensor(b)
    out_data = a.data[..., :, None] * b.data[..., None, :]

    def backward(grad):
        if a.requires_grad:
            a._accumulate(unbroadcast((grad * b.data[..., None, :]).sum(-1), a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast((grad * a.data[..., :, None]).sum(-2), b.shape))

    return Tensor._make(out_data, (a, b), backward)


# ----------------------------------------------------------------------
# Shape manipulation
# ----------------------------------------------------------------------

def reshape(a, shape):
    """Reshape without copying data."""
    a = as_tensor(a)
    out_data = a.data.reshape(shape)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad.reshape(a.shape))

    return Tensor._make(out_data, (a,), backward)


def transpose(a, axes=None):
    """Permute axes (full reverse by default, like ``ndarray.T``)."""
    a = as_tensor(a)
    out_data = a.data.transpose(axes)
    if axes is None:
        inverse = None
    else:
        inverse = np.argsort(axes)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad.transpose(inverse) if inverse is not None
                          else grad.transpose())

    return Tensor._make(out_data, (a,), backward)


def swapaxes(a, axis1, axis2):
    """Swap two axes."""
    a = as_tensor(a)
    out_data = np.swapaxes(a.data, axis1, axis2)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(np.swapaxes(grad, axis1, axis2))

    return Tensor._make(out_data, (a,), backward)


def getitem(a, index):
    """Basic and advanced indexing; gradients scatter-add back."""
    a = as_tensor(a)
    out_data = a.data[index]

    def backward(grad):
        if a.requires_grad:
            full = np.zeros_like(a.data)
            np.add.at(full, index, grad)
            a._accumulate(full)

    return Tensor._make(out_data, (a,), backward)


def concat(tensors, axis=-1):
    """Concatenate tensors along an axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(grad):
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                slicer = [slice(None)] * grad.ndim
                slicer[axis] = slice(start, stop)
                t._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, tuple(tensors), backward)


def stack(tensors, axis=0):
    """Stack tensors along a new axis."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad):
        slices = np.moveaxis(grad, axis, 0)
        for t, g in zip(tensors, slices):
            if t.requires_grad:
                t._accumulate(g)

    return Tensor._make(out_data, tuple(tensors), backward)


def split(a, sections, axis=-1):
    """Split into equal sections along an axis; returns a list of tensors."""
    a = as_tensor(a)
    size = a.shape[axis]
    if size % sections:
        raise ValueError(f"axis of size {size} cannot be split into {sections} equal parts")
    step = size // sections
    outs = []
    for k in range(sections):
        slicer = [slice(None)] * a.ndim
        slicer[axis] = slice(k * step, (k + 1) * step)
        outs.append(getitem(a, tuple(slicer)))
    return outs


def pad_last(a, before, after, value=0.0):
    """Pad the last axis with a constant value."""
    a = as_tensor(a)
    widths = [(0, 0)] * (a.ndim - 1) + [(before, after)]
    out_data = np.pad(a.data, widths, constant_values=value)

    def backward(grad):
        if a.requires_grad:
            slicer = [slice(None)] * (a.ndim - 1) + [slice(before, before + a.shape[-1])]
            a._accumulate(grad[tuple(slicer)])

    return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------

def softmax(a, axis=-1):
    """Numerically stable softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    exped = np.exp(shifted)
    out_data = exped / exped.sum(axis=axis, keepdims=True)

    def backward(grad):
        if a.requires_grad:
            dot = (grad * out_data).sum(axis=axis, keepdims=True)
            a._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (a,), backward)


def log_softmax(a, axis=-1):
    """Numerically stable log-softmax along ``axis``."""
    a = as_tensor(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_z
    soft = np.exp(out_data)

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad - soft * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (a,), backward)


# ----------------------------------------------------------------------
# Misc
# ----------------------------------------------------------------------

def dropout_mask(a, rate, rng):
    """Apply inverted dropout with drop probability ``rate``.

    The binary mask is sampled from ``rng`` and treated as a constant.
    """
    a = as_tensor(a)
    if rate <= 0.0:
        return a
    keep = 1.0 - rate
    mask = (rng.random(a.shape) < keep) / keep

    def backward(grad):
        if a.requires_grad:
            a._accumulate(grad * mask)

    return Tensor._make(a.data * mask, (a,), backward)


def embedding_lookup(table, indices):
    """Gather rows of a 2-D embedding ``table`` by integer ``indices``."""
    table = as_tensor(table)
    indices = np.asarray(indices, dtype=np.int64)
    out_data = table.data[indices]

    def backward(grad):
        if table.requires_grad:
            full = np.zeros_like(table.data)
            np.add.at(full, indices.reshape(-1),
                      grad.reshape(-1, table.shape[-1]))
            table._accumulate(full)

    return Tensor._make(out_data, (table,), backward)
