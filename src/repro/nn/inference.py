"""Shared inference protocol for batch classifiers.

Every registry model implements training through
``forward_batch(batch) -> logits``; :class:`InferenceMixin` derives the
*serving* surface from that single method, so all models satisfy one
``Predictor`` protocol (see :mod:`repro.serve`):

* :meth:`~InferenceMixin.predict_logits` — raw logits as a numpy array,
  computed in ``eval()`` mode under :class:`~repro.nn.tensor.no_grad`;
* :meth:`~InferenceMixin.predict_proba` — probabilities (sigmoid for 1-D
  binary logits, row-stochastic softmax for 2-D multi-class logits);
* :meth:`~InferenceMixin.predict` — hard labels.

The mixin enforces the no-grad fast path: if the forward somehow wires
its output into the autodiff graph (a leaked ``requires_grad`` tensor,
an op bypassing the global switch), ``predict_logits`` raises instead of
silently serving with graph-building overhead.  The probability math is
shared with the training engine (:mod:`repro.metrics.probability`), so
training-time validation scores and served scores agree bit-for-bit.
"""

from __future__ import annotations

from .backend import xp as np

from .dtype import get_default_dtype
from .tensor import no_grad

__all__ = ["InferenceMixin"]


class InferenceMixin:
    """Inference methods derived from ``forward_batch``.

    Mix into any :class:`~repro.nn.module.Module` subclass that
    implements ``forward_batch(batch) -> logits``.  The host class
    provides ``training`` / ``train()`` / ``eval()``.

    Streaming protocol
    ------------------
    Models whose forward factors into a causal per-step recurrence may
    additionally set ``stream_native = True`` and implement

    * ``stream_begin(batch_size) -> state`` — fresh per-session state;
    * ``stream_step(state, values_t, mask_t, deltas_t) -> (state, logits)``
      — consume one ``(batch, features)`` timestep slice and produce the
      logits *as of that prefix*, bit-identical to ``predict_logits``
      over the same prefix (see docs/SERVING.md for the contract).

    Models whose forward is *not* a pure per-step recurrence but still
    maintains reusable per-prefix state (cached projections, running
    hidden states feeding a non-causal readout) set
    ``stream_incremental = True`` instead and implement the same two
    hooks.  The bit-identity contract is identical; the difference is
    cost semantics — an incremental ``stream_step`` may do O(t) readout
    work over its cached state, but never recomputes the per-step
    projections or recurrences of earlier steps.  Two extra rules apply
    to incremental hooks:

    * record the new observation into ``state`` (in place) *before* any
      computation that can raise — a model that rejects short prefixes
      (e.g. attention over ``t-1`` earlier steps needs two) must keep
      the observation so the same session can serve it once enough
      steps arrived;
    * a readout that cannot be produced from cached per-step pieces
      bit-identically (the ``t == 1`` GEMV-regime projections — see
      :func:`repro.nn.ops.linear_rows`) is served via the exact full
      forward for that prefix while the cache is still updated.

    :class:`repro.serve.StreamingSession` drives both kinds of hooks
    under ``eval()`` + ``no_grad``; models with neither flag are
    streamed by exact prefix replay instead, so every model supports
    the streaming surface.
    """

    #: True on models implementing stream_begin/stream_step natively;
    #: the serving session replays prefixes for everything else.
    stream_native = False

    #: True on models whose stream_step reuses cached per-prefix state
    #: (incremental attention streaming) without being a pure O(1)
    #: recurrence.  Mutually exclusive with stream_native.
    stream_incremental = False

    def stream_begin(self, batch_size):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement native streaming; "
            "use repro.serve.StreamingSession, which falls back to exact "
            "prefix replay")

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        raise NotImplementedError(
            f"{type(self).__name__} does not implement native streaming; "
            "use repro.serve.StreamingSession, which falls back to exact "
            "prefix replay")

    def predict_logits(self, batch):
        """Raw output logits for a batch as a plain numpy array.

        Runs in ``eval()`` mode under ``no_grad`` and restores the
        previous train/eval mode on exit.  Raises ``RuntimeError`` if
        the forward pass built autodiff graph state — the serving fast
        path must never pay for backward bookkeeping.
        """
        was_training = self.training
        self.eval()
        try:
            with no_grad():
                logits = self.forward_batch(batch)
        finally:
            self.train(was_training)
        if getattr(logits, "requires_grad", False) or \
                getattr(logits, "_backward", None) is not None:
            raise RuntimeError(
                f"{type(self).__name__}.forward_batch built autodiff graph "
                "state under no_grad; the inference fast path requires "
                "graph-free forwards")
        # Policy dtype, not a hard-coded float64: the serve path stays in
        # the same precision plane as the forward that produced it.
        return np.asarray(getattr(logits, "data", logits),
                          dtype=get_default_dtype())

    def predict_proba(self, batch):
        """Predicted probabilities for a batch.

        1-D logits (binary classifiers) map through the logistic
        sigmoid to a vector of positive-class probabilities; 2-D
        logits (multi-class heads) map through a row-stochastic
        softmax to an (N, K) matrix.
        """
        from ..metrics.probability import sigmoid_probs, softmax_probs
        logits = self.predict_logits(batch)
        if logits.ndim == 1:
            return sigmoid_probs(logits)
        return softmax_probs(logits)

    def predict(self, batch, threshold=0.5):
        """Hard class predictions: thresholded (binary) or argmax."""
        probabilities = self.predict_proba(batch)
        if probabilities.ndim == 1:
            return (probabilities >= threshold).astype(int)
        return probabilities.argmax(axis=-1)
