"""Reproduction of *ELDA: Learning Explicit Dual-Interactions for
Healthcare Analytics* (Cai et al., ICDE 2022).

Public API highlights
---------------------
``repro.core.ELDA``
    The end-to-end framework: train, predict, alert, interpret.
``repro.core.ELDANet`` / ``repro.core.build_variant``
    The model and its ablation variants.
``repro.data.load_cohort``
    Synthetic stand-ins for the PhysioNet 2012 and MIMIC-III cohorts.
``repro.baselines.build_model``
    Every baseline from the paper's comparison, by name.
``repro.metrics``
    BCE / AUC-ROC / AUC-PR implemented from first principles.
``repro.nn``
    The from-scratch autodiff + neural-network substrate everything runs on.

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from . import baselines, bench, core, data, experiments, metrics, nn, train

__version__ = "1.0.0"

__all__ = ["nn", "data", "core", "baselines", "bench", "metrics", "train",
           "experiments", "__version__"]
