"""ELDA core: the paper's model, framework, and interpretability tools."""

from .elda_net import ELDANet, VARIANT_NAMES, build_variant
from .embedding import BiDirectionalEmbedding, FMEmbedding, build_embedding
from .feature_interaction import FeatureInteractionModule
from .framework import ELDA, RiskAlert
from .interpret import (AttentionExtract, cohort_time_attention,
                        extract_attention, feature_attention_at,
                        interaction_trace, modify_feature_to_normal)
from .prediction import PredictionModule
from .time_interaction import TimeInteractionModule

__all__ = [
    "ELDANet", "VARIANT_NAMES", "build_variant",
    "BiDirectionalEmbedding", "FMEmbedding", "build_embedding",
    "FeatureInteractionModule", "TimeInteractionModule", "PredictionModule",
    "ELDA", "RiskAlert",
    "AttentionExtract", "extract_attention", "cohort_time_attention",
    "feature_attention_at", "interaction_trace", "modify_feature_to_normal",
]
