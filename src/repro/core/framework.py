"""The ELDA framework (paper Section III).

:class:`ELDA` wraps ELDA-Net with the workflow the paper describes around
it: train on historical EMR data, predict on newly arriving admissions,
raise alerts when the predicted risk crosses a clinician-set threshold,
and expose the dual-interaction interpretations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.backend import xp as np

from ..data.schema import NUM_FEATURES
from ..nn.serialization import load_weights, save_weights
from ..train import Trainer
from .elda_net import build_variant
from .interpret import (cohort_time_attention, extract_attention,
                        feature_attention_at, interaction_trace)

__all__ = ["ELDA", "RiskAlert"]


@dataclass
class RiskAlert:
    """An alert raised for an admission whose predicted risk is high."""

    admission_index: int
    risk: float
    threshold: float

    def __str__(self):
        return (f"ALERT: admission {self.admission_index} predicted risk "
                f"{self.risk:.2f} exceeds threshold {self.threshold:.2f}")


class ELDA:
    """End-to-end healthcare-analytics framework around ELDA-Net.

    Parameters
    ----------
    task:
        ``"mortality"`` or ``"los"``.
    num_features:
        Number of medical features (defaults to the 37-feature schema).
    variant:
        ELDA-Net variant name (default the full ``"ELDA-Net"``).
    seed:
        Seed for weight initialization and batch shuffling.
    model_kwargs:
        Extra hyperparameters forwarded to :class:`ELDANet`.
    trainer_kwargs:
        Extra settings forwarded to :class:`repro.train.Trainer`
        (``max_epochs``, ``patience``, ``lr``, ...).
    run_dir:
        Optional durable run directory (config.json, metrics.jsonl,
        checkpoints/); resume an interrupted fit with
        ``fit(..., resume=True)``.
    """

    def __init__(self, task="mortality", num_features=NUM_FEATURES,
                 variant="ELDA-Net", seed=0, model_kwargs=None,
                 trainer_kwargs=None, run_dir=None):
        self.task = task
        self.num_features = num_features
        rng = np.random.default_rng(seed)
        self.model = build_variant(variant, num_features, rng,
                                   **(model_kwargs or {}))
        self.trainer = Trainer(self.model, task, seed=seed, run_dir=run_dir,
                               **(trainer_kwargs or {}))
        self.history = None

    # ------------------------------------------------------------------
    # Predictive analytics
    # ------------------------------------------------------------------
    def fit(self, train, validation, resume=False):
        """Train on historical EMR data with early stopping.

        With ``resume=True`` (requires ``run_dir``) the last checkpoint
        is restored and training continues where it left off.
        """
        self.history = self.trainer.fit(train, validation, resume=resume)
        return self.history

    def predict_risk(self, dataset):
        """Predicted outcome probabilities for each admission."""
        return self.trainer.engine.predict_proba(dataset)

    def evaluate(self, dataset):
        """The paper's metric triple on a dataset."""
        return self.trainer.evaluate(dataset)

    def alerts(self, dataset, threshold=0.5):
        """Raise :class:`RiskAlert` objects for high-risk admissions.

        This is the framework's "trigger timely alerts to inform
        clinicians" functionality.
        """
        risks = self.predict_risk(dataset)
        return [RiskAlert(admission_index=i, risk=float(r),
                          threshold=threshold)
                for i, r in enumerate(risks) if r >= threshold]

    # ------------------------------------------------------------------
    # Interpretation
    # ------------------------------------------------------------------
    def time_interpretation(self, dataset):
        """Cohort-level time attention (Figure 8)."""
        return cohort_time_attention(self.model, dataset)

    def feature_interpretation(self, admission_values, ever_observed, hour,
                               features=None):
        """One admission's feature-attention grid at an hour (Figure 9)."""
        return feature_attention_at(self.model, admission_values,
                                    ever_observed, hour, features=features)

    def interaction_traces(self, admission_values, ever_observed, anchor,
                           partners):
        """Attention traces of one feature's interactions (Figure 10)."""
        return interaction_trace(self.model, admission_values, ever_observed,
                                 anchor, partners)

    def attention(self, dataset, with_feature=True):
        """Raw attention extraction for custom analyses."""
        return extract_attention(self.model, dataset,
                                 with_feature=with_feature)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path):
        """Persist the trained weights to an ``.npz`` archive."""
        save_weights(self.model, path)

    def load(self, path):
        """Restore weights saved by :meth:`save`."""
        load_weights(self.model, path)
