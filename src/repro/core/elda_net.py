"""ELDA-Net: the end-to-end model and its ablation variants.

The full model chains the four modules of Section IV-B:

    Bi-directional Embedding -> Feature-level Interaction Learning
        -> Time-level Interaction Learning -> Prediction

The ablation variants of Section V-C are expressed through the
constructor:

==================  =============================  =========================
Paper name          ``embedding``                  modules kept
==================  =============================  =========================
ELDA-Net            ``"bi"``                       feature + time
ELDA-Net-T          (embedding unused)             time only (raw values in)
ELDA-Net-F_bi       ``"bi"``                       feature only
ELDA-Net-F_bi*      ``"bi*"``                      feature only
ELDA-Net-F_fm       ``"fm"``                       feature only
ELDA-Net-F_fm*      ``"fm*"``                      feature only
==================  =============================  =========================

Use :func:`build_variant` to construct any of them by paper name.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn.dtype import get_default_dtype
from ..nn.layers import GRU
from ..nn.inference import InferenceMixin
from ..nn.module import Module
from .embedding import build_embedding
from .feature_interaction import FeatureInteractionModule
from .prediction import PredictionModule
from .time_interaction import TimeInteractionModule

__all__ = ["ELDANet", "build_variant", "VARIANT_NAMES"]

VARIANT_NAMES = ("ELDA-Net", "ELDA-Net-T", "ELDA-Net-Fbi", "ELDA-Net-Fbi*",
                 "ELDA-Net-Ffm", "ELDA-Net-Ffm*")


class ELDANet(Module, InferenceMixin):
    """The ELDA-Net model (paper Section IV).

    Parameters
    ----------
    num_features:
        Number of medical features ``|C|`` (37 in the paper's setting).
    embedding_size:
        Embedding dimension ``e`` (paper: 24).
    hidden_size:
        GRU hidden size ``l`` (paper: 64).
    compression:
        Compression factor ``d`` (paper: 4).
    rng:
        ``numpy.random.Generator`` for weight initialization.
    embedding:
        One of ``"bi"``, ``"bi*"``, ``"fm"``, ``"fm*"``.
    lower, upper:
        Bounds ``(a, b)`` of the bi-directional embedding (paper: -3, 3).
    use_feature_module:
        Keep the Feature-level Interaction Learning Module.
    use_time_module:
        Keep the Time-level Interaction Learning Module; when dropped, the
        prediction head consumes the GRU's last hidden state only.
    feature_attention:
        When False, feature interactions are pooled uniformly instead of
        with the learned attention (ablation of Eqs. 4-5).
    num_classes:
        1 for the paper's binary tasks; > 1 switches the Prediction
        Module to a softmax head (e.g. archetype phenotyping).
    """

    def __init__(self, num_features, rng, embedding_size=24, hidden_size=64,
                 compression=4, embedding="bi", lower=-3.0, upper=3.0,
                 use_feature_module=True, use_time_module=True,
                 feature_attention=True, num_classes=1):
        super().__init__()
        self.num_features = num_features
        self.use_feature_module = use_feature_module
        self.use_time_module = use_time_module

        if use_feature_module:
            self.embedding = build_embedding(embedding, num_features,
                                             embedding_size, rng,
                                             lower=lower, upper=upper)
            self.feature_module = FeatureInteractionModule(
                num_features, embedding_size, compression, rng,
                use_attention=feature_attention)
            sequence_size = num_features * compression
        else:
            sequence_size = num_features

        if use_time_module:
            self.time_module = TimeInteractionModule(sequence_size,
                                                     hidden_size, rng)
            representation_size = 2 * hidden_size
        else:
            self.encoder = GRU(sequence_size, hidden_size, rng,
                               return_sequences=False)
            representation_size = hidden_size

        self.prediction = PredictionModule(representation_size, rng,
                                           num_classes=num_classes)

    # ------------------------------------------------------------------
    def forward(self, values, ever_observed=None, return_attention=False):
        """Predict outcome probabilities for a batch of admissions.

        Parameters
        ----------
        values:
            Array or Tensor (batch, time, features): standardized, imputed.
        ever_observed:
            Boolean (batch, features); False marks never-observed features
            (routed to the missing-value embedding).
        return_attention:
            Also return a dict with ``"feature"`` (B, T, C, C) and
            ``"time"`` (B, T-1) attention weights where applicable.

        Returns
        -------
        Tensor (batch,) of probabilities, and optionally the attention dict.
        """
        values = nn.as_tensor(values)
        attention = {}

        if self.use_feature_module:
            embedded = self.embedding(values, ever_observed=ever_observed)
            if return_attention:
                sequence, alpha = self.feature_module(embedded,
                                                      return_attention=True)
                attention["feature"] = alpha
            else:
                sequence = self.feature_module(embedded)
        else:
            sequence = values

        if self.use_time_module:
            if return_attention:
                representation, beta = self.time_module(sequence,
                                                        return_attention=True)
                attention["time"] = beta
            else:
                representation = self.time_module(sequence)
        else:
            representation = self.encoder(sequence)

        probabilities = self.prediction(representation)
        if return_attention:
            return probabilities, attention
        return probabilities

    def logits(self, values, ever_observed=None):
        """Raw output logits (used by the numerically stable loss)."""
        values = nn.as_tensor(values)
        if self.use_feature_module:
            embedded = self.embedding(values, ever_observed=ever_observed)
            sequence = self.feature_module(embedded)
        else:
            sequence = values
        if self.use_time_module:
            representation = self.time_module(sequence)
        else:
            representation = self.encoder(sequence)
        return self.prediction.logits(representation)


    def forward_batch(self, batch):
        """Uniform trainer interface: logits from an :class:`EMRDataset` batch."""
        return self.logits(batch.values, ever_observed=batch.ever_observed)

    # -- streaming inference (serve tier) ------------------------------
    stream_incremental = True

    def _stream_gru(self):
        """The recurrent encoder the streaming state advances through."""
        return self.time_module.gru if self.use_time_module else self.encoder

    def _project_step(self, v_t, ever):
        """Embed + feature-interact one ``(batch, features)`` slice.

        Returns the enriched ``(batch, features * compression)`` row as
        a plain array.  Every op in the feature path — the value
        embedding, the missing-value routing, and the feature-attention
        matmuls — is either elementwise in time or a stacked matmul
        whose GEMM cores are independent of the time extent, so the row
        computed from a one-step slice is bit-identical to the matching
        row of the full-prefix feature pipeline.
        """
        values = nn.Tensor(v_t[:, None, :])
        embedded = self.embedding(values, ever_observed=ever)
        sequence = self.feature_module(embedded)
        return sequence.data[:, 0]

    def stream_begin(self, batch_size):
        return {
            "values": [],
            "ever": None,
            "h": self._stream_gru().initial_state(batch_size),
            "states": [],
        }

    def stream_step(self, state, values_t, mask_t=None, deltas_t=None):
        """Incremental streaming across every ELDA-Net variant.

        Each step projects only the *new* timestep through the feature
        pipeline (:meth:`_project_step`) and advances the GRU in O(1)
        via its ``stream_step`` hook; the time-interaction readout
        (variants with the time module) then runs over the cached hidden
        states.  The one caveat is the never-observed routing: the
        feature embedding of *every* timestep depends on which features
        have been observed *anywhere* in the prefix, so when a feature's
        first observation arrives the cached projections are stale and
        the state rebuilds from the buffered raw rows — rare after the
        first few steps of an admission, and absent entirely for the
        time-only variant (whose input is the raw values).
        """
        v_t = np.asarray(values_t, dtype=get_default_dtype())
        batch = v_t.shape[0]
        gru = self._stream_gru()
        state["values"].append(v_t)
        if self.use_feature_module:
            m_t = (np.ones(v_t.shape, dtype=bool) if mask_t is None
                   else np.asarray(mask_t, dtype=bool))
            ever = state["ever"]
            new_ever = m_t.copy() if ever is None else (ever | m_t)
            if ever is None or not np.array_equal(new_ever, ever):
                # A feature crossed from never- to ever-observed: every
                # cached projection used the stale missing-value routing.
                # Re-project and re-encode the buffered prefix.
                state["ever"] = new_ever
                state["h"] = gru.initial_state(batch)
                state["states"] = []
                rows = [self._project_step(v, new_ever)
                        for v in state["values"]]
            else:
                rows = [self._project_step(v_t, ever)]
        else:
            rows = [v_t]
        for row in rows:
            state["h"] = gru.stream_step(row, state["h"])
            if self.use_time_module:
                state["states"].append(state["h"])
        if self.use_time_module:
            states = nn.Tensor(np.stack(state["states"], axis=1))
            representation = self.time_module.tail(states)
        else:
            representation = nn.Tensor(state["h"])
        return state, self.prediction.logits(representation)


def build_variant(name, num_features, rng, **overrides):
    """Construct an ELDA-Net variant by its paper name.

    Accepted names (case-insensitive, ``*`` suffix meaningful):
    ``ELDA-Net``, ``ELDA-Net-T``, ``ELDA-Net-Fbi``, ``ELDA-Net-Fbi*``,
    ``ELDA-Net-Ffm``, ``ELDA-Net-Ffm*``.
    """
    canonical = name.strip().lower().replace("_", "").replace(" ", "")
    table = {
        "elda-net": dict(embedding="bi", use_feature_module=True,
                         use_time_module=True),
        "elda-net-t": dict(use_feature_module=False, use_time_module=True),
        "elda-net-fbi": dict(embedding="bi", use_feature_module=True,
                             use_time_module=False),
        "elda-net-fbi*": dict(embedding="bi*", use_feature_module=True,
                              use_time_module=False),
        "elda-net-ffm": dict(embedding="fm", use_feature_module=True,
                             use_time_module=False),
        "elda-net-ffm*": dict(embedding="fm*", use_feature_module=True,
                              use_time_module=False),
    }
    if canonical not in table:
        raise ValueError(f"unknown ELDA-Net variant {name!r}; "
                         f"known: {', '.join(VARIANT_NAMES)}")
    config = dict(table[canonical])
    config.update(overrides)
    return ELDANet(num_features, rng, **config)
