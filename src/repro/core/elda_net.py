"""ELDA-Net: the end-to-end model and its ablation variants.

The full model chains the four modules of Section IV-B:

    Bi-directional Embedding -> Feature-level Interaction Learning
        -> Time-level Interaction Learning -> Prediction

The ablation variants of Section V-C are expressed through the
constructor:

==================  =============================  =========================
Paper name          ``embedding``                  modules kept
==================  =============================  =========================
ELDA-Net            ``"bi"``                       feature + time
ELDA-Net-T          (embedding unused)             time only (raw values in)
ELDA-Net-F_bi       ``"bi"``                       feature only
ELDA-Net-F_bi*      ``"bi*"``                      feature only
ELDA-Net-F_fm       ``"fm"``                       feature only
ELDA-Net-F_fm*      ``"fm*"``                      feature only
==================  =============================  =========================

Use :func:`build_variant` to construct any of them by paper name.
"""

from __future__ import annotations


from .. import nn
from ..nn.layers import GRU
from ..nn.inference import InferenceMixin
from ..nn.module import Module
from .embedding import build_embedding
from .feature_interaction import FeatureInteractionModule
from .prediction import PredictionModule
from .time_interaction import TimeInteractionModule

__all__ = ["ELDANet", "build_variant", "VARIANT_NAMES"]

VARIANT_NAMES = ("ELDA-Net", "ELDA-Net-T", "ELDA-Net-Fbi", "ELDA-Net-Fbi*",
                 "ELDA-Net-Ffm", "ELDA-Net-Ffm*")


class ELDANet(Module, InferenceMixin):
    """The ELDA-Net model (paper Section IV).

    Parameters
    ----------
    num_features:
        Number of medical features ``|C|`` (37 in the paper's setting).
    embedding_size:
        Embedding dimension ``e`` (paper: 24).
    hidden_size:
        GRU hidden size ``l`` (paper: 64).
    compression:
        Compression factor ``d`` (paper: 4).
    rng:
        ``numpy.random.Generator`` for weight initialization.
    embedding:
        One of ``"bi"``, ``"bi*"``, ``"fm"``, ``"fm*"``.
    lower, upper:
        Bounds ``(a, b)`` of the bi-directional embedding (paper: -3, 3).
    use_feature_module:
        Keep the Feature-level Interaction Learning Module.
    use_time_module:
        Keep the Time-level Interaction Learning Module; when dropped, the
        prediction head consumes the GRU's last hidden state only.
    feature_attention:
        When False, feature interactions are pooled uniformly instead of
        with the learned attention (ablation of Eqs. 4-5).
    num_classes:
        1 for the paper's binary tasks; > 1 switches the Prediction
        Module to a softmax head (e.g. archetype phenotyping).
    """

    def __init__(self, num_features, rng, embedding_size=24, hidden_size=64,
                 compression=4, embedding="bi", lower=-3.0, upper=3.0,
                 use_feature_module=True, use_time_module=True,
                 feature_attention=True, num_classes=1):
        super().__init__()
        self.num_features = num_features
        self.use_feature_module = use_feature_module
        self.use_time_module = use_time_module

        if use_feature_module:
            self.embedding = build_embedding(embedding, num_features,
                                             embedding_size, rng,
                                             lower=lower, upper=upper)
            self.feature_module = FeatureInteractionModule(
                num_features, embedding_size, compression, rng,
                use_attention=feature_attention)
            sequence_size = num_features * compression
        else:
            sequence_size = num_features

        if use_time_module:
            self.time_module = TimeInteractionModule(sequence_size,
                                                     hidden_size, rng)
            representation_size = 2 * hidden_size
        else:
            self.encoder = GRU(sequence_size, hidden_size, rng,
                               return_sequences=False)
            representation_size = hidden_size

        self.prediction = PredictionModule(representation_size, rng,
                                           num_classes=num_classes)

    # ------------------------------------------------------------------
    def forward(self, values, ever_observed=None, return_attention=False):
        """Predict outcome probabilities for a batch of admissions.

        Parameters
        ----------
        values:
            Array or Tensor (batch, time, features): standardized, imputed.
        ever_observed:
            Boolean (batch, features); False marks never-observed features
            (routed to the missing-value embedding).
        return_attention:
            Also return a dict with ``"feature"`` (B, T, C, C) and
            ``"time"`` (B, T-1) attention weights where applicable.

        Returns
        -------
        Tensor (batch,) of probabilities, and optionally the attention dict.
        """
        values = nn.as_tensor(values)
        attention = {}

        if self.use_feature_module:
            embedded = self.embedding(values, ever_observed=ever_observed)
            if return_attention:
                sequence, alpha = self.feature_module(embedded,
                                                      return_attention=True)
                attention["feature"] = alpha
            else:
                sequence = self.feature_module(embedded)
        else:
            sequence = values

        if self.use_time_module:
            if return_attention:
                representation, beta = self.time_module(sequence,
                                                        return_attention=True)
                attention["time"] = beta
            else:
                representation = self.time_module(sequence)
        else:
            representation = self.encoder(sequence)

        probabilities = self.prediction(representation)
        if return_attention:
            return probabilities, attention
        return probabilities

    def logits(self, values, ever_observed=None):
        """Raw output logits (used by the numerically stable loss)."""
        values = nn.as_tensor(values)
        if self.use_feature_module:
            embedded = self.embedding(values, ever_observed=ever_observed)
            sequence = self.feature_module(embedded)
        else:
            sequence = values
        if self.use_time_module:
            representation = self.time_module(sequence)
        else:
            representation = self.encoder(sequence)
        return self.prediction.logits(representation)


    def forward_batch(self, batch):
        """Uniform trainer interface: logits from an :class:`EMRDataset` batch."""
        return self.logits(batch.values, ever_observed=batch.ever_observed)


def build_variant(name, num_features, rng, **overrides):
    """Construct an ELDA-Net variant by its paper name.

    Accepted names (case-insensitive, ``*`` suffix meaningful):
    ``ELDA-Net``, ``ELDA-Net-T``, ``ELDA-Net-Fbi``, ``ELDA-Net-Fbi*``,
    ``ELDA-Net-Ffm``, ``ELDA-Net-Ffm*``.
    """
    canonical = name.strip().lower().replace("_", "").replace(" ", "")
    table = {
        "elda-net": dict(embedding="bi", use_feature_module=True,
                         use_time_module=True),
        "elda-net-t": dict(use_feature_module=False, use_time_module=True),
        "elda-net-fbi": dict(embedding="bi", use_feature_module=True,
                             use_time_module=False),
        "elda-net-fbi*": dict(embedding="bi*", use_feature_module=True,
                              use_time_module=False),
        "elda-net-ffm": dict(embedding="fm", use_feature_module=True,
                             use_time_module=False),
        "elda-net-ffm*": dict(embedding="fm*", use_feature_module=True,
                              use_time_module=False),
    }
    if canonical not in table:
        raise ValueError(f"unknown ELDA-Net variant {name!r}; "
                         f"known: {', '.join(VARIANT_NAMES)}")
    config = dict(table[canonical])
    config.update(overrides)
    return ELDANet(num_features, rng, **config)
