"""Feature-level Interaction Learning Module (paper Section IV-B, Eqs. 3-6).

For every time step and every feature *i*, the module forms explicit
pairwise interactions ``r_ij = e_i ⊙ e_j`` with all other features,
attends over them with a per-feature attention network

    α'_ij = (W_i^α)^T r_ij + b_i^α          (Eq. 4)
    α_ij  = softmax_j≠i(α'_ij)              (Eq. 5)

aggregates ``c_i = Σ_j α_ij r_ij``, and compresses the enriched feature
``[e_i; c_i]`` into a ``d``-dimensional representation (Eq. 6).

Implementation note: materializing the (B, T, C, C, e) interaction tensor
is wasteful.  We use the algebraic identities

    α'_ij = ((e_i ⊙ W_i) · e_j) + b_i  and  c_i = e_i ⊙ (Σ_j α_ij e_j)

which compute exactly the same function with a (B, T, C, C) attention grid
and two batched matmuls.  The returned attention weights are the α_ij the
paper visualizes in Figures 9–10.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.module import Module, Parameter

__all__ = ["FeatureInteractionModule"]


class FeatureInteractionModule(Module):
    """Explicit pairwise feature-interaction learning with attention.

    Parameters
    ----------
    num_features:
        Number of medical features ``|C|``.
    embedding_size:
        Embedding dimension ``e`` of the inputs.
    compression:
        The compression factor ``d`` — output size per feature (Eq. 6).
    rng:
        Generator for weight initialization.
    use_attention:
        When False, interactions are pooled with uniform weights instead
        of the learned attention of Eqs. 4-5 (the attention ablation).
    """

    def __init__(self, num_features, embedding_size, compression, rng,
                 use_attention=True):
        super().__init__()
        self.num_features = num_features
        self.embedding_size = embedding_size
        self.compression = compression
        self.use_attention = use_attention
        # W^α ∈ R^{C×e}, b^α ∈ R^C: one attention scorer per feature i.
        self.attn_weight = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))
        self.attn_bias = Parameter(np.zeros(num_features))
        # p ∈ R^{2e×d}: shared compression of [e_i; c_i].
        self.compress = Parameter(
            nn.init.glorot_uniform((2 * embedding_size, compression), rng))
        # Exclude self-interactions from the softmax (Eq. 5's j ≠ i).
        self._diag_mask = np.full((num_features, num_features), 0.0)
        np.fill_diagonal(self._diag_mask, -1e9)

    def forward(self, embedded, return_attention=False):
        """Enrich embedded features with attended pairwise interactions.

        Parameters
        ----------
        embedded:
            Tensor (batch, time, features, embedding) from the embedding
            module.
        return_attention:
            Also return the α grid (batch, time, features, features),
            where entry [.., i, j] is feature i's attention on its
            interaction with feature j.

        Returns
        -------
        Tensor (batch, time, features * compression) — the x̃_t sequence —
        and optionally the attention grid.
        """
        if self.use_attention:
            keyed = embedded * self.attn_weight        # e_i ⊙ W_i
            logits = ops.matmul(keyed, embedded.swapaxes(-1, -2))
            logits = logits + self.attn_bias.reshape(-1, 1)
            logits = logits + nn.Tensor(self._diag_mask)
            alpha = ops.softmax(logits, axis=-1)       # (B, T, C, C)
        else:
            uniform = np.full((self.num_features, self.num_features),
                              1.0 / (self.num_features - 1))
            np.fill_diagonal(uniform, 0.0)
            alpha = nn.Tensor(np.broadcast_to(
                uniform, embedded.shape[:2] + uniform.shape).copy())

        summed = ops.matmul(alpha, embedded)           # Σ_j α_ij e_j
        context = embedded * summed                    # c_i = e_i ⊙ Σ α e_j
        enriched = ops.concat([embedded, context], axis=-1)
        compressed = ops.matmul(ops.relu(enriched), self.compress)

        batch, steps = compressed.shape[0], compressed.shape[1]
        flat = compressed.reshape(batch, steps,
                                  self.num_features * self.compression)
        if return_attention:
            return flat, alpha
        return flat
