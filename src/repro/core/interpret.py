"""Interpretability analyses (paper Section V-D).

Functions here extract and aggregate the two attention signals that make
ELDA "explicit":

* **time level** — β weights over the 47 earlier hours, per patient and
  averaged per cohort (Figure 8);
* **feature level** — the α grid at a given hour (the rows of Figure 9),
  attention traces of one feature's interactions over time (Figure 10),
  and the controlled feature-modification experiment in which an abnormal
  feature is rewritten to the population normal and the attention response
  is re-measured (Figure 9b).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nn.backend import xp as np

from .. import nn
from ..data.dataset import iterate_batches
from ..data.schema import feature_index

__all__ = ["AttentionExtract", "extract_attention", "cohort_time_attention",
           "feature_attention_at", "interaction_trace",
           "modify_feature_to_normal"]


@dataclass
class AttentionExtract:
    """Attention weights for a set of admissions.

    Attributes
    ----------
    time:
        β of shape (N, T-1); rows sum to 1.
    feature:
        α of shape (N, T, C, C); each row [n, t, i, :] sums to 1 and the
        diagonal is zero.  ``None`` for variants without the feature
        module.
    """

    time: np.ndarray | None
    feature: np.ndarray | None


def extract_attention(model, dataset, batch_size=64, with_feature=True):
    """Run the model in inference mode and collect attention weights.

    ``with_feature=False`` skips storing the (N, T, C, C) grid, which for
    large cohorts is the memory-dominant piece.
    """
    model.eval()
    time_rows = []
    feature_rows = []
    with nn.no_grad():
        for batch, _ in iterate_batches(dataset, "mortality", batch_size):
            _, attention = model(batch.values,
                                 ever_observed=batch.ever_observed,
                                 return_attention=True)
            if "time" in attention:
                time_rows.append(attention["time"].data)
            if with_feature and "feature" in attention:
                feature_rows.append(attention["feature"].data)
    model.train()
    return AttentionExtract(
        time=np.concatenate(time_rows) if time_rows else None,
        feature=np.concatenate(feature_rows) if feature_rows else None,
    )


def cohort_time_attention(model, dataset, batch_size=64):
    """Figure 8 data: per-patient and mean β for survivors vs non-survivors.

    Returns a dict with keys ``"survivor"`` and ``"non_survivor"``, each a
    dict holding ``"per_patient"`` (n, T-1) and ``"mean"`` (T-1,).
    """
    extract = extract_attention(model, dataset, batch_size=batch_size,
                                with_feature=False)
    if extract.time is None:
        raise ValueError("model exposes no time-level attention")
    labels = dataset.labels("mortality")
    result = {}
    for name, group_value in (("survivor", 0), ("non_survivor", 1)):
        rows = extract.time[labels == group_value]
        result[name] = {
            "per_patient": rows,
            "mean": rows.mean(axis=0) if len(rows) else np.zeros(
                extract.time.shape[1]),
        }
    return result


def feature_attention_at(model, admission_values, ever_observed, hour,
                         features=None, feature_names=None):
    """Figure 9 data: the α grid restricted to chosen features at one hour.

    Parameters
    ----------
    model:
        A trained ELDA-Net (with the feature module).
    admission_values:
        Array (T, C) — one admission, standardized and imputed.
    ever_observed:
        Boolean (C,) for the admission.
    hour:
        Time index to inspect.
    features:
        Feature names to keep (rows *and* columns); all when ``None``.
    feature_names:
        Full schema names; defaults to the standard 37-feature schema.

    Returns
    -------
    ``(matrix, names)`` where ``matrix[i, j]`` is the attention feature
    ``names[i]`` pays to its interaction with ``names[j]`` (row-wise
    percentages re-normalized over the kept columns).
    """
    from ..data.schema import FEATURE_NAMES
    feature_names = feature_names or FEATURE_NAMES
    model.eval()
    with nn.no_grad():
        _, attention = model(admission_values[None],
                             ever_observed=np.asarray(ever_observed)[None],
                             return_attention=True)
    model.train()
    alpha = attention["feature"].data[0, hour]          # (C, C)
    if features is None:
        return alpha, list(feature_names)
    idx = [feature_index(name) for name in features]
    sub = alpha[np.ix_(idx, idx)].copy()
    np.fill_diagonal(sub, 0.0)
    row_sums = sub.sum(axis=1, keepdims=True)
    row_sums[row_sums == 0] = 1.0
    return sub / row_sums, list(features)


def interaction_trace(model, admission_values, ever_observed, anchor,
                      partners):
    """Figure 10 data: attention of ``anchor``'s interactions over time.

    Returns a dict ``partner name -> (T,) attention trace`` — the weight
    the anchor feature pays to its interaction with each partner at every
    hour.
    """
    model.eval()
    with nn.no_grad():
        _, attention = model(admission_values[None],
                             ever_observed=np.asarray(ever_observed)[None],
                             return_attention=True)
    model.train()
    alpha = attention["feature"].data[0]                # (T, C, C)
    row = feature_index(anchor)
    return {name: alpha[:, row, feature_index(name)] for name in partners}


def modify_feature_to_normal(admission_values, feature):
    """Controlled experiment: rewrite one feature to the population normal.

    On standardized data the population normal is 0; the paper's Figure 9b
    rewrites Patient A's Lactate this way and shows the attention paid to
    Lactate-related features collapsing to an average level.

    Returns a modified copy of the (T, C) value matrix.
    """
    modified = np.array(admission_values, copy=True)
    modified[:, feature_index(feature)] = 0.0
    return modified
