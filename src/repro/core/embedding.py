"""Embedding modules for numerical medical features (paper Section IV-B).

The paper's Bi-directional Embedding Module (Eq. 2) interpolates between
two learned per-feature embedding matrices anchored at a lower bound ``a``
and an upper bound ``b`` of the standardized value range:

    e_i = ( V_i^a (x'_i - a) + V_i^b (b - x'_i) ) / (b - a)

Compared with the FM-style linear embedding ``e_i = V_i x'_i`` this (i)
keeps the embedding scale independent of the value scale, and (ii) maps a
standardized zero — "this lab is normal" — to an informative vector rather
than the zero vector.

Never-observed features (missingness type 3) are routed to a dedicated
embedding row ``V_i^m``.

The ablation variants from Section V-C are provided as drop-in classes:

* :class:`FMEmbedding` — the linear FM mechanism (``ELDA-Net-F_fm``);
* ``star=True`` on either class — replace the embedding of exact-zero
  standardized values with an all-ones vector (the ``*`` variants).
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.module import Module, Parameter

__all__ = ["BiDirectionalEmbedding", "FMEmbedding", "build_embedding"]

_ZERO_TOL = 1e-9


class _NumericEmbedding(Module):
    """Shared plumbing: missing-value routing and the ``*`` zero variant."""

    def __init__(self, num_features, embedding_size, star=False):
        super().__init__()
        self.num_features = num_features
        self.embedding_size = embedding_size
        self.star = star

    def _value_embedding(self, x):
        raise NotImplementedError

    def forward(self, x, ever_observed=None):
        """Embed standardized values.

        Parameters
        ----------
        x:
            Tensor (batch, time, features) of standardized, imputed values.
        ever_observed:
            Optional boolean array (batch, features); False selects the
            missing-feature embedding ``V^m`` for the whole admission.

        Returns
        -------
        Tensor (batch, time, features, embedding_size).
        """
        x = nn.as_tensor(x)
        embedded = self._value_embedding(x)
        # Both masks below flow through op-layer indicators (not raw
        # array math) so inference graph capture sees them recompute per
        # batch; the never-observed routing is branch-free for the same
        # reason (an all-false where is a bitwise identity).
        if self.star:
            zero = ops.reshape(ops.abs_lt(x, _ZERO_TOL), x.shape + (1,))
            ones = nn.Tensor(np.ones(embedded.shape))
            embedded = ops.where(zero, ones, embedded)
        if ever_observed is not None:
            ever = nn.as_tensor(ever_observed)
            never = ops.reshape(ops.abs_lt(ever, 0.5),
                                (ever.shape[0], 1, ever.shape[1], 1))
            missing = self.missing_table.reshape(
                1, 1, self.num_features, self.embedding_size)
            embedded = ops.where(never, missing, embedded)
        return embedded


class BiDirectionalEmbedding(_NumericEmbedding):
    """The paper's Bi-directional Embedding Module (Eq. 2).

    Parameters
    ----------
    num_features:
        Number of medical features ``|C|``.
    embedding_size:
        Embedding dimension ``e``.
    rng:
        Generator for weight initialization.
    lower, upper:
        The anchors ``a`` and ``b``; the paper uses (-3, 3).
    star:
        Enable the ``*`` ablation: all-ones embedding at standardized zero.
    """

    def __init__(self, num_features, embedding_size, rng,
                 lower=-3.0, upper=3.0, star=False):
        super().__init__(num_features, embedding_size, star=star)
        if not upper > lower:
            raise ValueError("upper bound must exceed lower bound")
        self.lower = lower
        self.upper = upper
        self.table_lower = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))
        self.table_upper = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))
        self.missing_table = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))

    def _value_embedding(self, x):
        span = self.upper - self.lower
        x_col = x.reshape(*x.shape, 1)
        toward_upper = (x_col - self.lower) * self.table_lower
        toward_lower = (self.upper - x_col) * self.table_upper
        return (toward_upper + toward_lower) / span


class FMEmbedding(_NumericEmbedding):
    """FM-style linear embedding ``e_i = V_i x'_i`` (ablation baseline).

    Inherits the missing-value routing so the comparison with the
    bi-directional module isolates the value-embedding mechanism only.
    """

    def __init__(self, num_features, embedding_size, rng, star=False):
        super().__init__(num_features, embedding_size, star=star)
        self.table = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))
        self.missing_table = Parameter(
            nn.init.glorot_uniform((num_features, embedding_size), rng))

    def _value_embedding(self, x):
        return x.reshape(*x.shape, 1) * self.table


def build_embedding(kind, num_features, embedding_size, rng, lower=-3.0,
                    upper=3.0):
    """Factory for the embedding variants named in the ablation study.

    ``kind`` is one of ``"bi"``, ``"bi*"``, ``"fm"``, ``"fm*"``.
    """
    star = kind.endswith("*")
    base = kind.rstrip("*")
    if base == "bi":
        return BiDirectionalEmbedding(num_features, embedding_size, rng,
                                      lower=lower, upper=upper, star=star)
    if base == "fm":
        return FMEmbedding(num_features, embedding_size, rng, star=star)
    raise ValueError(f"unknown embedding kind {kind!r}; "
                     "use 'bi', 'bi*', 'fm', or 'fm*'")
