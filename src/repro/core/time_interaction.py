"""Time-level Interaction Learning Module (paper Section IV-B, Eqs. 7-11).

A standard GRU summarizes the enriched sequence into hidden states
``h_1..h_T``; the module then forms explicit interactions between the last
step and every earlier step,

    s_iT = h_i ⊙ h_T                          (Eq. 8)
    β'_iT = (w^β)^T s_iT + b^β                (Eq. 9)
    β_iT  = softmax_i(β'_iT)                  (Eq. 10)
    g_T   = Σ_i β_iT s_iT                     (Eq. 11)

and returns the comprehensive representation ``h̃_T = [h_T; g_T]``.  The β
weights are the time-level interpretability signal of Figure 8.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.layers import GRU
from ..nn.module import Module, Parameter

__all__ = ["TimeInteractionModule"]


class TimeInteractionModule(Module):
    """GRU encoder plus explicit last-step/earlier-step interactions.

    Parameters
    ----------
    input_size:
        Dimension of each x̃_t (``|C| * d`` after feature interactions).
    hidden_size:
        GRU hidden size ``l``.
    rng:
        Generator for weight initialization.
    """

    def __init__(self, input_size, hidden_size, rng):
        super().__init__()
        self.hidden_size = hidden_size
        self.gru = GRU(input_size, hidden_size, rng)
        self.attn_weight = Parameter(
            nn.init.glorot_uniform((hidden_size, 1), rng))
        self.attn_bias = Parameter(np.zeros(1))

    def forward(self, sequence, return_attention=False):
        """Encode a sequence and fuse time-level interactions.

        Parameters
        ----------
        sequence:
            Tensor (batch, time, input_size).
        return_attention:
            Also return β of shape (batch, time-1): the attention on the
            interaction between each earlier step and the last step.

        Returns
        -------
        Tensor (batch, 2 * hidden_size) — ``[h_T; g_T]`` — and optionally β.
        """
        return self.tail(self.gru(sequence), return_attention)

    def tail(self, states, return_attention=False):
        """The interaction-attention readout over encoded states.

        Split from :meth:`forward` so the streaming path can feed hidden
        states accumulated step by step through the GRU's
        ``stream_step`` hook instead of re-encoding the whole prefix.
        Raises on single-step prefixes (no earlier states to interact
        with) — the streaming session keeps the buffered observation and
        serves it once a second step arrives.
        """
        last = states[:, -1, :]                        # h_T
        earlier = states[:, :-1, :]                    # h_1..h_{T-1}
        interactions = earlier * last.reshape(-1, 1, self.hidden_size)
        scores = ops.matmul(interactions, self.attn_weight) + self.attn_bias
        beta = ops.softmax(scores, axis=1)             # (B, T-1, 1)
        summary = ops.sum(beta * interactions, axis=1)  # g_T
        fused = ops.concat([last, summary], axis=-1)
        if return_attention:
            return fused, beta.reshape(beta.shape[0], beta.shape[1])
        return fused
