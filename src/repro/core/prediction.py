"""Prediction Module (paper Section IV-B, Eq. 12).

A linear head on the comprehensive patient representation.  Binary tasks
(mortality, LOS > 7 days) use a single logit + sigmoid; the module also
supports a multi-class softmax head as a natural extension for tasks like
phenotyping.
"""

from __future__ import annotations

from ..nn.backend import xp as np

from .. import nn
from ..nn import ops
from ..nn.module import Module, Parameter

__all__ = ["PredictionModule"]


class PredictionModule(Module):
    """Linear classification head.

    Parameters
    ----------
    input_size:
        Size of the patient representation ``h̃_T``.
    rng:
        Generator for weight initialization.
    num_classes:
        1 for binary classification (sigmoid over a single logit);
        > 1 for multi-class (softmax).
    """

    def __init__(self, input_size, rng, num_classes=1):
        super().__init__()
        self.num_classes = num_classes
        out = 1 if num_classes == 1 else num_classes
        self.weight = Parameter(nn.init.glorot_uniform((input_size, out), rng))
        self.bias = Parameter(np.zeros(out))

    def logits(self, representation):
        """Raw scores before the output nonlinearity."""
        out = ops.matmul(representation, self.weight) + self.bias
        if self.num_classes == 1:
            return out.reshape(-1)
        return out

    def forward(self, representation):
        """Class probabilities: sigmoid (binary) or softmax (multi-class)."""
        raw = self.logits(representation)
        if self.num_classes == 1:
            return ops.sigmoid(raw)
        return ops.softmax(raw, axis=-1)
