"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``stats``
    Print Table-I-style statistics for a cohort, or (``--shards DIR``)
    for a sharded store from its manifest metadata alone.
``shard``
    Generate a deterministic sharded cohort store (manifest.json +
    per-shard ``.npy`` arrays) for out-of-core training; see
    docs/DATA.md for the layout and determinism contract.
``train``
    Train a model on a cohort/task, print test metrics, optionally save
    the weights.  ``--run-dir`` makes the run durable (config.json,
    metrics.jsonl, checkpoints/) and ``--resume`` continues an
    interrupted run from its last checkpoint.  ``--shards DIR`` streams
    batches out-of-core from a sharded store instead of materializing a
    cohort in memory.
``compare``
    Train several models on one (cohort, task) cell and print the
    Figure-6-style metrics table.
``interpret``
    Train ELDA-Net and print Patient A's feature-level attention grid at
    a chosen hour (the Figure 9 analysis).
``bench``
    Profile a training run with the per-op profiler (repro.bench), print
    the sorted forward/backward timing table, and write a
    ``BENCH_*.json`` report (see docs/PERFORMANCE.md).  ``--shards DIR``
    instead benchmarks out-of-core training (throughput + peak RSS,
    profiler off).
``predict``
    Load a trained run directory (``--run-dir`` from ``train``) into a
    ``repro.serve.Predictor`` and print per-admission probabilities for
    a cohort split — bit-identical to the training-time evaluation pass.
``serve``
    Run the micro-batched inference runtime against a trained run
    directory under a synthetic multi-client request load; print serving
    metrics (throughput, p50/p95 latency, batch-size histogram, cache
    hit rate) and write a ``SERVE_*.json`` report (see docs/SERVING.md).

Every command accepts ``--scale {small,medium,paper}``; the default
follows the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import argparse
import sys

from .nn.backend import xp as np

__all__ = ["main", "build_parser"]


def build_parser():
    """Construct the argparse parser for the ``repro`` CLI."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ELDA reproduction command-line interface")
    parser.add_argument("--scale", choices=("small", "medium", "paper"),
                        default=None, help="protocol scale (default: "
                        "REPRO_SCALE env var, then 'small')")
    parser.add_argument("--debug-anomaly", action="store_true",
                        help="train under NaN/Inf anomaly detection: the "
                        "first non-finite forward value or gradient raises "
                        "naming the offending op")
    commands = parser.add_subparsers(dest="command", required=True)

    stats = commands.add_parser("stats", help="print dataset statistics")
    stats.add_argument("--cohort", default="physionet2012",
                       choices=("physionet2012", "mimic3"))
    stats.add_argument("--shards", default=None, metavar="DIR",
                       help="print statistics for a sharded store "
                       "(manifest metadata only, no array loads)")

    shard = commands.add_parser(
        "shard", help="generate a deterministic sharded cohort store")
    shard.add_argument("--out", required=True, metavar="DIR",
                       help="destination store directory (must not "
                       "already hold a manifest.json)")
    shard.add_argument("--cohort", default="physionet2012",
                       choices=("physionet2012", "mimic3"))
    shard.add_argument("--admissions", type=int, required=True,
                       help="total cohort size")
    shard.add_argument("--shard-size", type=int, default=4096,
                       help="admissions per shard (last may be short)")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument("--workers", type=int, default=1,
                       help="generation worker processes (any count "
                       "yields byte-identical shards)")
    shard.add_argument("--dtype", default="float32",
                       choices=("float32", "float64"),
                       help="on-disk dtype of the raw value arrays")

    train = commands.add_parser("train", help="train one model")
    train.add_argument("--model", default="ELDA-Net")
    train.add_argument("--cohort", default="physionet2012",
                       choices=("physionet2012", "mimic3"))
    train.add_argument("--shards", default=None, metavar="DIR",
                       help="train out-of-core from a sharded store "
                       "(overrides --cohort; see `repro shard`)")
    train.add_argument("--val-shards", type=int, default=1, metavar="K",
                       help="with --shards, hold out the last K shards "
                       "as the validation split")
    train.add_argument("--task", default="mortality",
                       choices=("mortality", "los"))
    train.add_argument("--epochs", type=int, default=None,
                       help="override the scale preset's epoch budget")
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--save", default=None, metavar="PATH",
                       help="save trained weights to an .npz file")
    train.add_argument("--run-dir", default=None, metavar="DIR",
                       help="durable run directory: config.json, "
                       "metrics.jsonl, and checkpoints/ (enables --resume)")
    train.add_argument("--resume", action="store_true",
                       help="resume from DIR/checkpoints/last (weights, "
                       "optimizer moments, RNG state, epoch counter)")
    train.add_argument("--checkpoint-every", type=int, default=0,
                       metavar="K", help="with --run-dir, keep a permanent "
                       "checkpoint every K epochs (0 = last/best only)")

    compare = commands.add_parser("compare", help="compare several models")
    compare.add_argument("--models", nargs="+",
                         default=["LR", "GRU", "Dipole_l", "ELDA-Net"])
    compare.add_argument("--cohort", default="physionet2012",
                         choices=("physionet2012", "mimic3"))
    compare.add_argument("--task", default="mortality",
                         choices=("mortality", "los"))

    interpret = commands.add_parser(
        "interpret", help="print Patient A's attention grid")
    interpret.add_argument("--hour", type=int, default=13)
    interpret.add_argument("--epochs", type=int, default=None)

    bench = commands.add_parser(
        "bench", help="profile a training run per-op and write BENCH_*.json")
    bench.add_argument("--model", default="GRU")
    bench.add_argument("--task", default="mortality",
                       choices=("mortality", "los"))
    bench.add_argument("--epochs", type=int, default=2)
    bench.add_argument("--admissions", type=int, default=64)
    bench.add_argument("--batch-size", type=int, default=32)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--shards", default=None, metavar="DIR",
                       help="benchmark out-of-core training from a "
                       "sharded store (throughput + peak RSS; no "
                       "per-op profiler)")
    bench.add_argument("--val-shards", type=int, default=1, metavar="K",
                       help="with --shards, validation shards to hold out")
    bench.add_argument("--streaming", action="store_true",
                       help="benchmark streaming inference (full prefix "
                            "recompute vs StreamingSession.step per "
                            "observation) instead of training")
    bench.add_argument("--capture", action="store_true",
                       help="benchmark inference graph capture instead of "
                            "training: eager vs replay latency at several "
                            "batch sizes")
    bench.add_argument("--batch-sizes", default="1,32,64", metavar="LIST",
                       help="comma-separated forward batch sizes for the "
                            "--capture lane")
    bench.add_argument("--repeats", type=int, default=30,
                       help="timed iterations per --capture lane")
    bench.add_argument("--unfused", action="store_true",
                       help="run the unfused reference GRU kernels "
                       "(baseline for before/after comparisons)")
    bench.add_argument("--no-scan", action="store_true",
                       help="disable the sequence-fused scan kernels and "
                       "run the per-step path (the PR 5 configuration)")
    bench.add_argument("--bucket", action="store_true",
                       help="enable length-bucketed batching (also flips "
                       "the model mask-aware so the scan stops at each "
                       "bucket's max length)")
    bench.add_argument("--dtype", default=None,
                       choices=("float32", "float64"),
                       help="precision policy for the run (default: the "
                       "ambient policy / REPRO_DTYPE, normally float32)")
    bench.add_argument("--sort", default="total",
                       choices=("total", "forward", "backward", "self",
                                "calls", "bytes"))
    bench.add_argument("--top", type=int, default=15,
                       help="rows to print (the JSON always has all ops)")
    bench.add_argument("--out", default=".", metavar="DIR",
                       help="directory for the BENCH_*.json report")
    bench.add_argument("--no-json", action="store_true",
                       help="print the table only, write no report")

    predict = commands.add_parser(
        "predict", help="print probabilities from a trained run directory")
    predict.add_argument("--run-dir", required=True, metavar="DIR",
                         help="run directory from `repro train --run-dir`")
    predict.add_argument("--checkpoint", default="best",
                         choices=("best", "last"),
                         help="which checkpoint's weights to serve")
    predict.add_argument("--cohort", default="physionet2012",
                         choices=("physionet2012", "mimic3"))
    predict.add_argument("--split", default="test",
                         choices=("train", "validation", "test"))
    predict.add_argument("--capture", nargs="?", const="on",
                         choices=("on", "off", "auto"), default="auto",
                         help="captured graph replay: 'on'/'off' force and "
                              "persist the preference into the run dir; "
                              "'auto' (default) restores the run dir's "
                              "setting; bare --capture means 'on'")
    predict.add_argument("--limit", type=int, default=10, metavar="N",
                         help="print at most N rows (0 = all)")

    serve = commands.add_parser(
        "serve", help="micro-batched serving demo over a trained run dir")
    serve.add_argument("--run-dir", required=True, metavar="DIR",
                       help="run directory from `repro train --run-dir`")
    serve.add_argument("--checkpoint", default="best",
                       choices=("best", "last"))
    serve.add_argument("--requests", type=int, default=256,
                       help="total requests to serve")
    serve.add_argument("--clients", type=int, default=8,
                       help="concurrent client threads")
    serve.add_argument("--pool", type=int, default=64,
                       help="distinct admissions in the request stream "
                       "(repeats exercise the preprocessing cache)")
    serve.add_argument("--max-batch-size", type=int, default=None,
                       help="ServeConfig.max_batch_size (default: the run "
                            "dir's persisted serve block)")
    serve.add_argument("--max-wait-ms", type=float, default=None,
                       help="ServeConfig.max_wait_ms (default: persisted)")
    serve.add_argument("--capture", nargs="?", const="on",
                       choices=("on", "off", "auto"), default="auto",
                       help="captured graph replay: 'on'/'off' force and "
                            "persist the preference into the run dir; "
                            "'auto' (default) restores the run dir's "
                            "setting; bare --capture means 'on'")
    serve.add_argument("--cache-capacity", type=int, default=None,
                       help="ServeConfig.cache_capacity (default: persisted)")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--baseline", action="store_true",
                       help="also time the single-request path and "
                       "report the micro-batching speedup")
    serve.add_argument("--out", default=".", metavar="DIR",
                       help="directory for the SERVE_*.json report")
    serve.add_argument("--no-json", action="store_true",
                       help="print the summary only, write no report")

    loadtest = commands.add_parser(
        "loadtest", help="drive a replica pool and report latency "
                         "percentiles + throughput")
    loadtest.add_argument("--run-dir", required=True, metavar="DIR",
                          help="run directory from `repro train --run-dir`")
    loadtest.add_argument("--checkpoint", default="best",
                          choices=("best", "last"))
    loadtest.add_argument("--workers", type=int, default=None,
                          help="ServeConfig.workers: replica pool size "
                               "(default: the run dir's persisted serve "
                               "block)")
    loadtest.add_argument("--max-batch-size", type=int, default=None,
                          help="ServeConfig.max_batch_size (default: "
                               "persisted)")
    loadtest.add_argument("--deadline-ms", type=float, default=None,
                          help="ServeConfig.deadline_ms: per-request "
                               "deadline (default: persisted / disabled)")
    loadtest.add_argument("--queue-depth", type=int, default=None,
                          help="ServeConfig.queue_depth: in-flight bound "
                               "(default: persisted)")
    loadtest.add_argument("--cache-capacity", type=int, default=None,
                          help="ServeConfig.cache_capacity: per-worker "
                               "session store size (default: persisted)")
    loadtest.add_argument("--capture", nargs="?", const="on",
                          choices=("on", "off", "auto"), default="auto",
                          help="captured graph replay in the workers "
                               "('auto' restores the run dir's setting)")
    loadtest.add_argument("--requests", type=int, default=64,
                          help="stateless predict requests to send")
    loadtest.add_argument("--streams", type=int, default=8,
                          help="concurrent streaming admissions")
    loadtest.add_argument("--stream-steps", type=int, default=4,
                          help="observations per streaming admission")
    loadtest.add_argument("--concurrency", type=int, default=16,
                          help="client-side request concurrency")
    loadtest.add_argument("--max-seconds", type=float, default=120.0,
                          help="hard watchdog on the whole drive phase")
    loadtest.add_argument("--seed", type=int, default=0)
    loadtest.add_argument("--check-floor", default=None, metavar="PATH",
                          help="fail (exit 1) unless the report clears the "
                               "floor file (benchmarks/results/"
                               "pool_floor.json)")
    loadtest.add_argument("--out", default=".", metavar="DIR",
                          help="directory for the SERVE_*.json report")
    loadtest.add_argument("--no-json", action="store_true",
                          help="print the summary only, write no report")

    return parser


def _config(args):
    from .experiments import default_config
    config = default_config(args.scale)
    if getattr(args, "epochs", None):
        config.max_epochs = args.epochs
    return config


def _print_statistics(out, title, statistics):
    out.write(f"[{title}]\n")
    for key, value in statistics.items():
        formatted = f"{value:.4f}" if isinstance(value, float) else value
        out.write(f"  {key:<28} {formatted}\n")


def _cmd_stats(args, out):
    from .data import load_cohort
    if args.shards:
        from .data import ShardedDataset
        store = ShardedDataset.open(args.shards)
        _print_statistics(out, f"shards {args.shards} "
                          f"({store.num_shards} shards)",
                          store.statistics())
        return 0
    splits = load_cohort(args.cohort, scale=args.scale)
    for split_name, dataset in (("train", splits.train),
                                ("validation", splits.validation),
                                ("test", splits.test)):
        _print_statistics(out, f"{args.cohort} / {split_name}",
                          dataset.statistics())
    return 0


def _cmd_shard(args, out):
    from time import perf_counter

    from .data import generate_shards

    started = perf_counter()
    store = generate_shards(args.out, args.admissions, cohort=args.cohort,
                            shard_size=args.shard_size, seed=args.seed,
                            num_workers=args.workers, dtype=args.dtype)
    elapsed = perf_counter() - started
    total_bytes = sum(meta["bytes"] for entry in store.entries
                      for meta in entry["files"].values())
    out.write(f"sharded {args.cohort} cohort written to {args.out}\n")
    out.write(f"  admissions    : {len(store)}\n")
    out.write(f"  shards        : {store.num_shards} "
              f"(shard size {args.shard_size})\n")
    out.write(f"  dtype         : {args.dtype}\n")
    out.write(f"  seed          : {args.seed}\n")
    out.write(f"  bytes on disk : {total_bytes}\n")
    out.write(f"  generation    : {elapsed:.1f} s "
              f"({1e3 * elapsed / max(1, len(store)):.3f} ms/admission, "
              f"{args.workers} worker(s))\n")
    return 0


def _cmd_train(args, out):
    from .baselines import build_model
    from .data import NUM_FEATURES, load_cohort
    from .nn.serialization import save_weights
    from .train import Trainer

    if args.resume and not args.run_dir:
        raise SystemExit("--resume requires --run-dir")
    config = _config(args)
    if args.shards:
        # Out-of-core path: train/validation are shard views streamed by
        # the ShardedDataLoader; the held-out validation view doubles as
        # the reported test split (a sharded store has no 80/10/10).
        from .data import ShardedDataset
        store = ShardedDataset.open(args.shards)
        train_data, val_data = store.split(val_shards=args.val_shards)
        test_data = val_data
        standardizer = train_data.standardizer
        num_features = store.num_features
        source = f"shards:{args.shards}"
    else:
        splits = load_cohort(args.cohort, scale=args.scale,
                             fractions=config.fractions)
        train_data, val_data = splits.train, splits.validation
        test_data = splits.test
        standardizer = splits.standardizer
        num_features = NUM_FEATURES
        source = args.cohort
    model = build_model(args.model, num_features,
                        np.random.default_rng(args.seed))
    run_kwargs = {}
    if args.run_dir:
        run_kwargs = dict(run_dir=args.run_dir,
                          checkpoint_every=args.checkpoint_every)
    trainer = Trainer(model, args.task, anomaly_mode=args.debug_anomaly,
                      **run_kwargs, **config.trainer_kwargs(args.seed))
    if args.resume:
        history = trainer.fit(train_data, val_data, resume=True)
    else:
        history = trainer.fit(train_data, val_data)
    metrics = trainer.evaluate(test_data)
    out.write(f"{args.model} on {source}/{args.task}: "
              f"{history.num_epochs} epochs "
              f"(best {history.best_epoch})\n")
    if args.run_dir:
        # Persist the train-split preprocessing statistics next to the
        # checkpoints so `repro serve` can score raw admissions through
        # the exact training pipeline (repro.serve.PreprocessCache).
        from pathlib import Path
        standardizer.save(Path(args.run_dir) / "standardizer.npz")
        out.write(f"  run dir : {args.run_dir}\n")
    out.write(f"  params  : {model.num_parameters()}\n")
    out.write(f"  BCE     : {metrics['bce']:.4f}\n")
    out.write(f"  AUC-ROC : {metrics['auc_roc']:.4f}\n")
    out.write(f"  AUC-PR  : {metrics['auc_pr']:.4f}\n")
    if args.save:
        save_weights(model, args.save)
        out.write(f"  weights saved to {args.save}\n")
    return 0


def _cmd_compare(args, out):
    from .experiments import format_metric, render_table, run_grid
    config = _config(args)
    results = run_grid(tuple(args.models), args.cohort, args.task, config)
    rows = [[name, str(m["params"]), format_metric(m["bce"]),
             format_metric(m["auc_roc"]), format_metric(m["auc_pr"])]
            for name, m in results.items()]
    out.write(render_table(
        ["model", "params", "BCE", "AUC-ROC", "AUC-PR"], rows,
        title=f"{args.cohort} / {args.task}") + "\n")
    return 0


def _cmd_interpret(args, out):
    from .experiments import (ESSENTIAL_FEATURES, patient_a_processed,
                              trained_model)
    from .core.interpret import feature_attention_at

    config = _config(args)
    model, splits, metrics = trained_model("ELDA-Net", "physionet2012",
                                           "mortality", config, seed=0)
    values, ever_observed, _ = patient_a_processed(splits.standardizer)
    grid, names = feature_attention_at(model, values, ever_observed,
                                       args.hour,
                                       features=ESSENTIAL_FEATURES)
    out.write(f"Patient A feature-level attention at hour {args.hour} "
              f"(model AUC-ROC {metrics['auc_roc']:.3f}):\n")
    width = max(len(n) for n in names)
    out.write(" " * (width + 2)
              + "  ".join(f"{n:>7}" for n in names) + "\n")
    for i, name in enumerate(names):
        row = "  ".join(f"{grid[i, j] * 100:6.1f}%"
                        for j in range(len(names)))
        out.write(f"{name:<{width}}  {row}\n")
    return 0


def _cmd_bench(args, out):
    from .bench.runner import benchmark_training

    if args.shards:
        return _cmd_bench_shards(args, out)
    if args.capture:
        return _cmd_bench_capture(args, out)
    if args.streaming:
        return _cmd_bench_streaming(args, out)
    result = benchmark_training(
        model_name=args.model, task=args.task, epochs=args.epochs,
        num_admissions=args.admissions, batch_size=args.batch_size,
        seed=args.seed, fused=not args.unfused,
        fused_scan=not args.no_scan, bucket_by_length=args.bucket,
        dtype=args.dtype)
    profiler = result["profiler"]
    config = result["config"]
    kernel = "unfused reference" if args.unfused else (
        "per-step fused" if args.no_scan else "sequence-fused scan")
    batching = "bucketed" if args.bucket else "padded"
    out.write(f"{args.model} on synthetic/{args.task}: "
              f"{config['epochs']} epochs, batch {config['batch_size']} "
              f"({batching}), {kernel} kernels, {config['dtype']}\n")
    out.write(f"  params        : {config['num_parameters']}\n")
    out.write(f"  sec/batch     : {result['seconds_per_batch']:.4f}\n")
    out.write(f"  steps/sec     : {result['steps_per_sec']:.2f}\n")
    out.write(f"  bytes/step    : {config['allocated_bytes_per_step']}\n")
    out.write(f"  peak grad     : {config['peak_grad_bytes']} bytes\n\n")
    out.write(profiler.table(sort_by=args.sort, limit=args.top) + "\n")
    if not args.no_json:
        extra = dict(config)
        extra["steps_per_sec"] = result["steps_per_sec"]
        extra["seconds_per_batch"] = result["seconds_per_batch"]
        path = profiler.save(directory=args.out, extra=extra)
        out.write(f"\nreport written to {path}\n")
    return 0


def _cmd_bench_capture(args, out):
    """``repro bench --capture``: eager vs replay inference latency.

    Captures one graph per batch size, checks bit-identity against the
    eager forward, and reports median steady-state latency per path.
    """
    import json
    import time
    from pathlib import Path

    from .bench.report import _slug
    from .bench.runner import benchmark_capture

    batch_sizes = tuple(int(b) for b in str(args.batch_sizes).split(",") if b)
    result = benchmark_capture(
        model_name=args.model, num_admissions=args.admissions,
        seed=args.seed, batch_sizes=batch_sizes, repeats=args.repeats,
        dtype=args.dtype)
    config = result["config"]
    out.write(f"{args.model} inference capture ({config['dtype']}, "
              f"{config['captured_thunks']} replay thunks for "
              f"{config['captured_steps']} traced ops)\n")
    out.write("  batch    eager ms   replay ms   speedup\n")
    for batch_size, lane in sorted(result["lanes"].items()):
        out.write(f"  {batch_size:>5}  {lane['eager_seconds'] * 1e3:9.3f}  "
                  f"{lane['replay_seconds'] * 1e3:10.3f}  "
                  f"{lane['speedup']:6.2f}x\n")
    if not args.no_json:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        payload = dict(config)
        payload["lanes"] = {str(k): v for k, v in result["lanes"].items()}
        payload["created"] = stamp
        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_capture-{_slug(args.model)}_{stamp}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        out.write(f"report written to {path}\n")
    return 0


def _cmd_bench_streaming(args, out):
    """``repro bench --streaming``: recompute vs streaming step latency.

    Verifies bit-identity at every prefix first, then times both lanes
    over the same observations.
    """
    import json
    import time
    from pathlib import Path

    from .bench.report import _slug
    from .bench.runner import benchmark_streaming

    result = benchmark_streaming(
        model_name=args.model, num_admissions=args.admissions,
        seed=args.seed, repeats=args.repeats, dtype=args.dtype)
    config = result["config"]
    if result["native"]:
        mode = "native O(1) state"
    elif result["incremental"]:
        mode = "incremental attention state"
    else:
        mode = "exact prefix replay"
    out.write(f"{args.model} streaming inference ({config['dtype']}, "
              f"{config['num_steps']} steps, {mode})\n")
    out.write(f"  recompute/step: "
              f"{result['recompute_seconds_per_step'] * 1e3:.3f} ms\n")
    out.write(f"  streaming/step: "
              f"{result['streaming_seconds_per_step'] * 1e3:.3f} ms\n")
    out.write(f"  speedup       : {result['speedup']:.2f}x\n")
    if not args.no_json:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        payload = dict(config)
        payload.update(
            native=result["native"],
            incremental=result["incremental"],
            recompute_seconds_per_step=result["recompute_seconds_per_step"],
            streaming_seconds_per_step=result["streaming_seconds_per_step"],
            speedup=result["speedup"],
            created=stamp,
        )
        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_streaming-{_slug(args.model)}_{stamp}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        out.write(f"report written to {path}\n")
    return 0


def _cmd_bench_shards(args, out):
    """``repro bench --shards DIR``: out-of-core throughput + peak RSS.

    The per-op profiler stays off here — its bookkeeping would inflate
    both timings and the resident-set high-water mark that the sharded
    benchmark exists to measure.
    """
    import json
    import time
    from pathlib import Path

    from .bench.report import _slug
    from .bench.runner import benchmark_sharded_training

    result = benchmark_sharded_training(
        shards_dir=args.shards, model_name=args.model, task=args.task,
        epochs=args.epochs, batch_size=args.batch_size, seed=args.seed,
        val_shards=args.val_shards, bucket_by_length=args.bucket,
        fused=not args.unfused, fused_scan=not args.no_scan,
        dtype=args.dtype)
    config = result["config"]
    out.write(f"{args.model} on {args.shards}/{args.task}: "
              f"{config['epochs']} epoch(s), batch {config['batch_size']} "
              f"({'bucketed' if args.bucket else 'padded'}), "
              f"{config['dtype']}, streaming\n")
    out.write(f"  admissions    : {config['num_admissions']} "
              f"({config['num_shards']} shards, "
              f"{config['val_shards']} held out)\n")
    out.write(f"  params        : {config['num_parameters']}\n")
    out.write(f"  open          : {result['open_seconds']:.2f} s\n")
    out.write(f"  fit           : {result['fit_seconds']:.1f} s\n")
    out.write(f"  sec/batch     : {result['seconds_per_batch']:.4f}\n")
    out.write(f"  steps/sec     : {result['steps_per_sec']:.2f}\n")
    out.write(f"  peak RSS      : {result['max_rss_bytes'] / 2**20:.1f} "
              "MiB\n")
    if not args.no_json:
        stamp = time.strftime("%Y%m%d-%H%M%S")
        payload = dict(config)
        payload.update(
            steps_per_sec=result["steps_per_sec"],
            seconds_per_batch=result["seconds_per_batch"],
            open_seconds=result["open_seconds"],
            fit_seconds=result["fit_seconds"],
            max_rss_bytes=result["max_rss_bytes"],
            created=stamp,
        )
        directory = Path(args.out)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"BENCH_shards-{_slug(args.model)}_{stamp}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        out.write(f"report written to {path}\n")
    return 0


def _capture_override(value):
    """Map the tri-state ``--capture {on,off,auto}`` flag to bool-or-None."""
    return {"on": True, "off": False, "auto": None}[value]


def _serve_config_overrides(args, *fields):
    """ServeConfig overrides explicitly given on the command line.

    Flags default to ``None`` so the run directory's persisted ``serve``
    block stays authoritative unless the user says otherwise; the
    tri-state ``--capture`` contributes only when not ``auto``.
    """
    overrides = {name: getattr(args, name) for name in fields
                 if getattr(args, name) is not None}
    capture = _capture_override(args.capture)
    if capture is not None:
        overrides["capture"] = capture
    return overrides


def _resolve_serve_config(args, *fields):
    """The effective ServeConfig for a run-dir command, or ``None``.

    ``None`` means "no explicit choice" — ``Predictor.load`` (and the
    pool) then restore the persisted block without rewriting it.
    """
    import json as json_module
    from pathlib import Path

    from .serve import ServeConfig

    overrides = _serve_config_overrides(args, *fields)
    if not overrides:
        return None
    config_path = Path(args.run_dir) / "config.json"
    base = ServeConfig()
    if config_path.exists():
        base = ServeConfig.from_run_config(
            json_module.loads(config_path.read_text()))
    return base.replace(**overrides)


def _cmd_predict(args, out):
    from .data import load_cohort
    from .serve import Predictor

    predictor = Predictor.load(args.run_dir, checkpoint=args.checkpoint,
                               config=_resolve_serve_config(args))
    splits = load_cohort(args.cohort, scale=args.scale)
    dataset = getattr(splits, args.split)
    probabilities = predictor.predict_proba(dataset)
    labels = predictor.predict(dataset)
    spec = predictor.spec
    out.write(f"{spec.name if spec else '?'} from {args.run_dir} "
              f"({args.checkpoint} checkpoint) on "
              f"{args.cohort}/{args.split}: {len(dataset)} admissions\n")
    limit = len(dataset) if args.limit == 0 else min(args.limit, len(dataset))
    for i in range(limit):
        if probabilities.ndim == 1:
            out.write(f"  admission {i:>4}  p={probabilities[i]:.6f}  "
                      f"label={labels[i]}\n")
        else:
            row = " ".join(f"{p:.4f}" for p in probabilities[i])
            out.write(f"  admission {i:>4}  p=[{row}]  label={labels[i]}\n")
    if limit < len(dataset):
        out.write(f"  ... ({len(dataset) - limit} more; --limit 0 for all)\n")
    return 0


def _cmd_serve(args, out):
    import threading
    from pathlib import Path
    from time import perf_counter

    from .data import SyntheticEMRGenerator
    from .data.preprocess import Standardizer
    from .serve import MicroBatcher, Predictor, PreprocessCache, ServeMetrics

    metrics = ServeMetrics(label=f"serve-{Path(args.run_dir).name}")
    predictor = Predictor.load(
        args.run_dir, checkpoint=args.checkpoint, metrics=metrics,
        config=_resolve_serve_config(args, "max_batch_size", "max_wait_ms",
                                     "cache_capacity"))
    standardizer_path = Path(args.run_dir) / "standardizer.npz"
    if not standardizer_path.exists():
        raise SystemExit(f"no standardizer.npz under {args.run_dir}; "
                         "re-train with `repro train --run-dir` to produce "
                         "a servable run directory")
    cache = PreprocessCache(Standardizer.load(standardizer_path),
                            predictor.config, metrics=metrics)

    # Synthetic request stream: `--requests` lookups cycling over a pool
    # of `--pool` distinct admissions (repeat traffic -> cache hits).
    generator = SyntheticEMRGenerator()
    pool = generator.sample_many(args.pool,
                                 np.random.default_rng(args.seed))
    request_ids = [i % args.pool for i in range(args.requests)]

    single_seconds = None
    if args.baseline:
        probe = [cache.get(i, pool[i].values) for i in range(args.pool)]
        started = perf_counter()
        for row in probe:
            predictor.predict_logits(row)
        single_seconds = (perf_counter() - started) / len(probe)

    spec = predictor.spec
    serve_config = predictor.config
    out.write(f"serving {spec.name if spec else '?'} from {args.run_dir}: "
              f"{args.requests} requests, {args.clients} clients, "
              f"max batch {serve_config.max_batch_size}, "
              f"max wait {serve_config.max_wait_ms:.1f} ms\n")

    errors = []
    started = perf_counter()
    with MicroBatcher(predictor, serve_config, metrics=metrics) as batcher:
        def client(worker_index):
            for request_index in range(worker_index, args.requests,
                                       args.clients):
                admission_id = request_ids[request_index]
                try:
                    row = cache.get(admission_id,
                                    pool[admission_id].values)
                    batcher.predict_proba(row, timeout=60)
                except Exception as error:  # surfaced after the run
                    errors.append(error)
                    return

        threads = [threading.Thread(target=client, args=(k,))
                   for k in range(args.clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    elapsed = perf_counter() - started
    if errors:
        raise SystemExit(f"serving failed: {errors[0]!r}")

    throughput = args.requests / elapsed
    out.write(metrics.table() + "\n")
    out.write(f"throughput      : {throughput:.1f} req/s\n")
    extra = {
        "run_dir": str(args.run_dir),
        "model": spec.name if spec else None,
        "requests": args.requests,
        "clients": args.clients,
        "max_batch_size": serve_config.max_batch_size,
        "max_wait_ms": serve_config.max_wait_ms,
        "throughput_req_per_sec": throughput,
    }
    if single_seconds is not None:
        speedup = throughput * single_seconds
        out.write(f"single-request  : {1.0 / single_seconds:.1f} req/s "
                  f"(micro-batching speedup {speedup:.1f}x)\n")
        extra["single_request_req_per_sec"] = 1.0 / single_seconds
        extra["speedup"] = speedup
    if not args.no_json:
        path = metrics.save(directory=args.out, extra=extra)
        out.write(f"report written to {path}\n")
    return 0


def _cmd_loadtest(args, out):
    from .serve import check_floor, run_loadtest

    config = _resolve_serve_config(
        args, "workers", "max_batch_size", "deadline_ms", "queue_depth",
        "cache_capacity")
    report = run_loadtest(
        args.run_dir, checkpoint=args.checkpoint, config=config,
        num_requests=args.requests, num_streams=args.streams,
        stream_steps=args.stream_steps, concurrency=args.concurrency,
        max_seconds=args.max_seconds, seed=args.seed,
        out_dir=None if args.no_json else args.out)

    latency = report["latency_ms"]
    workers = report["workers"]
    out.write(f"loadtest over {args.run_dir}: {report['requests']} predicts "
              f"+ {report['stream_sessions']} streams x "
              f"{args.stream_steps} steps, "
              f"{workers['configured']} workers\n")
    out.write(f"  p50 latency   : {latency['p50']:.2f} ms\n")
    out.write(f"  p95 latency   : {latency['p95']:.2f} ms\n")
    out.write(f"  p99 latency   : {latency['p99']:.2f} ms\n")
    out.write(f"  throughput    : {report['throughput_rps']:.1f} req/s\n")
    out.write(f"  worker pids   : {len(workers['observed_pids'])} of "
              f"{len(workers['pids'])} answered "
              f"({' '.join(str(p) for p in workers['observed_pids'])})\n")
    if report["deadline_misses"]:
        out.write(f"  deadline miss : {report['deadline_misses']}\n")
    if report["errors"]:
        out.write(f"  errors        : {len(report['errors'])} "
                  f"(first: {report['errors'][0]})\n")
    if "report_path" in report:
        out.write(f"report written to {report['report_path']}\n")
    if args.check_floor:
        violations = check_floor(report, args.check_floor)
        if violations:
            for violation in violations:
                out.write(f"FLOOR VIOLATION: {violation}\n")
            return 1
        out.write(f"floor {args.check_floor} holds\n")
    return 0


_COMMANDS = {
    "stats": _cmd_stats,
    "shard": _cmd_shard,
    "train": _cmd_train,
    "compare": _cmd_compare,
    "interpret": _cmd_interpret,
    "bench": _cmd_bench,
    "predict": _cmd_predict,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
}


def main(argv=None, out=None):
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args, out)


if __name__ == "__main__":
    raise SystemExit(main())
