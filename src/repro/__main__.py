"""``python -m repro`` dispatches to the CLI."""

from .cli import main

raise SystemExit(main())
