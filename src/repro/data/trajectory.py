"""Latent severity trajectories for simulated ICU admissions.

Each admission carries a latent severity process ``s_t >= 0`` over the 48
hourly steps.  The process captures the clinical narrative the paper's
interpretability study relies on:

* admissions start at an archetype-dependent severity and tend to improve
  under treatment (downward drift);
* a subset of admissions suffers an *acute late event* — a jump in severity
  somewhere in the stay followed by upward drift.  These are the patients
  whose "crucial time steps" ELDA's time-level attention should highlight
  (Figure 8), and they dominate the non-survivor group;
* mortality and LOS labels are computed from the trajectory with extra
  weight on the late portion, making *when* deterioration happens
  informative, not just how bad it gets.

Feature values are later derived from severity via archetype deviation
vectors plus the global illness loadings below.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import NUM_FEATURES, feature_index

__all__ = ["SeverityTrajectory", "sample_trajectory", "GLOBAL_LOADINGS",
           "global_loading_vector"]

#: Feature shifts (z-units at severity 1) that apply to *every* sick patient
#: regardless of archetype — the physiology of generally being unwell.
GLOBAL_LOADINGS = {
    "GCS": -0.9,
    "HR": 0.4,
    "RespRate": 0.35,
    "MAP": -0.3,
    "Urine": -0.35,
    "Albumin": -0.25,
    "Platelets": -0.2,
    "HCO3": -0.2,
}


def global_loading_vector():
    """Dense per-feature vector of the global illness loadings."""
    vec = np.zeros(NUM_FEATURES)
    for name, shift in GLOBAL_LOADINGS.items():
        vec[feature_index(name)] = shift
    return vec


@dataclass
class SeverityTrajectory:
    """A sampled latent trajectory and its event metadata.

    Attributes
    ----------
    severity:
        Array of shape (T,), non-negative severity per hour.
    onset_hour:
        Hour at which the acute event begins, or ``None``.
    recovery_hour:
        Hour at which an acute event begins to resolve, or ``None``.
    had_late_event:
        Whether an acute late event was sampled.
    """

    severity: np.ndarray
    onset_hour: int | None
    recovery_hour: int | None
    had_late_event: bool

    @property
    def peak(self):
        return float(self.severity.max())

    @property
    def late_mean(self):
        """Mean severity over the final 8 hours (weighs recency)."""
        return float(self.severity[-8:].mean())

    @property
    def overall_mean(self):
        return float(self.severity.mean())

    def risk_score(self):
        """Scalar summary used in the label logits.

        Recency-weighted: the late window and the peak dominate, matching
        the clinical intuition that dying patients deteriorate and do not
        recover before the end of the observation window.
        """
        return 0.25 * self.overall_mean + 0.45 * self.late_mean + 0.30 * self.peak


def sample_trajectory(rng, steps, late_event_prob, initial_scale=1.0):
    """Sample one severity trajectory.

    Parameters
    ----------
    rng:
        ``numpy.random.Generator``.
    steps:
        Number of hourly steps (48 in the paper's setting).
    late_event_prob:
        Archetype-specific probability of an acute late event.
    initial_scale:
        Multiplier on the initial severity (used to vary case mix).

    Returns
    -------
    SeverityTrajectory
    """
    severity = np.empty(steps)
    level = max(0.05, rng.normal(0.9, 0.35)) * initial_scale
    recovery_rate = rng.uniform(0.010, 0.045)
    noise_scale = 0.06

    had_event = rng.random() < late_event_prob
    onset = None
    recovery = None
    if had_event:
        onset = int(rng.integers(int(steps * 0.25), int(steps * 0.92)))
        jump = rng.uniform(0.7, 1.6)
        # Roughly half of acute events get controlled before the window ends.
        if rng.random() < 0.5 and onset < steps - 10:
            recovery = int(rng.integers(onset + 5, steps - 2))

    post_event_drift = rng.uniform(0.01, 0.05)
    for t in range(steps):
        if had_event and t == onset:
            level += jump
        if had_event and onset <= t and (recovery is None or t < recovery):
            level += post_event_drift
        else:
            level -= recovery_rate * level
        level += rng.normal(0.0, noise_scale)
        level = max(level, 0.0)
        severity[t] = level

    return SeverityTrajectory(severity=severity, onset_hour=onset,
                              recovery_hour=recovery, had_late_event=had_event)
