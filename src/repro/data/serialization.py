"""Persist EMR datasets to disk as ``.npz`` archives.

Sampling a paper-scale cohort takes minutes; saving the model-ready
arrays lets experiment runs and notebooks reuse one materialized cohort.

:func:`load_dataset` materializes every array eagerly — that is its
job.  Callers that only need schema- or size-level information (how
many admissions, how many timesteps, which dtypes) should use
:func:`dataset_metadata`, which parses the ``.npy`` headers inside the
archive without decompressing or allocating any array payload; the
sharded data plane (:mod:`repro.data.shards`) takes the same idea
further with a manifest that is never backed by array reads at all.
"""

from __future__ import annotations

import zipfile

import numpy as np

from .dataset import EMRDataset

__all__ = ["save_dataset", "load_dataset", "dataset_metadata"]


def save_dataset(dataset, path):
    """Write an :class:`EMRDataset` to ``path`` (compressed npz)."""
    onset = np.array([-1 if h is None else h for h in dataset.onset_hours],
                     dtype=np.int64) if dataset.onset_hours else np.array([],
                                                                          dtype=np.int64)
    np.savez_compressed(
        path,
        values=dataset.values,
        mask=dataset.mask,
        ever_observed=dataset.ever_observed,
        deltas=dataset.deltas,
        mortality=dataset.mortality,
        long_stay=dataset.long_stay,
        archetypes=np.array(dataset.archetypes, dtype="U32"),
        onset_hours=onset,
        feature_names=np.array(dataset.feature_names, dtype="U32"),
    )


def dataset_metadata(path):
    """Shapes and dtypes of a saved dataset, without loading arrays.

    Reads only each archive member's ``.npy`` header (about a hundred
    bytes per array) straight through the zip stream — the array
    payloads are never decompressed, so inspecting a multi-gigabyte
    cohort file is effectively free.

    Returns a dict with ``"arrays"`` (name -> ``{"shape", "dtype"}``),
    plus the derived ``"admissions"``, ``"num_time_steps"``, and
    ``"num_features"`` of the ``values`` array.
    """
    arrays = {}
    with zipfile.ZipFile(path) as archive:
        for info in archive.infolist():
            name = info.filename
            if not name.endswith(".npy"):
                continue
            with archive.open(name) as member:
                version = np.lib.format.read_magic(member)
                if version == (1, 0):
                    shape, _, dtype = \
                        np.lib.format.read_array_header_1_0(member)
                else:
                    shape, _, dtype = \
                        np.lib.format.read_array_header_2_0(member)
            arrays[name[:-len(".npy")]] = {"shape": tuple(shape),
                                           "dtype": dtype.name}
    if "values" not in arrays:
        raise ValueError(f"{path} is not a saved EMRDataset "
                         "(no 'values' array)")
    shape = arrays["values"]["shape"]
    return {
        "arrays": arrays,
        "admissions": shape[0],
        "num_time_steps": shape[1],
        "num_features": shape[2],
    }


def load_dataset(path):
    """Load an :class:`EMRDataset` saved by :func:`save_dataset`."""
    with np.load(path) as archive:
        onset_raw = archive["onset_hours"]
        onset = [None if h < 0 else int(h) for h in onset_raw]
        return EMRDataset(
            values=archive["values"],
            mask=archive["mask"],
            ever_observed=archive["ever_observed"],
            deltas=archive["deltas"],
            mortality=archive["mortality"],
            long_stay=archive["long_stay"],
            archetypes=list(archive["archetypes"]),
            onset_hours=onset,
            feature_names=tuple(archive["feature_names"]),
        )
