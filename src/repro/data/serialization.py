"""Persist EMR datasets to disk as ``.npz`` archives.

Sampling a paper-scale cohort takes minutes; saving the model-ready
arrays lets experiment runs and notebooks reuse one materialized cohort.
"""

from __future__ import annotations

import numpy as np

from .dataset import EMRDataset

__all__ = ["save_dataset", "load_dataset"]


def save_dataset(dataset, path):
    """Write an :class:`EMRDataset` to ``path`` (compressed npz)."""
    onset = np.array([-1 if h is None else h for h in dataset.onset_hours],
                     dtype=np.int64) if dataset.onset_hours else np.array([],
                                                                          dtype=np.int64)
    np.savez_compressed(
        path,
        values=dataset.values,
        mask=dataset.mask,
        ever_observed=dataset.ever_observed,
        deltas=dataset.deltas,
        mortality=dataset.mortality,
        long_stay=dataset.long_stay,
        archetypes=np.array(dataset.archetypes, dtype="U32"),
        onset_hours=onset,
        feature_names=np.array(dataset.feature_names, dtype="U32"),
    )


def load_dataset(path):
    """Load an :class:`EMRDataset` saved by :func:`save_dataset`."""
    with np.load(path) as archive:
        onset_raw = archive["onset_hours"]
        onset = [None if h < 0 else int(h) for h in onset_raw]
        return EMRDataset(
            values=archive["values"],
            mask=archive["mask"],
            ever_observed=archive["ever_observed"],
            deltas=archive["deltas"],
            mortality=archive["mortality"],
            long_stay=archive["long_stay"],
            archetypes=list(archive["archetypes"]),
            onset_hours=onset,
            feature_names=tuple(archive["feature_names"]),
        )
