"""Synthetic EMR data substrate.

Stands in for the paper's PhysioNet 2012 and MIMIC-III cohorts (which
require credentialed access) with a generative ICU simulator whose labels
depend on feature-level and time-level interaction patterns — see
DESIGN.md for the substitution rationale.
"""

from .archetypes import ARCHETYPES, Archetype, archetype_by_name
from .batching import BucketSampler, sequence_lengths
from .cohorts import (MIMIC_III, PHYSIONET2012, PROFILES, CohortProfile,
                      load_cohort, scale_factor)
from .dataset import (DatasetSplits, EMRDataset, build_dataset,
                      iterate_batches, train_val_test_split)
from .missingness import ObservationModel
from .preprocess import (Standardizer, clean_values, impute,
                         observation_deltas)
from .serialization import dataset_metadata, load_dataset, save_dataset
from .schema import (FEATURE_NAMES, FEATURES, NUM_FEATURES, NUM_TIME_STEPS,
                     FeatureSpec, feature_index)
from .shards import (ShardedDataLoader, ShardedDataset, ShardIntegrityError,
                     generate_shards, plan_shards, regenerate_shard)
from .synthetic import Admission, SyntheticEMRGenerator, make_patient_a
from .trajectory import SeverityTrajectory, sample_trajectory

__all__ = [
    "FeatureSpec", "FEATURES", "FEATURE_NAMES", "NUM_FEATURES",
    "NUM_TIME_STEPS", "feature_index",
    "Archetype", "ARCHETYPES", "archetype_by_name",
    "SeverityTrajectory", "sample_trajectory",
    "ObservationModel",
    "Admission", "SyntheticEMRGenerator", "make_patient_a",
    "Standardizer", "clean_values", "impute", "observation_deltas",
    "EMRDataset", "DatasetSplits", "build_dataset", "train_val_test_split",
    "iterate_batches", "BucketSampler", "sequence_lengths",
    "CohortProfile", "PHYSIONET2012", "MIMIC_III", "PROFILES", "load_cohort",
    "scale_factor",
    "save_dataset", "load_dataset", "dataset_metadata",
    "ShardedDataset", "ShardedDataLoader", "ShardIntegrityError",
    "generate_shards", "regenerate_shard", "plan_shards",
]
