"""Dataset profiles standing in for PhysioNet 2012 and MIMIC-III.

Each profile fixes the simulator's knobs so the two "datasets" differ the
way the paper's do: cohort size, class balance, charting density, and case
mix.  Sizes scale with the ``REPRO_SCALE`` environment variable so tests
and benchmarks stay laptop-friendly by default:

* ``small`` (default) — hundreds of admissions, minutes of end-to-end time;
* ``medium`` — a few thousand admissions;
* ``paper`` — the paper's 12,000 / 21,139 admissions.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from .dataset import train_val_test_split
from .synthetic import SyntheticEMRGenerator

__all__ = ["CohortProfile", "PHYSIONET2012", "MIMIC_III", "PROFILES",
           "load_cohort", "scale_factor"]

_SCALES = {"small": 0.05, "medium": 0.25, "paper": 1.0}


def scale_factor(scale=None):
    """Resolve a scale name (or ``REPRO_SCALE``) to a size multiplier."""
    name = scale or os.environ.get("REPRO_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from "
                         f"{', '.join(_SCALES)}") from None


@dataclass(frozen=True)
class CohortProfile:
    """Simulator configuration mimicking one of the paper's datasets."""

    name: str
    paper_admissions: int
    rate_scale: float
    severity_gain: float
    label_noise: float
    initial_scale: float
    seed: int

    def generator(self):
        """Build the configured :class:`SyntheticEMRGenerator`."""
        return SyntheticEMRGenerator(
            rate_scale=self.rate_scale,
            severity_gain=self.severity_gain,
            label_noise=self.label_noise,
            initial_scale=self.initial_scale,
        )

    def admissions(self, scale=None, rng=None):
        """Sample the cohort's admissions at the requested scale."""
        count = max(120, int(round(self.paper_admissions * scale_factor(scale))))
        rng = rng if rng is not None else np.random.default_rng(self.seed)
        return self.generator().sample_many(count, rng)


#: Profile mirroring PhysioNet Challenge 2012 set A (12,000 admissions,
#: survivor:non-survivor about 6:1, LOS>7 the majority class).
PHYSIONET2012 = CohortProfile(
    name="PhysioNet2012",
    paper_admissions=12000,
    rate_scale=1.0,
    severity_gain=0.6,
    label_noise=0.06,
    initial_scale=1.0,
    seed=20120,
)

#: Profile mirroring the MIMIC-III cohort of Harutyunyan et al. (21,139
#: admissions, slightly less acute case mix, denser charting).
MIMIC_III = CohortProfile(
    name="MIMIC-III",
    paper_admissions=21139,
    rate_scale=0.95,
    severity_gain=0.5,
    label_noise=0.08,
    initial_scale=0.92,
    seed=52139,
)

PROFILES = {"physionet2012": PHYSIONET2012, "mimic3": MIMIC_III}


def load_cohort(name, scale=None, seed=None, fractions=(0.8, 0.1, 0.1)):
    """Sample a cohort and return its :class:`DatasetSplits`.

    Parameters
    ----------
    name:
        ``"physionet2012"`` or ``"mimic3"``.
    scale:
        ``"small"`` / ``"medium"`` / ``"paper"``; defaults to the
        ``REPRO_SCALE`` environment variable, then ``"small"``.
    seed:
        Overrides the profile's default sampling seed.
    fractions:
        Train/validation/test fractions; the paper's protocol is the
        default 80/10/10.  The benchmark harness enlarges the test share
        at reduced scales to keep metric variance manageable.
    """
    key = name.lower().replace("-", "").replace("_", "")
    if key in ("physionet", "physionet2012"):
        profile = PHYSIONET2012
    elif key in ("mimic", "mimiciii", "mimic3"):
        profile = MIMIC_III
    else:
        raise ValueError(f"unknown cohort {name!r}; use 'physionet2012' or 'mimic3'")
    rng = np.random.default_rng(seed if seed is not None else profile.seed)
    admissions = profile.admissions(scale=scale, rng=rng)
    return train_val_test_split(admissions, rng, fractions=fractions)
