"""Length-aware batching: sequence lengths and the bucket sampler.

Clinical sequences are padded to a fixed horizon (48 steps) but most
stays stop observing earlier.  :func:`sequence_lengths` recovers each
admission's true length from the observation mask, and
:class:`BucketSampler` groups admissions of equal length into the same
minibatches so the mask-aware scan kernels
(:func:`repro.nn.ops.gru_scan`) stop at each bucket's maximum length and
padded timesteps are never computed.
"""

from __future__ import annotations

import numpy as np

__all__ = ["sequence_lengths", "BucketSampler"]


def sequence_lengths(mask):
    """Per-admission true sequence length from the observation mask.

    The length is the index of the last timestep with at least one
    observed feature, plus one.  Admissions with no observations at all
    get length 1 — models still consume one step of imputed values, so a
    zero-length row would silently emit the initial hidden state.

    Parameters
    ----------
    mask:
        Boolean observation mask of shape ``(N, T, C)``.

    Returns
    -------
    ``(N,)`` int64 array of lengths in ``[1, T]``.
    """
    mask = np.asarray(mask)
    if mask.ndim != 3:
        raise ValueError(f"mask must be (N, T, C), got shape {mask.shape}")
    observed = mask.any(axis=2)                      # (N, T)
    steps = observed.shape[1]
    # argmax on the reversed time axis finds the last observed step.
    last = steps - 1 - observed[:, ::-1].argmax(axis=1)
    lengths = np.where(observed.any(axis=1), last + 1, 1)
    return lengths.astype(np.int64)


class BucketSampler:
    """Deterministic length-bucketed batch sampler.

    Indices are grouped by exact sequence length, shuffled within each
    bucket, concatenated in ascending length order, sliced into
    ``batch_size`` chunks, and the chunk order is shuffled.  Every index
    appears in exactly one batch per epoch (batches at bucket boundaries
    may mix a few adjacent lengths; the scan still stops at that batch's
    maximum).  All randomness comes from the caller's ``rng`` and is
    consumed in a fixed order (buckets ascending, then the batch
    permutation), so the seed contract of docs/CORRECTNESS.md survives
    bucketing; with ``rng=None`` the order is fully deterministic.
    """

    def __init__(self, lengths, batch_size):
        self.lengths = np.asarray(lengths, dtype=np.int64)
        if self.lengths.ndim != 1:
            raise ValueError(
                f"lengths must be 1-D, got shape {self.lengths.shape}")
        self.batch_size = int(batch_size)
        if self.batch_size <= 0:
            raise ValueError(f"batch_size must be positive, "
                             f"got {batch_size}")

    def batches(self, rng=None):
        """Return the epoch's batches as a list of index arrays."""
        if not self.lengths.size:
            return []
        buckets = []
        for length in np.unique(self.lengths):       # ascending: fixed order
            idx = np.flatnonzero(self.lengths == length)
            if rng is not None:
                rng.shuffle(idx)
            buckets.append(idx)
        order = np.concatenate(buckets)
        batches = [order[start:start + self.batch_size]
                   for start in range(0, len(order), self.batch_size)]
        if rng is not None:
            batches = [batches[i] for i in rng.permutation(len(batches))]
        return batches
