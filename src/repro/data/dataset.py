"""Dataset containers, splits, and batch iteration.

An :class:`EMRDataset` bundles everything the models consume:

* ``values`` — standardized, imputed feature values (N, T, C);
* ``mask`` — observation mask (N, T, C), True where measured;
* ``ever_observed`` — per-admission, per-feature flag (N, C): False means
  the feature was never measured during the stay (missingness type 3,
  routed to ELDA's ``V^m`` embedding);
* ``deltas`` — time since last observation (GRU-D input);
* labels for both tasks (``mortality``, ``long_stay``).

:func:`build_dataset` runs the full pipeline from raw admissions, and
:func:`train_val_test_split` reproduces the paper's 80/10/10 protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .batching import BucketSampler, sequence_lengths
from .preprocess import Standardizer, clean_values, impute, observation_deltas
from .schema import FEATURE_NAMES

__all__ = ["EMRDataset", "DatasetSplits", "build_dataset",
           "train_val_test_split", "iterate_batches"]


@dataclass
class EMRDataset:
    """Model-ready EMR data for a set of admissions."""

    values: np.ndarray
    mask: np.ndarray
    ever_observed: np.ndarray
    deltas: np.ndarray
    mortality: np.ndarray
    long_stay: np.ndarray
    archetypes: list = field(default_factory=list)
    onset_hours: list = field(default_factory=list)
    feature_names: tuple = FEATURE_NAMES

    def __len__(self):
        return self.values.shape[0]

    @property
    def num_time_steps(self):
        return self.values.shape[1]

    @property
    def num_features(self):
        return self.values.shape[2]

    def labels(self, task):
        """Return the label vector for a task.

        ``"mortality"`` and ``"los"`` are the paper's binary tasks;
        ``"phenotype"`` returns integer archetype indices (simulation
        ground truth) for the multi-class extension.
        """
        if task == "mortality":
            return self.mortality
        if task == "los":
            return self.long_stay
        if task == "phenotype":
            if not self.archetypes:
                raise ValueError("dataset carries no archetype annotations")
            from .archetypes import ARCHETYPES
            index = {a.name: i for i, a in enumerate(ARCHETYPES)}
            return np.array([index[name] for name in self.archetypes])
        raise ValueError(f"unknown task {task!r}; "
                         "use 'mortality', 'los', or 'phenotype'")

    def lengths(self):
        """Per-admission true sequence lengths (from the observation mask).

        See :func:`repro.data.batching.sequence_lengths`.
        """
        return sequence_lengths(self.mask)

    def truncate(self, num_steps):
        """Return a copy limited to the first ``num_steps`` timesteps.

        Labels and per-admission annotations are unchanged; only the
        time axis of the sequence arrays is cut.
        """
        if not 0 < num_steps <= self.num_time_steps:
            raise ValueError(
                f"num_steps must lie in [1, {self.num_time_steps}], "
                f"got {num_steps}")
        return EMRDataset(
            values=self.values[:, :num_steps],
            mask=self.mask[:, :num_steps],
            ever_observed=self.mask[:, :num_steps].any(axis=1),
            deltas=self.deltas[:, :num_steps],
            mortality=self.mortality,
            long_stay=self.long_stay,
            archetypes=list(self.archetypes),
            onset_hours=list(self.onset_hours),
            feature_names=self.feature_names,
        )

    def subset(self, indices):
        """Return a new dataset restricted to the given row indices."""
        indices = np.asarray(indices)
        return EMRDataset(
            values=self.values[indices],
            mask=self.mask[indices],
            ever_observed=self.ever_observed[indices],
            deltas=self.deltas[indices],
            mortality=self.mortality[indices],
            long_stay=self.long_stay[indices],
            archetypes=[self.archetypes[i] for i in indices]
            if self.archetypes else [],
            onset_hours=[self.onset_hours[i] for i in indices]
            if self.onset_hours else [],
            feature_names=self.feature_names,
        )

    def statistics(self):
        """Summary statistics in the shape of the paper's Table I."""
        survivors = int((self.mortality == 0).sum())
        non_survivors = int((self.mortality == 1).sum())
        short = int((self.long_stay == 0).sum())
        long = int((self.long_stay == 1).sum())
        records = float(self.mask.sum(axis=(1, 2)).mean())
        missing_rate = 1.0 - self.mask.mean()
        return {
            "admissions": len(self),
            "survivor": survivors,
            "non_survivor": non_survivors,
            "los_le_7": short,
            "los_gt_7": long,
            "avg_records_per_patient": records,
            "num_features": self.num_features,
            "missing_rate": float(missing_rate),
        }


@dataclass
class DatasetSplits:
    """Train/validation/test triple sharing one fitted standardizer."""

    train: EMRDataset
    validation: EMRDataset
    test: EMRDataset
    standardizer: Standardizer


def build_dataset(admissions, standardizer=None):
    """Assemble an :class:`EMRDataset` from raw :class:`Admission` objects.

    Parameters
    ----------
    admissions:
        Sequence of :class:`repro.data.synthetic.Admission`.
    standardizer:
        A fitted :class:`Standardizer` to reuse (for val/test splits).
        When ``None``, a new one is fit on these admissions.
    """
    raw = np.stack([adm.values for adm in admissions])
    raw = clean_values(raw)
    mask = ~np.isnan(raw)

    if standardizer is None:
        standardizer = Standardizer().fit(raw)
    standardized = standardizer.transform(raw)
    values = impute(standardized, mask)
    deltas = observation_deltas(mask)
    return EMRDataset(
        values=values,
        mask=mask,
        ever_observed=mask.any(axis=1),
        deltas=deltas,
        mortality=np.array([adm.mortality for adm in admissions]),
        long_stay=np.array([adm.long_stay for adm in admissions]),
        archetypes=[adm.archetype for adm in admissions],
        onset_hours=[adm.onset_hour for adm in admissions],
    ), standardizer


def train_val_test_split(admissions, rng, fractions=(0.8, 0.1, 0.1)):
    """Shuffle admissions and build the paper's 80/10/10 splits.

    The standardizer is fit on the training split only and reused for
    validation and test — no statistics leak across splits.
    """
    if abs(sum(fractions) - 1.0) > 1e-9:
        raise ValueError("split fractions must sum to 1")
    order = rng.permutation(len(admissions))
    n_train = int(round(fractions[0] * len(admissions)))
    n_val = int(round(fractions[1] * len(admissions)))
    groups = (order[:n_train], order[n_train:n_train + n_val],
              order[n_train + n_val:])
    train_adms = [admissions[i] for i in groups[0]]
    val_adms = [admissions[i] for i in groups[1]]
    test_adms = [admissions[i] for i in groups[2]]

    train, standardizer = build_dataset(train_adms)
    validation, _ = build_dataset(val_adms, standardizer=standardizer)
    test, _ = build_dataset(test_adms, standardizer=standardizer)
    return DatasetSplits(train=train, validation=validation, test=test,
                         standardizer=standardizer)


def iterate_batches(dataset, task, batch_size, rng=None,
                    bucket_by_length=False):
    """Yield ``(batch_dataset, labels)`` minibatches.

    Shuffles when an ``rng`` is given (training); otherwise iterates in
    order (evaluation).  With ``bucket_by_length`` batches are drawn
    from a :class:`~repro.data.batching.BucketSampler` so admissions of
    equal true length share minibatches and mask-aware scan kernels skip
    the padded tail; every admission still appears exactly once per
    epoch, and the rng is consumed in a fixed order so determinism under
    the seed contract is preserved.

    ``dataset`` may also be a :class:`repro.data.shards.ShardedDataset`:
    batches then stream out-of-core through a
    :class:`~repro.data.shards.ShardedDataLoader` (background prefetch,
    O(batch) resident memory).  The streamed epoch consumes the ``rng``
    identically and yields bit-identical batches in the same order as
    this function would over the materialized cohort, so sharded
    training obeys the same seed contract (see docs/DATA.md).
    """
    from .shards import ShardedDataset
    if isinstance(dataset, ShardedDataset):
        yield from dataset.iter_batches(task, batch_size, rng=rng,
                                        bucket_by_length=bucket_by_length)
        return
    labels = dataset.labels(task)
    if bucket_by_length:
        sampler = BucketSampler(dataset.lengths(), batch_size)
        for batch_idx in sampler.batches(rng):
            yield dataset.subset(batch_idx), labels[batch_idx]
        return
    indices = np.arange(len(dataset))
    if rng is not None:
        rng.shuffle(indices)
    for start in range(0, len(indices), batch_size):
        batch_idx = indices[start:start + batch_size]
        yield dataset.subset(batch_idx), labels[batch_idx]
