"""Disease archetypes for the synthetic ICU simulator.

An archetype is a clinically-motivated pattern of *joint* feature
deviations.  This is the crucial ingredient for reproducing the ELDA
evaluation: the paper's argument is that the same abnormal value of one
feature (e.g. Glucose) means different things depending on which *other*
features are abnormal with it (DM alone vs. DM+DKA vs. DM+DLA).  Labels in
the simulator therefore depend on which archetype generated the admission,
not on any single feature, so a model can only excel by learning
feature-level interactions — exactly the capability ELDA claims.

Deviations are expressed in units of each feature's healthy standard
deviation (z-scores), and scale with the patient's latent severity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .schema import feature_index

__all__ = ["Archetype", "ARCHETYPES", "archetype_by_name"]


@dataclass(frozen=True)
class Archetype:
    """A joint-deviation pattern with its clinical risk profile.

    Attributes
    ----------
    name:
        Identifier, e.g. ``"dm_dla"``.
    deviations:
        Mapping ``feature name -> z-score shift at severity 1.0``.
    base_mortality_logit:
        Archetype-specific contribution to the mortality logit.
    severity_mortality_gain:
        Weight of the patient's peak severity in the mortality logit.
    late_deterioration_prob:
        Probability that this archetype produces an acute late-onset event
        (deterioration in the second day), which creates the time-level
        signal that the paper's Figure 8 visualizes.
    base_los_logit, severity_los_gain:
        Same structure for the LOS > 7 days label.
    prevalence:
        Relative sampling weight in the admission mix.
    risk_pairs:
        Pairwise interaction terms in the label logits: tuples
        ``(feature_a, feature_b, weight)`` contributing
        ``weight * mean_t(z_a(t) * z_b(t))`` to the risk.  This is the
        generative counterpart of the paper's thesis — *joint* abnormal
        patterns (e.g. Glucose x Lactate in DLA) carry risk beyond what
        the individual values explain — and is what gives explicit
        interaction learners their edge on this data.
    """

    name: str
    deviations: dict = field(default_factory=dict)
    base_mortality_logit: float = -3.0
    severity_mortality_gain: float = 2.0
    late_deterioration_prob: float = 0.25
    base_los_logit: float = -0.5
    severity_los_gain: float = 1.5
    prevalence: float = 1.0
    risk_pairs: tuple = ()

    def deviation_vector(self, num_features):
        """Return the z-shift per feature as a dense vector."""
        import numpy as np
        vec = np.zeros(num_features)
        for name, shift in self.deviations.items():
            vec[feature_index(name)] = shift
        return vec


#: The archetype library.  The three DM variants follow Section I of the
#: paper verbatim; the others round out a plausible ICU case mix so that
#: the label is genuinely multi-pattern.
ARCHETYPES = (
    Archetype(
        name="stable",
        deviations={},
        base_mortality_logit=-4.6,
        severity_mortality_gain=1.0,
        late_deterioration_prob=0.03,
        base_los_logit=-1.2,
        severity_los_gain=1.0,
        prevalence=3.0,
    ),
    # DM only: isolated hyperglycemia, comparatively benign.
    Archetype(
        name="dm_only",
        deviations={"Glucose": 3.0},
        base_mortality_logit=-3.8,
        severity_mortality_gain=1.2,
        late_deterioration_prob=0.08,
        base_los_logit=-0.6,
        severity_los_gain=1.2,
        prevalence=1.5,
    ),
    # DM + diabetic ketoacidosis: high glucose, low pH, low HCO3, Kussmaul
    # breathing (high RespRate), dehydration (high BUN).
    Archetype(
        name="dm_dka",
        deviations={"Glucose": 3.5, "pH": -2.5, "HCO3": -2.5,
                    "RespRate": 2.0, "BUN": 1.5, "K": 1.0},
        risk_pairs=(("Glucose", "pH", -0.30), ("Glucose", "HCO3", -0.20)),
        base_mortality_logit=-2.2,
        severity_mortality_gain=2.2,
        late_deterioration_prob=0.30,
        base_los_logit=0.2,
        severity_los_gain=1.6,
        prevalence=1.0,
    ),
    # DM + diabetic lactic acidosis: high glucose, high lactate, low pH,
    # low HCO3, low Temp, low MAP, compensatory high HR/FiO2 — this is
    # "Patient A" from the paper's interpretability study.
    Archetype(
        name="dm_dla",
        deviations={"Glucose": 3.5, "Lactate": 3.0, "pH": -2.5,
                    "HCO3": -2.0, "Temp": -1.5, "MAP": -2.0,
                    "HR": 1.8, "FiO2": 1.5},
        risk_pairs=(("Glucose", "Lactate", 0.30), ("Lactate", "pH", -0.25)),
        base_mortality_logit=-1.8,
        severity_mortality_gain=2.5,
        late_deterioration_prob=0.35,
        base_los_logit=0.4,
        severity_los_gain=1.7,
        prevalence=1.0,
    ),
    # Septic shock: high lactate WITHOUT hyperglycemia; fever, tachycardia,
    # hypotension, high WBC.  Deliberately overlaps with dm_dla on lactate
    # so that lactate alone is not a sufficient statistic.
    Archetype(
        name="sepsis",
        deviations={"Lactate": 2.5, "Temp": 2.0, "HR": 2.2, "MAP": -2.2,
                    "WBC": 2.5, "RespRate": 1.8, "SysABP": -1.8,
                    "Urine": -1.5},
        risk_pairs=(("Lactate", "MAP", -0.30), ("Temp", "WBC", 0.20)),
        base_mortality_logit=-1.6,
        severity_mortality_gain=2.6,
        late_deterioration_prob=0.40,
        base_los_logit=0.5,
        severity_los_gain=1.8,
        prevalence=1.2,
    ),
    # Acute kidney injury: creatinine/BUN/K up, urine down, mild acidosis.
    Archetype(
        name="aki",
        deviations={"Creatinine": 3.0, "BUN": 2.5, "K": 1.8, "Urine": -2.2,
                    "HCO3": -1.0, "pH": -0.8},
        risk_pairs=(("Creatinine", "K", 0.30), ("Creatinine", "Urine", -0.20)),
        base_mortality_logit=-2.6,
        severity_mortality_gain=1.9,
        late_deterioration_prob=0.22,
        base_los_logit=0.3,
        severity_los_gain=1.6,
        prevalence=1.0,
    ),
    # Cardiogenic event: troponins up, blood pressures down, HR unstable.
    Archetype(
        name="cardiac",
        deviations={"TroponinI": 3.5, "TroponinT": 3.5, "SysABP": -1.8,
                    "MAP": -1.5, "HR": 1.5, "PaO2": -1.2, "SaO2": -1.0},
        risk_pairs=(("TroponinI", "MAP", -0.30), ("TroponinT", "HR", 0.20)),
        base_mortality_logit=-2.0,
        severity_mortality_gain=2.3,
        late_deterioration_prob=0.33,
        base_los_logit=0.2,
        severity_los_gain=1.5,
        prevalence=1.0,
    ),
    # Respiratory failure: low PaO2/SaO2, high PaCO2/FiO2, ventilation.
    Archetype(
        name="respiratory",
        deviations={"PaO2": -2.5, "SaO2": -2.5, "PaCO2": 2.0, "FiO2": 2.5,
                    "RespRate": 2.2, "MechVent": 3.0, "pH": -0.8},
        risk_pairs=(("FiO2", "SaO2", -0.30), ("PaCO2", "pH", -0.20)),
        base_mortality_logit=-2.1,
        severity_mortality_gain=2.2,
        late_deterioration_prob=0.30,
        base_los_logit=0.4,
        severity_los_gain=1.7,
        prevalence=1.0,
    ),
    # Hepatic failure: liver enzymes and bilirubin up, albumin and
    # platelets down.
    Archetype(
        name="hepatic",
        deviations={"ALT": 3.0, "AST": 3.0, "Bilirubin": 2.8, "ALP": 2.0,
                    "Albumin": -2.0, "Platelets": -1.5},
        risk_pairs=(("Bilirubin", "Albumin", -0.25), ("ALT", "AST", 0.20)),
        base_mortality_logit=-2.4,
        severity_mortality_gain=2.0,
        late_deterioration_prob=0.25,
        base_los_logit=0.35,
        severity_los_gain=1.6,
        prevalence=0.8,
    ),
    # Hemorrhage/anemia: HCT and platelets down, HR up, pressures down.
    Archetype(
        name="hemorrhage",
        deviations={"HCT": -2.5, "Platelets": -2.0, "HR": 2.0,
                    "SysABP": -2.0, "DiasABP": -1.8, "MAP": -1.8},
        risk_pairs=(("HCT", "HR", -0.25), ("HCT", "MAP", 0.20)),
        base_mortality_logit=-2.3,
        severity_mortality_gain=2.1,
        late_deterioration_prob=0.28,
        base_los_logit=0.25,
        severity_los_gain=1.5,
        prevalence=0.8,
    ),
)

_BY_NAME = {a.name: a for a in ARCHETYPES}


def archetype_by_name(name):
    """Look up an archetype by name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(f"unknown archetype {name!r}; known: "
                       f"{', '.join(_BY_NAME)}") from None
