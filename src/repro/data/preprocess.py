"""Preprocessing: cleaning, standardization, and imputation.

Follows the paper's Section V-A pipeline:

* noisy values outside each feature's physical range (e.g. negative lab
  values) are removed, i.e. turned into missing entries;
* a mean–std standardization is fit on the training split and applied
  everywhere;
* missing values are imputed with the global (training) mean before the
  first observation of a feature and with the last observation afterwards
  (LOCF), matching the paper's treatment of the first two missingness
  types.  Cells belonging to never-observed features keep a mask of 0 so
  ELDA-Net can route them to its dedicated missing-value embedding.
"""

from __future__ import annotations

import numpy as np

from .schema import FEATURES

__all__ = ["clean_values", "Standardizer", "impute", "observation_deltas"]


def clean_values(values):
    """Null out physically impossible entries (recording errors).

    Parameters
    ----------
    values:
        Array (..., C) of raw feature values with NaN for missing.

    Returns
    -------
    A copy with out-of-range entries replaced by NaN.
    """
    lows = np.array([spec.low for spec in FEATURES])
    highs = np.array([spec.high for spec in FEATURES])
    cleaned = values.copy()
    with np.errstate(invalid="ignore"):
        bad = (cleaned < lows) | (cleaned > highs)
    cleaned[bad] = np.nan
    return cleaned


class Standardizer:
    """Mean–std standardization fit on observed entries of the train split."""

    def __init__(self):
        self.mean = None
        self.std = None

    def fit(self, values):
        """Fit on an (N, T, C) array with NaN for missing entries."""
        import warnings

        flat = values.reshape(-1, values.shape[-1])
        with warnings.catch_warnings():
            # All-NaN columns are expected (never-observed features) and
            # handled by the schema fallback below.
            warnings.simplefilter("ignore", RuntimeWarning)
            self.mean = np.nanmean(flat, axis=0)
            self.std = np.nanstd(flat, axis=0)
        # Guard constant features (e.g. a flag that never fires in a split).
        self.std = np.where(self.std < 1e-8, 1.0, self.std)
        # A feature never observed anywhere in the split would yield NaN
        # statistics; fall back to the schema's healthy values.
        schema_mean = np.array([spec.mean for spec in FEATURES])
        schema_std = np.array([spec.std for spec in FEATURES])
        self.mean = np.where(np.isnan(self.mean), schema_mean, self.mean)
        self.std = np.where(np.isnan(self.std), schema_std, self.std)
        return self

    def transform(self, values):
        """Standardize, preserving NaNs."""
        self._check_fitted()
        return (values - self.mean) / self.std

    def inverse_transform(self, values):
        """Map standardized values back to raw units."""
        self._check_fitted()
        return values * self.std + self.mean

    def fit_transform(self, values):
        return self.fit(values).transform(values)

    def _check_fitted(self):
        if self.mean is None:
            raise RuntimeError("Standardizer used before fit()")

    # ------------------------------------------------------------------
    # Persistence (run directories / serving)
    # ------------------------------------------------------------------
    def save(self, path):
        """Persist the fitted statistics as an ``.npz`` archive.

        Training runs store this next to their checkpoints
        (``run_dir/standardizer.npz``) so the serving layer's
        preprocessing cache can replay the exact train-split pipeline on
        raw admissions.
        """
        self._check_fitted()
        np.savez_compressed(path, mean=self.mean, std=self.std)

    @classmethod
    def load(cls, path):
        """Rebuild a fitted standardizer written by :meth:`save`."""
        with np.load(path) as archive:
            standardizer = cls()
            standardizer.mean = archive["mean"]
            standardizer.std = archive["std"]
        return standardizer


def impute(values, mask):
    """Fill missing entries: global mean before first observation, LOCF after.

    Operates on *standardized* values, where the global mean is 0 — this is
    the convention the paper's Bi-directional Embedding Module relies on
    ("a standardized zero value always denotes close to normal").

    Parameters
    ----------
    values:
        Array (N, T, C) standardized, NaN for missing.
    mask:
        Boolean (N, T, C), True where observed.

    Returns
    -------
    Array (N, T, C) with no NaNs.
    """
    n, steps, channels = values.shape
    filled = np.where(mask, values, 0.0)
    out = np.zeros_like(filled)
    last = np.zeros((n, channels))
    seen = np.zeros((n, channels), dtype=bool)
    for t in range(steps):
        observed = mask[:, t, :]
        last = np.where(observed, filled[:, t, :], last)
        seen |= observed
        # Before first observation: global mean (0 after standardization).
        out[:, t, :] = np.where(seen, last, 0.0)
    return out


def observation_deltas(mask):
    """Hours since the previous observation of each feature (GRU-D input).

    ``delta[n, t, c]`` is 0 at t=0, and otherwise ``t - t_last_observed``
    where ``t_last_observed`` is the most recent step < t with an
    observation (or 0 if none yet) — the standard GRU-D definition.
    """
    n, steps, channels = mask.shape
    delta = np.zeros((n, steps, channels))
    for t in range(1, steps):
        delta[:, t, :] = np.where(mask[:, t - 1, :], 1.0,
                                  delta[:, t - 1, :] + 1.0)
    return delta
