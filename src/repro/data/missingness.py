"""Observation (missingness) mechanisms for the synthetic EMR data.

The paper distinguishes three sources of missingness and ELDA-Net handles
each differently:

1. *unconcerned before first observation* — imputed with the global mean;
2. *stable, infrequently re-measured* — imputed with the last observation;
3. *never observed because irrelevant to this patient* — embedded with a
   dedicated missing-value vector ``V^m``.

The simulator realizes all three: labs are drawn in sparse panels with a
first-draw delay, vitals are charted frequently, irrelevant labs may never
be ordered at all, and observation density increases with the patient's
severity (informative sampling — the reason the paper sees richer records
around critical time steps in Figure 8).
"""

from __future__ import annotations

import numpy as np

from .schema import FEATURES

__all__ = ["ObservationModel"]

#: Baseline per-hour observation probabilities by feature kind; tuned so the
#: overall missing rate lands near the paper's ~80%.
_BASE_RATES = {"vital": 0.26, "lab": 0.065, "other": 0.14}

#: Probability that an individual lab joins a given panel draw.
_PANEL_JOIN = 0.75

#: Probability that a lab irrelevant to the patient's condition is never
#: ordered during the whole stay (missingness type 3).
_NEVER_ORDERED = 0.30


class ObservationModel:
    """Samples which (hour, feature) cells of an admission are observed."""

    def __init__(self, severity_gain=0.6, rate_scale=1.0):
        self.severity_gain = severity_gain
        self.rate_scale = rate_scale
        self._kinds = np.array([spec.kind for spec in FEATURES])
        self._base = np.array([_BASE_RATES[spec.kind] for spec in FEATURES])

    def sample_mask(self, rng, severity, relevant):
        """Return a boolean (T, C) mask of observed cells.

        Parameters
        ----------
        rng:
            ``numpy.random.Generator``.
        severity:
            Latent severity per hour, shape (T,).
        relevant:
            Boolean per-feature vector: whether the feature participates in
            the patient's archetype (relevant features are always measured
            at least once).
        """
        steps = severity.shape[0]
        num_features = self._base.shape[0]
        boost = 1.0 + self.severity_gain * np.clip(severity, 0.0, 2.5)

        probs = self._base[None, :] * boost[:, None] * self.rate_scale

        is_lab = self._kinds == "lab"
        mask = rng.random((steps, num_features)) < probs
        # Labs arrive in panels: a panel draw this hour pulls in most labs.
        panel_rate = np.clip(0.055 * boost * self.rate_scale, 0.0, 1.0)
        panel_hours = rng.random(steps) < panel_rate
        panel_pick = rng.random((steps, num_features)) < _PANEL_JOIN
        mask |= panel_hours[:, None] & panel_pick & is_lab[None, :]
        # Labs have a first-draw delay: nothing before the first panel.
        first_delay = rng.integers(0, 7)
        mask[:first_delay, is_lab] = False

        # Irrelevant labs may be skipped entirely for this admission.
        never = (rng.random(num_features) < _NEVER_ORDERED) & is_lab & ~relevant
        mask[:, never] = False

        # Relevant features are always examined at least once: clinicians
        # order the tests their working diagnosis calls for.
        for col in np.flatnonzero(relevant & ~mask.any(axis=0)):
            mask[rng.integers(0, steps), col] = True

        return mask
