"""Generative simulator of ICU admissions.

This is the dataset substrate standing in for PhysioNet 2012 and MIMIC-III
(both of which require credentialed access).  Each admission is produced by
a causal chain

    archetype  ->  severity trajectory  ->  feature values  ->  observations
        \\                \\
         ------------------+-->  mortality / LOS labels

so the labels genuinely depend on (a) *which features are jointly abnormal*
(feature-level interactions) and (b) *when deterioration happens*
(time-level interactions) — the two signal types the ELDA paper is about.

The module also provides :func:`make_patient_a`, a deterministic DM+DLA
admission whose Glucose starts rising near hour 13 and stabilizes by hour
35, matching the paper's interpretability case study (Table II, Figures 9
and 10).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .archetypes import ARCHETYPES, archetype_by_name
from .missingness import ObservationModel
from .schema import FEATURES, NUM_FEATURES, NUM_TIME_STEPS, feature_index
from .trajectory import global_loading_vector, sample_trajectory

__all__ = ["Admission", "SyntheticEMRGenerator", "make_patient_a"]

#: AR(1) smoothing of feature responses: labs move sluggishly, vitals fast.
_RESPONSE_SMOOTHING = {"vital": 0.45, "lab": 0.75, "other": 0.6}


@dataclass
class Admission:
    """One simulated ICU admission.

    Attributes
    ----------
    values:
        Float array (T, C) with NaN where unobserved.
    mask:
        Boolean array (T, C); True where observed.
    mortality:
        1 if the patient dies in hospital.
    long_stay:
        1 if LOS exceeds 7 days.
    archetype:
        Name of the generating archetype (simulation ground truth, never
        shown to models; used by tests and interpretability analyses).
    severity:
        The latent trajectory (ground truth, same caveat).
    onset_hour:
        Hour of the acute event, if any.
    """

    values: np.ndarray
    mask: np.ndarray
    mortality: int
    long_stay: int
    archetype: str
    severity: np.ndarray = field(repr=False)
    onset_hour: int | None = None


def _sigmoid(z):
    return 1.0 / (1.0 + np.exp(-z))


class SyntheticEMRGenerator:
    """Samples admissions from the archetype mixture.

    Parameters
    ----------
    steps:
        Hours per admission (default 48, as in the paper).
    severity_gain:
        Informative-sampling strength of the observation model.
    rate_scale:
        Global multiplier on observation rates (dataset "culture": MIMIC
        and PhysioNet chart at slightly different densities).
    label_noise:
        Probability of flipping each label, modelling unexplainable
        outcomes; keeps AUCs away from 1 as in real clinical data.
    initial_scale:
        Multiplier on initial severities (case-mix acuity).
    mortality_offset:
        Global shift on the mortality logit; the default calibrates the
        simulator to the paper's ~14% in-hospital mortality (Table I).
    archetypes:
        Archetype library; defaults to :data:`repro.data.archetypes.ARCHETYPES`.
    """

    def __init__(self, steps=NUM_TIME_STEPS, severity_gain=0.6,
                 rate_scale=1.0, label_noise=0.06, initial_scale=1.0,
                 mortality_offset=-3.3, archetypes=ARCHETYPES):
        self.steps = steps
        self.label_noise = label_noise
        self.mortality_offset = mortality_offset
        self.initial_scale = initial_scale
        self.archetypes = tuple(archetypes)
        self.observation_model = ObservationModel(severity_gain=severity_gain,
                                                  rate_scale=rate_scale)
        weights = np.array([a.prevalence for a in self.archetypes])
        self._mix = weights / weights.sum()
        self._global_loadings = global_loading_vector()
        self._means = np.array([spec.mean for spec in FEATURES])
        self._stds = np.array([spec.std for spec in FEATURES])
        self._lows = np.array([spec.low for spec in FEATURES])
        self._highs = np.array([spec.high for spec in FEATURES])
        self._smooth = np.array([_RESPONSE_SMOOTHING[spec.kind]
                                 for spec in FEATURES])

    # ------------------------------------------------------------------
    def sample(self, rng):
        """Sample a single :class:`Admission`."""
        archetype = self.archetypes[rng.choice(len(self.archetypes), p=self._mix)]
        trajectory = sample_trajectory(rng, self.steps,
                                       archetype.late_deterioration_prob,
                                       initial_scale=self.initial_scale)
        values_full, z_scores = self._feature_values(rng, archetype,
                                                     trajectory.severity)
        relevant = archetype.deviation_vector(NUM_FEATURES) != 0.0
        mask = self.observation_model.sample_mask(rng, trajectory.severity,
                                                  relevant)
        values = np.where(mask, values_full, np.nan)

        pair_risk = self._pair_risk(archetype, z_scores)
        mortality = self._label(
            rng, archetype.base_mortality_logit + self.mortality_offset
            + pair_risk,
            archetype.severity_mortality_gain, trajectory)
        long_stay = self._label(rng,
                                archetype.base_los_logit + 0.7 * pair_risk,
                                archetype.severity_los_gain, trajectory)
        return Admission(values=values, mask=mask, mortality=mortality,
                         long_stay=long_stay, archetype=archetype.name,
                         severity=trajectory.severity,
                         onset_hour=trajectory.onset_hour)

    def sample_many(self, count, rng):
        """Sample ``count`` admissions as a list."""
        return [self.sample(rng) for _ in range(count)]

    # ------------------------------------------------------------------
    def _feature_values(self, rng, archetype, severity):
        """Map severity to raw feature values with AR(1) dynamics."""
        deviation = archetype.deviation_vector(NUM_FEATURES)
        loading = deviation + self._global_loadings
        # Per-patient stable offsets (body habitus, chronic baselines).
        offsets = rng.normal(0.0, 0.5, size=NUM_FEATURES)
        target_z = severity[:, None] * loading[None, :] + offsets[None, :]

        z = np.empty((self.steps, NUM_FEATURES))
        state = target_z[0] + rng.normal(0.0, 0.3, NUM_FEATURES)
        for t in range(self.steps):
            alpha = self._smooth
            state = alpha * state + (1.0 - alpha) * target_z[t]
            z[t] = state + rng.normal(0.0, 0.25, NUM_FEATURES)

        raw = self._means[None, :] + self._stds[None, :] * z
        raw = np.clip(raw, self._lows[None, :], self._highs[None, :])
        # MechVent is recorded as a 0/1 flag.
        ventilated = raw[:, feature_index("MechVent")] > 0.5
        raw[:, feature_index("MechVent")] = ventilated.astype(float)
        return raw, z

    @staticmethod
    def _pair_risk(archetype, z_scores):
        """Risk from *joint* abnormality (the archetype's risk_pairs).

        This term is what makes the label depend on feature-level
        interactions rather than individual values alone: the same z for
        one feature carries different risk depending on its partner.
        """
        total = 0.0
        for name_a, name_b, weight in archetype.risk_pairs:
            product = np.mean(z_scores[:, feature_index(name_a)]
                              * z_scores[:, feature_index(name_b)])
            total += weight * np.clip(product, -4.0, 4.0)
        return float(total)

    def _label(self, rng, base_logit, gain, trajectory):
        logit = base_logit + gain * trajectory.risk_score()
        label = int(rng.random() < _sigmoid(logit))
        if rng.random() < self.label_noise:
            label = 1 - label
        return label


def make_patient_a(steps=NUM_TIME_STEPS, seed=7):
    """Deterministically build the paper's "Patient A" (DM with DLA).

    Glucose begins to rise at hour 13, peaks mid-stay, and is brought back
    to a normal level by hour 35 under treatment; Lactate/pH/HCO3/Temp/MAP
    co-move per the DLA archetype while irrelevant features (HCT, WBC, ...)
    stay near their personal baselines.  The admission is fully structured
    so the feature-level interpretability experiments (Figures 9–10,
    Table II) have a stable subject.
    """
    rng = np.random.default_rng(seed)
    generator = SyntheticEMRGenerator(steps=steps)
    archetype = archetype_by_name("dm_dla")

    # Hand-crafted severity: calm start, acute DLA crisis from hour 13,
    # controlled from hour ~27, back to mild by hour 35.
    severity = np.full(steps, 0.3)
    for t in range(13, steps):
        if t < 22:
            severity[t] = severity[t - 1] + 0.18
        elif t < 27:
            severity[t] = severity[t - 1]
        else:
            severity[t] = max(0.25, severity[t - 1] - 0.16)
    severity += rng.normal(0.0, 0.02, steps)
    severity = np.clip(severity, 0.0, None)

    values_full, _ = generator._feature_values(rng, archetype, severity)
    relevant = archetype.deviation_vector(NUM_FEATURES) != 0.0
    mask = generator.observation_model.sample_mask(rng, severity, relevant)
    # The case study inspects specific hours; make sure the headline
    # features are observed there.
    for name in ("Glucose", "Lactate", "pH", "HCO3", "Temp", "MAP", "HR",
                 "FiO2", "HCT", "WBC"):
        mask[:, feature_index(name)] = True
    values = np.where(mask, values_full, np.nan)
    return Admission(values=values, mask=mask, mortality=0, long_stay=1,
                     archetype="dm_dla", severity=severity, onset_hour=13)
