"""Clinical feature schema for the synthetic EMR substrate.

The ELDA paper evaluates on PhysioNet Challenge 2012 and a MIMIC-III cohort,
both reduced to the same 37 common medical features observed over 48 hourly
time steps.  Those datasets require credentialed access, so this module
defines the 37-feature schema (names, units, healthy means/spreads, and
plausible physical ranges used for cleaning) that the generative simulator
in :mod:`repro.data.synthetic` populates.

Healthy ranges are taken from standard reference intervals; they do not need
to be exact for the reproduction — what matters is that each feature has a
well-defined "normal" location/scale so that abnormality (deviation in a
known direction) is meaningful, mirroring how clinicians read the real
features.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FeatureSpec", "FEATURES", "FEATURE_NAMES", "NUM_FEATURES",
           "feature_index", "NUM_TIME_STEPS"]

#: Hours of EMR data per admission, as in the paper (48 h after admission).
NUM_TIME_STEPS = 48


@dataclass(frozen=True)
class FeatureSpec:
    """Description of one numerical medical feature.

    Attributes
    ----------
    name:
        Short identifier as used in PhysioNet 2012.
    unit:
        Measurement unit (documentation only).
    mean:
        Typical value for a stable patient.
    std:
        Typical within-population spread for stable patients.
    low, high:
        Physically plausible bounds; values outside are treated as recording
        errors and removed by the cleaning stage (the paper removes e.g.
        negative values).
    kind:
        ``"vital"`` (charted frequently), ``"lab"`` (sparse), or
        ``"other"``.  Drives the missingness mechanism.
    """

    name: str
    unit: str
    mean: float
    std: float
    low: float
    high: float
    kind: str


#: The 37 features used by the paper (PhysioNet 2012 set A descriptors).
FEATURES = (
    FeatureSpec("Albumin", "g/dL", 4.0, 0.5, 0.5, 7.0, "lab"),
    FeatureSpec("ALP", "IU/L", 80.0, 30.0, 5.0, 2000.0, "lab"),
    FeatureSpec("ALT", "IU/L", 30.0, 15.0, 1.0, 5000.0, "lab"),
    FeatureSpec("AST", "IU/L", 30.0, 15.0, 1.0, 5000.0, "lab"),
    FeatureSpec("Bilirubin", "mg/dL", 0.8, 0.4, 0.05, 50.0, "lab"),
    FeatureSpec("BUN", "mg/dL", 15.0, 6.0, 1.0, 200.0, "lab"),
    FeatureSpec("Cholesterol", "mg/dL", 180.0, 35.0, 40.0, 500.0, "lab"),
    FeatureSpec("Creatinine", "mg/dL", 1.0, 0.3, 0.1, 25.0, "lab"),
    FeatureSpec("DiasABP", "mmHg", 70.0, 10.0, 10.0, 200.0, "vital"),
    FeatureSpec("FiO2", "fraction", 0.30, 0.08, 0.21, 1.0, "vital"),
    FeatureSpec("GCS", "score", 14.0, 1.5, 3.0, 15.0, "vital"),
    FeatureSpec("Glucose", "mg/dL", 110.0, 25.0, 10.0, 1200.0, "lab"),
    FeatureSpec("HCO3", "mmol/L", 24.0, 3.0, 2.0, 55.0, "lab"),
    FeatureSpec("HCT", "%", 38.0, 4.5, 10.0, 65.0, "lab"),
    FeatureSpec("HR", "bpm", 80.0, 12.0, 10.0, 300.0, "vital"),
    FeatureSpec("K", "mmol/L", 4.1, 0.4, 1.0, 10.0, "lab"),
    FeatureSpec("Lactate", "mmol/L", 1.2, 0.5, 0.1, 30.0, "lab"),
    FeatureSpec("Mg", "mmol/L", 0.85, 0.12, 0.2, 4.0, "lab"),
    FeatureSpec("MAP", "mmHg", 85.0, 10.0, 20.0, 250.0, "vital"),
    FeatureSpec("MechVent", "flag", 0.0, 0.2, 0.0, 1.0, "other"),
    FeatureSpec("Na", "mmol/L", 140.0, 3.0, 100.0, 180.0, "lab"),
    FeatureSpec("NIDiasABP", "mmHg", 70.0, 11.0, 10.0, 200.0, "vital"),
    FeatureSpec("NIMAP", "mmHg", 85.0, 11.0, 20.0, 250.0, "vital"),
    FeatureSpec("NISysABP", "mmHg", 120.0, 15.0, 30.0, 300.0, "vital"),
    FeatureSpec("PaCO2", "mmHg", 40.0, 5.0, 10.0, 120.0, "lab"),
    FeatureSpec("PaO2", "mmHg", 95.0, 15.0, 20.0, 600.0, "lab"),
    FeatureSpec("pH", "pH", 7.40, 0.04, 6.5, 8.0, "lab"),
    FeatureSpec("Platelets", "1000/uL", 250.0, 70.0, 5.0, 1500.0, "lab"),
    FeatureSpec("RespRate", "bpm", 16.0, 3.0, 2.0, 80.0, "vital"),
    FeatureSpec("SaO2", "%", 97.0, 1.5, 40.0, 100.0, "vital"),
    FeatureSpec("SysABP", "mmHg", 120.0, 14.0, 30.0, 300.0, "vital"),
    FeatureSpec("Temp", "degC", 37.0, 0.4, 30.0, 43.0, "vital"),
    FeatureSpec("TroponinI", "ug/L", 0.02, 0.02, 0.0, 60.0, "lab"),
    FeatureSpec("TroponinT", "ug/L", 0.01, 0.01, 0.0, 30.0, "lab"),
    FeatureSpec("Urine", "mL/h", 80.0, 30.0, 0.0, 2000.0, "other"),
    FeatureSpec("WBC", "1000/uL", 8.0, 2.5, 0.1, 200.0, "lab"),
    FeatureSpec("Weight", "kg", 78.0, 16.0, 20.0, 300.0, "other"),
)

FEATURE_NAMES = tuple(spec.name for spec in FEATURES)
NUM_FEATURES = len(FEATURES)

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


def feature_index(name):
    """Return the column index of a feature by name.

    Raises ``KeyError`` with the available names on a miss.
    """
    try:
        return _INDEX[name]
    except KeyError:
        raise KeyError(f"unknown feature {name!r}; known features: "
                       f"{', '.join(FEATURE_NAMES)}") from None
