"""Sharded cohort store: deterministic generation, manifest, streaming loader.

The simulator in :mod:`repro.data.synthetic` materializes whole cohorts
in memory, which caps training at what fits in RAM.  This module is the
million-admission data plane: cohorts are generated as fixed-size
*shards* on disk and trained on out-of-core.

Determinism contract
--------------------
Every shard is generated from its own RNG stream seeded by
``(seed, shard_id)`` (a :class:`numpy.random.SeedSequence` over the
pair), so *the same seed and shard grid always yield byte-identical
shard files* — regardless of how many workers generated them, or in
which order.  The standardizer is derived from per-shard moment
statistics reduced in ascending ``shard_id`` order, never from
worker-completion order, so ``manifest.json`` is byte-identical across
worker counts too.  ``regenerate_shard`` rebuilds any single shard from
the manifest alone and verifies it reproduces the recorded checksums.

On-disk layout
--------------
::

    store/
      manifest.json        # config, shard table, moments, checksums
      standardizer.npz     # all-shard mean/std (serving convenience)
      shard_00000/
        raw.npy            # (count, T, C) cleaned values, NaN = missing
        labels.npy         # (count, 2) int8: mortality, long_stay
        annot.npy          # (count, 2) int16: archetype id, onset hour
        lengths.npy        # (count,) int16 true sequence lengths
      shard_00001/
        ...

``raw.npy`` stores *cleaned, unstandardized* values: standardization,
imputation, and GRU-D deltas are recomputed per batch at load time with
the exact :mod:`repro.data.preprocess` functions, which keeps the store
a third the size of model-ready arrays and keeps every derived quantity
bit-identical to the in-memory pipeline.

Streaming
---------
:class:`ShardedDataLoader` computes each epoch's batch plan from lazy
metadata only (admission counts and per-shard ``lengths.npy``), using
the *same* RNG calls as the in-memory :func:`repro.data.iterate_batches`
— a streamed epoch therefore visits byte-identical batches in the same
order as an in-memory epoch over :meth:`ShardedDataset.materialize`
under the same seed (``tests/train/test_sharded_equivalence.py`` pins
this at the bit level).  Rows are gathered by direct ``seek``/``read``
on the shard files (no memmaps, so the resident set stays O(batch), not
O(page cache)), preprocessed, and handed over via a background prefetch
thread with a bounded queue.  Shard checksums are verified on first
touch; a corrupted or truncated shard raises
:class:`ShardIntegrityError` naming the shard instead of hanging, and
abandoning an epoch mid-way shuts the prefetch thread down cleanly.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import threading
from pathlib import Path

import numpy as np

from .archetypes import ARCHETYPES
from .batching import BucketSampler, sequence_lengths
from .dataset import EMRDataset
from .preprocess import Standardizer, clean_values, impute, observation_deltas
from .schema import FEATURE_NAMES, FEATURES, NUM_TIME_STEPS
from .synthetic import SyntheticEMRGenerator

__all__ = ["ShardIntegrityError", "ShardedDataset", "ShardedDataLoader",
           "generate_shards", "regenerate_shard", "plan_shards"]

MANIFEST_NAME = "manifest.json"
MANIFEST_FORMAT = 1

#: File name -> (dtype, trailing shape) of each per-shard array.  The
#: leading axis is always the shard's admission count.
_SHARD_FILES = ("raw.npy", "labels.npy", "annot.npy", "lengths.npy")

_HASH_CHUNK = 1 << 20


class ShardIntegrityError(RuntimeError):
    """A shard's on-disk bytes do not match its manifest entry.

    Raised with the offending shard's name in the message, both by
    :meth:`ShardedDataset.open` (missing files, size mismatches) and by
    the streaming loader's checksum verification (corrupted contents).
    """


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------

def plan_shards(num_admissions, shard_size):
    """The shard grid: ``[(shard_id, count), ...]`` covering the cohort.

    Every shard holds ``shard_size`` admissions except possibly the last.
    The grid depends only on the two arguments, so it is part of the
    determinism key alongside the seed.
    """
    num_admissions = int(num_admissions)
    shard_size = int(shard_size)
    if num_admissions <= 0:
        raise ValueError(f"num_admissions must be positive, "
                         f"got {num_admissions}")
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    counts = []
    remaining = num_admissions
    shard_id = 0
    while remaining > 0:
        count = min(shard_size, remaining)
        counts.append((shard_id, count))
        remaining -= count
        shard_id += 1
    return counts


def _shard_dirname(shard_id):
    return f"shard_{shard_id:05d}"


def _shard_arrays(generator_kwargs, seed, shard_id, count, dtype):
    """Deterministically generate one shard's arrays.

    The RNG stream is keyed by ``(seed, shard_id)`` so any worker can
    produce any shard, in any order, with identical bytes.  Returns the
    array dict plus the shard's moment statistics and length histogram.
    """
    generator = SyntheticEMRGenerator(**generator_kwargs)
    rng = np.random.default_rng([int(seed), int(shard_id)])
    admissions = generator.sample_many(int(count), rng)

    raw = np.stack([adm.values for adm in admissions])
    raw = clean_values(raw).astype(dtype)
    mask = ~np.isnan(raw)
    lengths = sequence_lengths(mask).astype(np.int16)

    labels = np.stack([
        np.array([adm.mortality for adm in admissions], dtype=np.int8),
        np.array([adm.long_stay for adm in admissions], dtype=np.int8),
    ], axis=1)
    archetype_ids = {a.name: i for i, a in enumerate(ARCHETYPES)}
    annot = np.stack([
        np.array([archetype_ids[adm.archetype] for adm in admissions],
                 dtype=np.int16),
        np.array([-1 if adm.onset_hour is None else adm.onset_hour
                  for adm in admissions], dtype=np.int16),
    ], axis=1)

    # Per-shard moment statistics over *observed* cells, accumulated in
    # float64.  np.nansum uses pairwise summation, which is deterministic
    # for a fixed array, and combining per-shard moments in shard_id
    # order (see _standardizer_from_entries) is deterministic across
    # worker counts.
    flat = raw.astype(np.float64).reshape(-1, raw.shape[-1])
    moments = {
        "count": mask.reshape(-1, raw.shape[-1]).sum(axis=0),
        "sum": np.nansum(flat, axis=0),
        "sumsq": np.nansum(flat * flat, axis=0),
    }
    histogram = np.bincount(lengths, minlength=raw.shape[1] + 1)
    arrays = {"raw.npy": raw, "labels.npy": labels, "annot.npy": annot,
              "lengths.npy": lengths}
    return arrays, moments, histogram


def _sha256(path):
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_HASH_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def _write_shard(root, generator_kwargs, seed, shard_id, count, dtype):
    """Generate and write one shard; returns its manifest entry."""
    arrays, moments, histogram = _shard_arrays(generator_kwargs, seed,
                                               shard_id, count, dtype)
    shard_dir = Path(root) / _shard_dirname(shard_id)
    shard_dir.mkdir(parents=True, exist_ok=True)
    files = {}
    for name, array in arrays.items():
        path = shard_dir / name
        np.save(path, array)
        files[name] = {"sha256": _sha256(path),
                       "bytes": path.stat().st_size}
    return {
        "shard_id": int(shard_id),
        "path": _shard_dirname(shard_id),
        "count": int(count),
        "length_histogram": [int(n) for n in histogram],
        "moments": {key: [float(v) for v in values]
                    for key, values in moments.items()},
        "files": files,
    }


#: Worker-pool rendezvous state (per process, set by the pool initializer).
#: With ``sync_workers`` every worker blocks in its *first job* until all
#: workers hold one — proving each pool process really generates at least
#: one shard, which makes multi-process smoke tests deterministic instead
#: of racing a fast worker that could drain the queue alone.
_WORKER_BARRIER = None
_WORKER_SYNCED = False


def _init_worker_barrier(barrier):
    global _WORKER_BARRIER, _WORKER_SYNCED
    _WORKER_BARRIER = barrier
    _WORKER_SYNCED = False


def _write_shard_star(args):
    global _WORKER_SYNCED
    if _WORKER_BARRIER is not None and not _WORKER_SYNCED:
        _WORKER_SYNCED = True
        _WORKER_BARRIER.wait()
    entry = _write_shard(*args)
    # Transient provenance: which process built this shard.  Popped
    # before the manifest is written (shard bytes and manifest stay
    # byte-identical for any worker count) and surfaced as
    # ``store.generation_pids``.
    entry["pid"] = os.getpid()
    return entry


def _standardizer_from_entries(entries):
    """Combine per-shard moments (ascending shard_id) into a fitted
    :class:`~repro.data.preprocess.Standardizer`.

    Sequential reduction in shard order keeps the result independent of
    which worker generated which shard.  Features never observed in any
    shard fall back to the schema's healthy statistics, and near-zero
    spreads are clamped to 1.0 — the same guards as ``Standardizer.fit``.
    """
    entries = sorted(entries, key=lambda e: e["shard_id"])
    count = np.zeros(len(FEATURES))
    total = np.zeros(len(FEATURES))
    sumsq = np.zeros(len(FEATURES))
    for entry in entries:
        count = count + np.asarray(entry["moments"]["count"], dtype=np.float64)
        total = total + np.asarray(entry["moments"]["sum"], dtype=np.float64)
        sumsq = sumsq + np.asarray(entry["moments"]["sumsq"],
                                   dtype=np.float64)
    schema_mean = np.array([spec.mean for spec in FEATURES])
    schema_std = np.array([spec.std for spec in FEATURES])
    observed = count > 0
    safe = np.where(observed, count, 1.0)
    mean = np.where(observed, total / safe, schema_mean)
    var = np.maximum(sumsq / safe - (total / safe) ** 2, 0.0)
    std = np.where(observed, np.sqrt(var), schema_std)
    std = np.where(std < 1e-8, 1.0, std)
    standardizer = Standardizer()
    standardizer.mean = mean
    standardizer.std = std
    return standardizer


#: Generator knobs recorded in the manifest so shards can be regenerated
#: from it alone (``regenerate_shard``), without the profile registry.
_GENERATOR_KEYS = ("steps", "severity_gain", "rate_scale", "label_noise",
                   "initial_scale", "mortality_offset")


def _generator_kwargs(profile):
    generator = profile.generator()
    return {
        "steps": generator.steps,
        "severity_gain": generator.observation_model.severity_gain,
        "rate_scale": generator.observation_model.rate_scale,
        "label_noise": generator.label_noise,
        "initial_scale": generator.initial_scale,
        "mortality_offset": generator.mortality_offset,
    }


def generate_shards(out_dir, num_admissions, cohort="physionet2012",
                    shard_size=4096, seed=None, num_workers=1,
                    dtype="float32", submit_order=None,
                    sync_workers=False):
    """Generate a sharded cohort store under ``out_dir``.

    Parameters
    ----------
    out_dir:
        Destination directory (created; must not already hold a manifest).
    num_admissions:
        Total cohort size; the last shard may be short.
    cohort:
        Profile name (``"physionet2012"`` / ``"mimic3"``) fixing the
        simulator configuration.
    shard_size:
        Admissions per shard.  Part of the determinism key: the same
        ``(cohort, seed, num_admissions, shard_size, dtype)`` always
        produces byte-identical shards and manifest.
    seed:
        Cohort seed (defaults to the profile's).  Each shard derives its
        own independent RNG stream from ``(seed, shard_id)``.
    num_workers:
        Process count for generation.  Purely a throughput knob — the
        output is byte-identical for any worker count or scheduling
        order (``tests/data/test_shards_properties.py``).
    dtype:
        Storage dtype of ``raw.npy`` (``"float32"`` default halves the
        store; ``"float64"`` matches the in-memory simulator bytes).
    submit_order:
        Optional permutation of shard ids fixing submission order —
        exists so tests can prove order-independence explicitly.
    sync_workers:
        With ``num_workers > 1``, rendezvous all pool processes inside
        their first job so *every* worker provably generates at least
        one shard (requires at least as many shards as workers).
        Exists for multi-process smoke tests — output bytes are
        unaffected.  Per-shard builder pids are surfaced either way as
        ``store.generation_pids``.

    Returns the opened :class:`ShardedDataset`.
    """
    from .cohorts import PROFILES

    key = cohort.lower().replace("-", "").replace("_", "")
    aliases = {"physionet": "physionet2012", "mimiciii": "mimic3",
               "mimic": "mimic3"}
    profile = PROFILES[aliases.get(key, key)]
    seed = int(seed if seed is not None else profile.seed)
    dtype = np.dtype(dtype)
    if dtype.kind != "f":
        raise ValueError(f"dtype must be a float type, got {dtype}")

    out_dir = Path(out_dir)
    if (out_dir / MANIFEST_NAME).exists():
        raise FileExistsError(f"{out_dir} already holds a manifest; "
                              "refusing to overwrite an existing store")
    out_dir.mkdir(parents=True, exist_ok=True)

    generator_kwargs = _generator_kwargs(profile)
    grid = plan_shards(num_admissions, shard_size)
    if submit_order is not None:
        by_id = dict(grid)
        if sorted(submit_order) != [shard_id for shard_id, _ in grid]:
            raise ValueError("submit_order must be a permutation of the "
                             "shard ids")
        grid = [(shard_id, by_id[shard_id]) for shard_id in submit_order]
    jobs = [(str(out_dir), generator_kwargs, seed, shard_id, count,
             str(dtype)) for shard_id, count in grid]

    if num_workers > 1:
        import multiprocessing
        context = multiprocessing.get_context("fork")
        initializer, initargs = None, ()
        if sync_workers:
            if len(jobs) < num_workers:
                raise ValueError(
                    f"sync_workers needs at least one shard per worker: "
                    f"{len(jobs)} shard(s) for {num_workers} workers")
            initializer = _init_worker_barrier
            initargs = (context.Barrier(num_workers),)
        with context.Pool(num_workers, initializer=initializer,
                          initargs=initargs) as pool:
            entries = list(pool.imap_unordered(_write_shard_star, jobs,
                                               chunksize=1))
    else:
        entries = [_write_shard_star(job) for job in jobs]
    entries.sort(key=lambda e: e["shard_id"])
    generation_pids = {entry["shard_id"]: entry.pop("pid")
                       for entry in entries}

    manifest = {
        "format": MANIFEST_FORMAT,
        "cohort": profile.name,
        "seed": seed,
        "num_admissions": int(num_admissions),
        "shard_size": int(shard_size),
        "dtype": dtype.name,
        "num_time_steps": NUM_TIME_STEPS,
        "feature_names": list(FEATURE_NAMES),
        "archetype_names": [a.name for a in ARCHETYPES],
        "generator": generator_kwargs,
        "shards": entries,
    }
    with open(out_dir / MANIFEST_NAME, "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    _standardizer_from_entries(entries).save(out_dir / "standardizer.npz")
    store = ShardedDataset.open(out_dir)
    store.generation_pids = generation_pids
    return store


def regenerate_shard(store_dir, shard_id):
    """Rebuild one shard's files from the manifest's determinism key.

    Overwrites the shard directory in place and verifies the regenerated
    bytes reproduce the manifest's checksums — a mismatch (e.g. the
    store was generated by an incompatible simulator version) raises
    :class:`ShardIntegrityError` naming the shard.  Returns the shard's
    manifest entry.
    """
    store_dir = Path(store_dir)
    with open(store_dir / MANIFEST_NAME) as handle:
        manifest = json.load(handle)
    by_id = {entry["shard_id"]: entry for entry in manifest["shards"]}
    if shard_id not in by_id:
        raise KeyError(f"no shard {shard_id} in {store_dir}")
    expected = by_id[shard_id]
    generator_kwargs = {key: manifest["generator"][key]
                        for key in _GENERATOR_KEYS}
    entry = _write_shard(store_dir, generator_kwargs, manifest["seed"],
                         shard_id, expected["count"], manifest["dtype"])
    for name, info in expected["files"].items():
        regenerated = entry["files"][name]
        if regenerated["sha256"] != info["sha256"]:
            raise ShardIntegrityError(
                f"{expected['path']}: regenerated {name} does not "
                f"reproduce the manifest checksum — the store was built "
                f"by an incompatible generator")
    return entry


# ----------------------------------------------------------------------
# Reading
# ----------------------------------------------------------------------

class _NpyReader:
    """Row-addressable reader over one ``.npy`` file.

    Reads rows with plain ``seek``/``read`` (coalescing consecutive
    runs) rather than memmaps, so streamed epochs do not accrue mapped
    page-cache pages in the process RSS — the property the memory
    ceiling benchmark depends on.  Size mismatches (truncation) raise
    :class:`ShardIntegrityError` naming the shard.
    """

    def __init__(self, path, shard_name):
        self.path = Path(path)
        self.shard_name = shard_name
        self._file = open(self.path, "rb")
        try:
            version = np.lib.format.read_magic(self._file)
            if version == (1, 0):
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_1_0(self._file)
            else:
                shape, fortran, dtype = \
                    np.lib.format.read_array_header_2_0(self._file)
            if fortran:
                raise ShardIntegrityError(
                    f"{shard_name}: {self.path.name} is Fortran-ordered; "
                    "shard arrays must be C-contiguous")
            self.shape = shape
            self.dtype = dtype
            self._offset = self._file.tell()
            self._row_bytes = (int(np.prod(shape[1:], dtype=np.int64))
                               * dtype.itemsize)
            expected = self._offset + self._row_bytes * shape[0]
            actual = os.fstat(self._file.fileno()).st_size
            if actual < expected:
                raise ShardIntegrityError(
                    f"{shard_name}: {self.path.name} is truncated "
                    f"({actual} bytes on disk, {expected} expected)")
        except Exception:
            self._file.close()
            raise

    def read_rows(self, rows):
        """Gather the given rows (any order) into a fresh array."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((len(rows),) + self.shape[1:], dtype=self.dtype)
        if not len(rows):
            return out
        if rows.min() < 0 or rows.max() >= self.shape[0]:
            raise IndexError(f"row index out of range for {self.path}")
        order = np.argsort(rows, kind="stable")
        sorted_rows = rows[order]
        # Coalesce consecutive rows into single reads.
        run_starts = np.flatnonzero(
            np.diff(sorted_rows, prepend=sorted_rows[0] - 2) != 1)
        run_bounds = list(run_starts) + [len(sorted_rows)]
        flat = out.reshape(len(rows), -1)
        for begin, end in zip(run_bounds[:-1], run_bounds[1:]):
            first = int(sorted_rows[begin])
            span = end - begin
            self._file.seek(self._offset + first * self._row_bytes)
            data = self._file.read(span * self._row_bytes)
            if len(data) != span * self._row_bytes:
                raise ShardIntegrityError(
                    f"{self.shard_name}: short read from {self.path.name} "
                    f"(shard file truncated mid-epoch?)")
            block = np.frombuffer(data, dtype=self.dtype)
            flat[order[begin:end]] = block.reshape(span, -1)
        return out

    def read_all(self):
        return self.read_rows(np.arange(self.shape[0]))

    def close(self):
        self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


class ShardedDataset:
    """Lazy view over a sharded cohort store (or a subset of its shards).

    Opening a store reads *only* the manifest: admission counts, length
    histograms, moment statistics, and checksums.  Per-shard label and
    length arrays (a few bytes per admission) load on first use; the
    raw value arrays are only ever touched by :meth:`load_shard`,
    :meth:`gather`, and the streaming loader — never by the metadata
    surface (``tests/data/test_shards.py`` pins this by destroying
    ``raw.npy`` and exercising every metadata path).

    The dataset plugs into the training stack anywhere an
    :class:`~repro.data.dataset.EMRDataset` is accepted:
    :func:`repro.data.iterate_batches` streams it through a
    :class:`ShardedDataLoader`, ``labels``/``subset``/``len`` cover the
    engine's evaluation paths, and :meth:`materialize` concatenates the
    whole store into an in-memory ``EMRDataset`` (small cohorts only).
    """

    def __init__(self, root, manifest, entries, standardizer):
        self.root = Path(root)
        self.manifest = manifest
        self.entries = sorted(entries, key=lambda e: e["shard_id"])
        self.standardizer = standardizer
        self.dtype = np.dtype(manifest["dtype"])
        self.feature_names = tuple(manifest["feature_names"])
        self.num_time_steps = int(manifest["num_time_steps"])
        counts = [entry["count"] for entry in self.entries]
        #: Global row offset of each shard (leading 0, trailing total).
        self.offsets = np.concatenate([[0], np.cumsum(counts)]).astype(
            np.int64)
        self._lock = threading.Lock()
        self._verified = set()
        self._lengths = None
        self._labels = None
        self._annot = None

    # ------------------------------------------------------------------
    # Opening / validation
    # ------------------------------------------------------------------
    @classmethod
    def open(cls, root, verify=False):
        """Open a store directory, validating the manifest.

        Structural validation always runs: the manifest format, the
        feature schema, and every shard file's existence and size.
        ``verify=True`` additionally checks every content checksum up
        front (a full read of the store); otherwise checksums are
        verified lazily, once per shard, on first data access.
        """
        root = Path(root)
        manifest_path = root / MANIFEST_NAME
        if not manifest_path.exists():
            raise FileNotFoundError(f"no {MANIFEST_NAME} under {root}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ShardIntegrityError(
                f"unsupported manifest format "
                f"{manifest.get('format')!r} in {manifest_path}")
        if tuple(manifest["feature_names"]) != FEATURE_NAMES:
            raise ShardIntegrityError(
                f"{manifest_path}: feature schema does not match this "
                f"build ({len(manifest['feature_names'])} features in "
                f"the manifest, {len(FEATURE_NAMES)} in the schema)")
        entries = manifest["shards"]
        total = sum(entry["count"] for entry in entries)
        if total != manifest["num_admissions"]:
            raise ShardIntegrityError(
                f"{manifest_path}: shard counts sum to {total}, "
                f"manifest claims {manifest['num_admissions']}")
        for entry in entries:
            shard_dir = root / entry["path"]
            for name in _SHARD_FILES:
                info = entry["files"].get(name)
                path = shard_dir / name
                if info is None or not path.exists():
                    raise ShardIntegrityError(
                        f"{entry['path']}: missing shard file {name}")
                size = path.stat().st_size
                if size != info["bytes"]:
                    raise ShardIntegrityError(
                        f"{entry['path']}: {name} is {size} bytes on "
                        f"disk, manifest records {info['bytes']} "
                        f"(truncated or corrupted shard)")
        standardizer = _standardizer_from_entries(entries)
        dataset = cls(root, manifest, entries, standardizer)
        if verify:
            for entry in dataset.entries:
                dataset._verify_shard(entry)
        return dataset

    def _verify_shard(self, entry):
        """Checksum every file of a shard against the manifest."""
        for name, info in entry["files"].items():
            path = self.root / entry["path"] / name
            digest = _sha256(path)
            if digest != info["sha256"]:
                raise ShardIntegrityError(
                    f"{entry['path']}: checksum mismatch for {name} "
                    f"(expected {info['sha256'][:12]}…, got "
                    f"{digest[:12]}…) — shard contents are corrupted")

    def ensure_verified(self, shard_index):
        """Verify a shard's checksums once per dataset instance."""
        entry = self.entries[shard_index]
        with self._lock:
            if entry["shard_id"] in self._verified:
                return
        self._verify_shard(entry)
        with self._lock:
            self._verified.add(entry["shard_id"])

    def validate(self):
        """Eagerly checksum every shard (full read of the store)."""
        for index in range(len(self.entries)):
            self.ensure_verified(index)

    # ------------------------------------------------------------------
    # Shard selection (views)
    # ------------------------------------------------------------------
    def select_shards(self, shard_ids):
        """A view over a subset of shards.

        The view's standardizer is re-derived from *its own* shards'
        moments, so a train view never sees validation statistics —
        the same no-leakage rule as
        :func:`repro.data.dataset.train_val_test_split`.
        """
        wanted = set(int(s) for s in shard_ids)
        known = {entry["shard_id"] for entry in self.entries}
        missing = wanted - known
        if missing:
            raise KeyError(f"unknown shard ids {sorted(missing)}")
        entries = [entry for entry in self.entries
                   if entry["shard_id"] in wanted]
        return ShardedDataset(self.root, self.manifest, entries,
                              _standardizer_from_entries(entries))

    def split(self, val_shards=1):
        """Hold out the last ``val_shards`` shards as a validation view.

        Returns ``(train_view, validation_view)``.  Both views stream
        independently; the train view's standardizer is fit on the
        train shards only.
        """
        val_shards = int(val_shards)
        if not 0 < val_shards < len(self.entries):
            raise ValueError(
                f"val_shards must lie in [1, {len(self.entries) - 1}], "
                f"got {val_shards}")
        ids = [entry["shard_id"] for entry in self.entries]
        return (self.select_shards(ids[:-val_shards]),
                self.select_shards(ids[-val_shards:]))

    # ------------------------------------------------------------------
    # Lazy metadata surface (never touches raw.npy)
    # ------------------------------------------------------------------
    def __len__(self):
        return int(self.offsets[-1])

    @property
    def num_shards(self):
        return len(self.entries)

    @property
    def num_features(self):
        return len(self.feature_names)

    def lengths(self):
        """Per-admission true sequence lengths (from ``lengths.npy``)."""
        if self._lengths is None:
            parts = [self._read_small(entry, "lengths.npy")
                     for entry in self.entries]
            self._lengths = np.concatenate(parts).astype(np.int64)
        return self._lengths

    def length_histogram(self):
        """Cohort-wide length histogram summed from the manifest."""
        width = self.num_time_steps + 1
        total = np.zeros(width, dtype=np.int64)
        for entry in self.entries:
            histogram = np.asarray(entry["length_histogram"],
                                   dtype=np.int64)
            total[:len(histogram)] += histogram
        return total

    def labels(self, task):
        """Label vector for a task (loads only the tiny label arrays)."""
        labels, annot = self._load_labels()
        if task == "mortality":
            return labels[:, 0].astype(np.int64)
        if task == "los":
            return labels[:, 1].astype(np.int64)
        if task == "phenotype":
            return annot[:, 0].astype(np.int64)
        raise ValueError(f"unknown task {task!r}; "
                         "use 'mortality', 'los', or 'phenotype'")

    def statistics(self):
        """Table-I statistics computed from metadata + labels only.

        Exactly matches ``materialize().statistics()`` — observation
        counts come from the manifest's moment statistics, which are
        integer-exact.
        """
        labels, _ = self._load_labels()
        mortality = labels[:, 0]
        long_stay = labels[:, 1]
        cells = len(self) * self.num_time_steps * self.num_features
        observed = sum(float(np.sum(entry["moments"]["count"]))
                       for entry in self.entries)
        return {
            "admissions": len(self),
            "survivor": int((mortality == 0).sum()),
            "non_survivor": int((mortality == 1).sum()),
            "los_le_7": int((long_stay == 0).sum()),
            "los_gt_7": int((long_stay == 1).sum()),
            "avg_records_per_patient": observed / len(self),
            "num_features": self.num_features,
            "missing_rate": 1.0 - observed / cells,
        }

    def _read_small(self, entry, name):
        with _NpyReader(self.root / entry["path"] / name,
                        entry["path"]) as reader:
            return reader.read_all()

    def _load_labels(self):
        with self._lock:
            if self._labels is None:
                self._labels = np.concatenate(
                    [self._read_small(entry, "labels.npy")
                     for entry in self.entries])
                self._annot = np.concatenate(
                    [self._read_small(entry, "annot.npy")
                     for entry in self.entries])
            return self._labels, self._annot

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def open_readers(self):
        """Fresh per-epoch ``raw.npy`` readers (caller closes them)."""
        return _ReaderPool(self)

    def gather_raw(self, indices, readers=None):
        """Gather raw rows for global indices, in the given order."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0
                             or indices.max() >= len(self)):
            raise IndexError("admission index out of range")
        owned = readers is None
        if owned:
            readers = self.open_readers()
        try:
            out = np.empty((len(indices), self.num_time_steps,
                            self.num_features), dtype=self.dtype)
            shard_of = np.searchsorted(self.offsets, indices,
                                       side="right") - 1
            for shard_index in np.unique(shard_of):
                where = np.flatnonzero(shard_of == shard_index)
                rows = indices[where] - self.offsets[shard_index]
                self.ensure_verified(int(shard_index))
                out[where] = readers.get(int(shard_index)).read_rows(rows)
            return out
        finally:
            if owned:
                readers.close()

    def _preprocess(self, raw):
        """Raw rows -> model-ready arrays via the canonical pipeline.

        Identical, elementwise-per-row math to ``build_dataset`` with a
        fixed standardizer, so any grouping of rows (whole store, one
        shard, one batch) produces bit-identical values.
        """
        mask = ~np.isnan(raw)
        values = impute(self.standardizer.transform(raw), mask)
        return values, mask, mask.any(axis=1), observation_deltas(mask)

    def _as_dataset(self, raw, labels, annot):
        values, mask, ever_observed, deltas = self._preprocess(raw)
        names = self.manifest["archetype_names"]
        return EMRDataset(
            values=values, mask=mask, ever_observed=ever_observed,
            deltas=deltas,
            mortality=labels[:, 0].astype(np.int64),
            long_stay=labels[:, 1].astype(np.int64),
            archetypes=[names[i] for i in annot[:, 0]],
            onset_hours=[None if h < 0 else int(h) for h in annot[:, 1]],
            feature_names=self.feature_names,
        )

    def subset(self, indices):
        """Materialize the given admissions as an in-memory dataset."""
        indices = np.asarray(indices, dtype=np.int64)
        labels, annot = self._load_labels()
        return self._as_dataset(self.gather_raw(indices),
                                labels[indices], annot[indices])

    def load_shard(self, shard_index):
        """Materialize one shard (by position in this view) after
        verifying its checksums."""
        entry = self.entries[shard_index]
        self.ensure_verified(shard_index)
        with _NpyReader(self.root / entry["path"] / "raw.npy",
                        entry["path"]) as reader:
            raw = reader.read_all()
        labels = self._read_small(entry, "labels.npy")
        annot = self._read_small(entry, "annot.npy")
        return self._as_dataset(raw, labels, annot)

    def materialize(self):
        """Concatenate every shard into one in-memory ``EMRDataset``.

        Intended for small stores (tests, validation views): memory is
        O(cohort), which is exactly what the streaming loader avoids.
        """
        shards = [self.load_shard(i) for i in range(len(self.entries))]
        first = shards[0]
        return EMRDataset(
            values=np.concatenate([s.values for s in shards]),
            mask=np.concatenate([s.mask for s in shards]),
            ever_observed=np.concatenate([s.ever_observed for s in shards]),
            deltas=np.concatenate([s.deltas for s in shards]),
            mortality=np.concatenate([s.mortality for s in shards]),
            long_stay=np.concatenate([s.long_stay for s in shards]),
            archetypes=sum((s.archetypes for s in shards), []),
            onset_hours=sum((s.onset_hours for s in shards), []),
            feature_names=first.feature_names,
        )

    # ------------------------------------------------------------------
    # Epoch planning (shared with the in-memory iterate_batches)
    # ------------------------------------------------------------------
    def epoch_plan(self, batch_size, rng=None, bucket_by_length=False):
        """The epoch's batches as global-index arrays.

        Consumes ``rng`` with *exactly* the calls the in-memory
        :func:`repro.data.iterate_batches` makes over a materialized
        copy — global shuffle (or global :class:`BucketSampler` over the
        lazy lengths metadata) then fixed-size slices — which is what
        makes a streamed epoch bit-identical to an in-memory epoch
        under the same seed.
        """
        if bucket_by_length:
            return BucketSampler(self.lengths(),
                                 batch_size).batches(rng)
        indices = np.arange(len(self))
        if rng is not None:
            rng.shuffle(indices)
        return [indices[start:start + int(batch_size)]
                for start in range(0, len(indices), int(batch_size))]

    def iter_batches(self, task, batch_size, rng=None,
                     bucket_by_length=False, prefetch=4):
        """Stream one epoch of ``(batch_dataset, labels)`` minibatches."""
        loader = ShardedDataLoader(self, task, batch_size,
                                   bucket_by_length=bucket_by_length,
                                   prefetch=prefetch)
        return loader.batches(rng)


class _ReaderPool:
    """Lazily opened ``raw.npy`` readers for one consumer thread."""

    def __init__(self, dataset):
        self._dataset = dataset
        self._readers = {}

    def get(self, shard_index):
        reader = self._readers.get(shard_index)
        if reader is None:
            entry = self._dataset.entries[shard_index]
            reader = _NpyReader(
                self._dataset.root / entry["path"] / "raw.npy",
                entry["path"])
            self._readers[shard_index] = reader
        return reader

    def close(self):
        for reader in self._readers.values():
            reader.close()
        self._readers.clear()


# ----------------------------------------------------------------------
# Streaming loader
# ----------------------------------------------------------------------

PREFETCH_THREAD_NAME = "repro-shard-prefetch"

_BATCH, _DONE, _ERROR = "batch", "done", "error"


class ShardedDataLoader:
    """Out-of-core minibatch stream with background-thread prefetch.

    Each call to :meth:`batches` runs one epoch: the batch plan is
    computed up front from lazy metadata (see
    :meth:`ShardedDataset.epoch_plan`), then a dedicated prefetch
    thread gathers, verifies, and preprocesses batches ahead of the
    consumer through a bounded queue (``prefetch`` batches deep, so
    resident memory is O(batch_size), independent of cohort size).

    Failure semantics: any error in the prefetch thread — including
    :class:`ShardIntegrityError` from a corrupted shard — is re-raised
    in the consumer, never swallowed, and the thread always terminates.
    Abandoning the generator mid-epoch (``close``/GC) drains the queue,
    signals the thread, and joins it; ``tests/data/test_shards_faults``
    asserts no ``repro-shard-prefetch`` thread survives either path.
    """

    def __init__(self, dataset, task, batch_size, bucket_by_length=False,
                 prefetch=4):
        if not isinstance(dataset, ShardedDataset):
            raise TypeError("ShardedDataLoader needs a ShardedDataset, "
                            f"got {type(dataset).__name__}")
        if int(batch_size) <= 0:
            raise ValueError(f"batch_size must be positive, "
                             f"got {batch_size}")
        if int(prefetch) <= 0:
            raise ValueError(f"prefetch must be positive, got {prefetch}")
        self.dataset = dataset
        self.task = task
        self.batch_size = int(batch_size)
        self.bucket_by_length = bool(bucket_by_length)
        self.prefetch = int(prefetch)

    # -- producer side -------------------------------------------------
    def _produce(self, plan, out_queue, stop):
        def put(item):
            """Bounded put that gives up when the consumer is gone."""
            while not stop.is_set():
                try:
                    out_queue.put(item, timeout=0.1)
                    return True
                except queue.Full:
                    continue
            return False

        dataset = self.dataset
        labels = dataset.labels(self.task)
        readers = dataset.open_readers()
        try:
            for batch_indices in plan:
                if stop.is_set():
                    return
                raw = dataset.gather_raw(batch_indices, readers=readers)
                all_labels, annot = dataset._load_labels()
                batch = dataset._as_dataset(raw, all_labels[batch_indices],
                                            annot[batch_indices])
                if not put((_BATCH, (batch, labels[batch_indices]))):
                    return
            put((_DONE, None))
        except BaseException as error:  # delivered to the consumer
            put((_ERROR, error))
        finally:
            readers.close()

    # -- consumer side -------------------------------------------------
    def batches(self, rng=None):
        """Generator over one epoch of ``(batch, labels)`` pairs."""
        plan = self.dataset.epoch_plan(self.batch_size, rng,
                                       self.bucket_by_length)
        stop = threading.Event()
        out_queue = queue.Queue(maxsize=self.prefetch)
        worker = threading.Thread(
            target=self._produce, args=(plan, out_queue, stop),
            name=PREFETCH_THREAD_NAME, daemon=True)
        worker.start()
        try:
            while True:
                try:
                    kind, payload = out_queue.get(timeout=1.0)
                except queue.Empty:
                    if not worker.is_alive():
                        raise RuntimeError(
                            "shard prefetch thread died without "
                            "delivering a result") from None
                    continue
                if kind == _DONE:
                    return
                if kind == _ERROR:
                    raise payload
                yield payload
        finally:
            stop.set()
            while True:
                try:
                    out_queue.get_nowait()
                except queue.Empty:
                    break
            worker.join(timeout=30.0)
