"""End-to-end training benchmarks over a fixed synthetic cohort.

This module is the measurement half of the performance subsystem: it
trains a real model with the real :class:`~repro.train.Trainer` on a
deterministic synthetic cohort, under the per-op profiler, and reports
throughput (training steps/sec) plus the per-op breakdown.  The
``repro bench`` CLI subcommand and the ``pytest -m bench`` perf-smoke
lane are both thin wrappers over :func:`benchmark_training`.

Imports of the model/training stack happen at module level here — this
module must therefore never be imported from ``repro.bench.__init__``
eagerly (it is exposed lazily), keeping the ``repro.nn -> repro.bench``
hook import one-way.
"""

from __future__ import annotations

import resource
from time import perf_counter

import numpy as np

from ..baselines import build_model
from ..data import (NUM_FEATURES, ShardedDataset, SyntheticEMRGenerator,
                    train_val_test_split)
from ..nn.layers import GRUCell
from ..train import Trainer
from .profiler import profile

__all__ = ["benchmark_capture", "benchmark_cohort", "benchmark_streaming",
           "benchmark_training", "benchmark_sharded_training",
           "max_rss_bytes", "set_fused", "set_fused_scan"]


def max_rss_bytes():
    """Peak resident set size of this process so far, in bytes.

    ``ru_maxrss`` is reported in kilobytes on Linux; it is a
    process-lifetime high-water mark, so memory-ceiling measurements
    must run in a fresh subprocess (see docs/DATA.md)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def set_fused(model, fused):
    """Switch every :class:`GRUCell` in ``model`` between the fused
    kernel and the unfused reference composition; returns the number of
    cells flipped."""
    flipped = 0
    for module in model.modules():
        if isinstance(module, GRUCell):
            module.fused = bool(fused)
            flipped += 1
    return flipped


def set_fused_scan(model, fused_scan):
    """Switch every sequence layer carrying a ``fused_scan`` flag
    (GRU/LSTM) between the sequence-fused scan kernel and the
    step-unrolled path; returns the number of layers flipped."""
    flipped = 0
    for module in model.modules():
        if hasattr(module, "fused_scan"):
            module.fused_scan = bool(fused_scan)
            flipped += 1
    return flipped


def benchmark_cohort(num_admissions=64, seed=0):
    """A deterministic synthetic cohort for benchmarking (same seed, same
    bytes — throughput numbers are comparable across runs)."""
    generator = SyntheticEMRGenerator()
    admissions = generator.sample_many(num_admissions,
                                       np.random.default_rng(seed))
    return train_val_test_split(admissions, np.random.default_rng(seed + 1))


def benchmark_training(model_name="GRU", task="mortality", epochs=2,
                       num_admissions=64, batch_size=32, seed=0,
                       fused=True, fused_scan=True, bucket_by_length=False,
                       with_profiler=True, run_dir=None, dtype=None):
    """Train ``model_name`` for ``epochs`` epochs and measure throughput.

    Early stopping is disabled (patience > epochs) so every run performs
    the same number of optimizer steps.  The epoch loop itself is the
    training engine's; ``run_dir`` optionally leaves the durable
    config/metrics/checkpoint artifacts alongside the benchmark numbers.
    ``dtype`` scopes the precision policy (``"float32"``/``"float64"``)
    around model construction *and* training via
    :class:`repro.nn.dtype.autocast`; default is the ambient policy.
    ``fused_scan`` toggles the sequence-fused scan kernels
    (:func:`set_fused_scan`) and ``bucket_by_length`` enables
    length-bucketed batching — the latter also flips the model's
    ``mask_aware`` flag (when it has one) so the scan actually stops at
    each bucket's maximum length.

    Returns a dict with:

    ``steps_per_sec`` / ``seconds_per_batch``
        Training throughput (forward + backward + clip + optimizer step,
        averaged over all batches).
    ``profiler``
        The :class:`~repro.bench.Profiler` covering ``Trainer.fit``, or
        ``None`` when ``with_profiler=False`` (the perf-smoke floor test
        measures raw, uninstrumented speed).
    ``history`` / ``model`` / ``config``
        The training history, trained model, and the run configuration
        (the latter is what ``repro bench`` persists under ``extra``).
        With the profiler on, ``config`` additionally carries the
        per-step byte accounting (``allocated_bytes_per_step``,
        ``peak_grad_bytes``) used by the precision-policy comparison.
    """
    from ..nn.dtype import autocast, get_default_dtype, resolve_dtype

    resolved = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    with autocast(resolved):
        splits = benchmark_cohort(num_admissions=num_admissions, seed=seed)
        model = build_model(model_name, NUM_FEATURES,
                            np.random.default_rng(seed))
        flipped = set_fused(model, fused)
        scan_layers = set_fused_scan(model, fused_scan)
        if bucket_by_length and hasattr(model, "mask_aware"):
            # Bucketing only pays off when the model reads true lengths
            # from the mask so the scan stops at the bucket maximum.
            model.mask_aware = True
        trainer = Trainer(model, task, batch_size=batch_size,
                          max_epochs=epochs, patience=epochs + 1, seed=seed,
                          bucket_by_length=bucket_by_length,
                          run_dir=run_dir)

        profiler = None
        if with_profiler:
            with profile(f"train-{model_name}") as profiler:
                history = trainer.fit(splits.train, splits.validation)
        else:
            history = trainer.fit(splits.train, splits.validation)

    seconds_per_batch = history.seconds_per_batch
    config = {
        "model": model_name,
        "task": task,
        "epochs": epochs,
        "num_admissions": num_admissions,
        "batch_size": batch_size,
        "seed": seed,
        "fused": bool(fused),
        "fused_scan": bool(fused_scan),
        "bucket_by_length": bool(bucket_by_length),
        "mask_aware": bool(getattr(model, "mask_aware", False)),
        "dtype": np.dtype(resolved).name,
        "gru_cells": flipped,
        "scan_layers": scan_layers,
        "num_parameters": model.num_parameters(),
    }
    if profiler is not None:
        # Per-step byte accounting: total op-output allocations (forward)
        # plus backward gradient traffic, normalized by optimizer steps.
        _attach_byte_accounting(config, profiler, history,
                                len(splits.train), batch_size)
    return {
        "steps_per_sec": (1.0 / seconds_per_batch
                          if seconds_per_batch > 0 else float("inf")),
        "seconds_per_batch": seconds_per_batch,
        "profiler": profiler,
        "history": history,
        "model": model,
        "config": config,
    }


def _attach_byte_accounting(config, profiler, history, train_size,
                            batch_size):
    batches_per_epoch = -(-train_size // batch_size)
    num_steps = max(1, history.num_epochs * batches_per_epoch)
    total_bytes = sum(s.forward_bytes + s.backward_bytes
                      for s in profiler.stats.values())
    config["profiled_steps"] = int(num_steps)
    config["allocated_bytes_per_step"] = int(total_bytes // num_steps)
    config["peak_grad_bytes"] = int(profiler.peak_grad_bytes)


def benchmark_capture(model_name="ELDA-Net", num_admissions=64, seed=0,
                      batch_sizes=(1, 32, 64), repeats=30, warmup=5,
                      dtype=None):
    """Eager vs captured-replay steady-state inference latency.

    Builds ``model_name`` fresh (inference cost does not depend on
    trained weights), captures one graph per batch size with
    :func:`repro.nn.capture.trace`, verifies replay is bit-identical to
    the eager forward, then times both paths over the *same* batch:
    ``repeats`` timed iterations after ``warmup`` discarded ones, median
    per-forward latency.  This is the serving-side counterpart of
    :func:`benchmark_training` — no profiler, raw wall-clock only.

    Returns ``{"config": ..., "lanes": {batch_size: {eager_seconds,
    replay_seconds, speedup}}}``; the ``repro bench --capture`` CLI lane
    persists it as ``BENCH_*.json`` and
    ``tests/bench/test_capture_perf.py`` enforces the batch-1 speedup
    floor from ``benchmarks/results/perf_floor.json``.
    """
    from statistics import median

    from ..nn import capture
    from ..nn.dtype import autocast, get_default_dtype, resolve_dtype

    resolved = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    lanes = {}
    with autocast(resolved):
        splits = benchmark_cohort(num_admissions=num_admissions, seed=seed)
        model = build_model(model_name, NUM_FEATURES,
                            np.random.default_rng(seed))
        for batch_size in batch_sizes:
            batch = splits.test.subset(np.arange(batch_size)
                                       % len(splits.test))
            graph = capture.trace(model, batch)
            eager = model.predict_logits(batch)
            if not np.array_equal(eager, graph.replay(batch)):
                raise AssertionError(
                    f"captured replay of {model_name} at batch "
                    f"{batch_size} is not bit-identical to eager")

            def time_lane(run):
                for _ in range(warmup):
                    run()
                samples = []
                for _ in range(repeats):
                    started = perf_counter()
                    run()
                    samples.append(perf_counter() - started)
                return median(samples)

            eager_seconds = time_lane(lambda: model.predict_logits(batch))
            replay_seconds = time_lane(lambda: graph.replay(batch))
            lanes[int(batch_size)] = {
                "eager_seconds": eager_seconds,
                "replay_seconds": replay_seconds,
                "speedup": (eager_seconds / replay_seconds
                            if replay_seconds > 0 else float("inf")),
            }
    config = {
        "model": model_name,
        "num_admissions": num_admissions,
        "seed": seed,
        "batch_sizes": [int(b) for b in batch_sizes],
        "repeats": repeats,
        "warmup": warmup,
        "dtype": np.dtype(resolved).name,
        "num_parameters": model.num_parameters(),
        "captured_thunks": graph.num_thunks,
        "captured_steps": graph.num_steps,
    }
    return {"config": config, "lanes": lanes}


def benchmark_streaming(model_name="GRU", num_admissions=64, seed=0,
                        num_steps=48, repeats=5, dtype=None):
    """Full-recompute vs streaming per-observation inference latency.

    The monitoring workload scores an admission again after every new
    hourly observation.  The *recompute* lane runs a full
    ``predict_logits`` over the growing prefix at each step (what the
    batch serving path costs, O(t) recurrence per observation); the
    *streaming* lane feeds the same observations through one
    :class:`~repro.serve.StreamingSession` (O(1) state update for
    natively streaming models, cached attention state for incremental
    ones).  Both lanes score the identical ``num_steps`` observations of
    one admission, ``repeats`` times; the reported per-step latency is
    the overall mean, and the lanes' probabilities are verified
    bit-identical at every prefix first.

    Models that reject short prefixes (attention over ``t - 1`` earlier
    steps needs at least two) are timed from their first served prefix;
    the rejected prefixes are skipped in both lanes identically.

    Returns ``{"config": ..., "recompute_seconds_per_step": ...,
    "streaming_seconds_per_step": ..., "speedup": ..., "native": ...,
    "incremental": ...}``; the ``repro bench --streaming`` CLI lane
    persists it as ``BENCH_*.json``.
    """
    from ..metrics.probability import sigmoid_probs, softmax_probs
    from ..nn.dtype import autocast, get_default_dtype, resolve_dtype
    from ..serve import Predictor, StreamingSession

    resolved = (resolve_dtype(dtype) if dtype is not None
                else get_default_dtype())
    with autocast(resolved):
        splits = benchmark_cohort(num_admissions=num_admissions, seed=seed)
        model = build_model(model_name, NUM_FEATURES,
                            np.random.default_rng(seed))
        predictor = Predictor(model)
        row = splits.test.subset([0])
        num_steps = min(num_steps, row.num_time_steps)

        def prefix_probs(t):
            logits = predictor.predict_logits(row.truncate(t))
            return (sigmoid_probs(logits) if logits.ndim == 1
                    else softmax_probs(logits))

        def step_session(session, t):
            return session.step(row.values[:, t - 1], row.mask[:, t - 1],
                                row.deltas[:, t - 1])

        rejected = set()
        session = predictor.start_stream()
        for t in range(1, num_steps + 1):
            try:
                expected = prefix_probs(t)
            except Exception:
                # Both lanes must reject the short prefix identically
                # (e.g. attention over t-1 earlier steps needs two); the
                # session keeps the buffered observation either way.
                try:
                    step_session(session, t)
                except Exception:
                    rejected.add(t)
                    continue
                raise AssertionError(
                    f"streamed {model_name} served prefix {t} that the "
                    "full forward rejects")
            streamed = step_session(session, t)
            if not np.array_equal(streamed, expected):
                raise AssertionError(
                    f"streamed {model_name} probabilities diverge from the "
                    f"full forward at prefix {t}")

        recompute_seconds = 0.0
        streaming_seconds = 0.0
        for _ in range(repeats):
            started = perf_counter()
            for t in range(1, num_steps + 1):
                if t not in rejected:
                    prefix_probs(t)
            recompute_seconds += perf_counter() - started

            session = predictor.start_stream()
            started = perf_counter()
            for t in range(1, num_steps + 1):
                try:
                    step_session(session, t)
                except Exception:
                    if t not in rejected:
                        raise
            streaming_seconds += perf_counter() - started

    total_steps = repeats * (num_steps - len(rejected))
    recompute = recompute_seconds / total_steps
    streaming = streaming_seconds / total_steps
    return {
        "config": {
            "model": model_name,
            "num_admissions": num_admissions,
            "seed": seed,
            "num_steps": num_steps,
            "served_steps": num_steps - len(rejected),
            "repeats": repeats,
            "dtype": np.dtype(resolved).name,
            "num_parameters": model.num_parameters(),
        },
        "native": bool(getattr(model, "stream_native", False)),
        "incremental": bool(getattr(model, "stream_incremental", False)),
        "recompute_seconds_per_step": recompute,
        "streaming_seconds_per_step": streaming,
        "speedup": (recompute / streaming if streaming > 0
                    else float("inf")),
    }


def benchmark_sharded_training(shards_dir, model_name="GRU",
                               task="mortality", epochs=1, batch_size=32,
                               seed=0, val_shards=1, bucket_by_length=True,
                               fused=True, fused_scan=True, dtype=None,
                               run_dir=None):
    """Train one model out-of-core from a sharded store and measure
    throughput *and* peak memory.

    The store at ``shards_dir`` (from :func:`repro.data.generate_shards`
    / ``repro shard``) is opened lazily, split into train/validation
    shard views, and streamed through the :class:`ShardedDataLoader` by
    the ordinary :class:`~repro.train.Trainer` — batches never
    materialize more than O(batch + prefetch·batch) admissions.  The
    headline numbers are ``steps_per_sec`` and ``max_rss_bytes`` (the
    process peak RSS after training), which is what BENCH_7.json's
    memory-ceiling claim records; run this in a fresh subprocess when
    the ceiling matters, since ``ru_maxrss`` never decreases.

    Returns the same shape as :func:`benchmark_training` (without a
    profiler) plus ``max_rss_bytes``, ``open_seconds``, and
    ``fit_seconds`` in the result and store metadata in ``config``.
    """
    from ..nn.dtype import autocast, get_default_dtype, resolve_dtype

    resolved = resolve_dtype(dtype) if dtype is not None else get_default_dtype()
    with autocast(resolved):
        opened = perf_counter()
        store = ShardedDataset.open(shards_dir)
        train, validation = store.split(val_shards=val_shards)
        open_seconds = perf_counter() - opened

        model = build_model(model_name, store.num_features,
                            np.random.default_rng(seed))
        flipped = set_fused(model, fused)
        scan_layers = set_fused_scan(model, fused_scan)
        if bucket_by_length and hasattr(model, "mask_aware"):
            model.mask_aware = True
        trainer = Trainer(model, task, batch_size=batch_size,
                          max_epochs=epochs, patience=epochs + 1, seed=seed,
                          bucket_by_length=bucket_by_length,
                          run_dir=run_dir)
        started = perf_counter()
        history = trainer.fit(train, validation)
        fit_seconds = perf_counter() - started

    seconds_per_batch = history.seconds_per_batch
    config = {
        "model": model_name,
        "task": task,
        "epochs": epochs,
        "shards_dir": str(shards_dir),
        "cohort": store.manifest["cohort"],
        "num_admissions": len(store),
        "train_admissions": len(train),
        "val_admissions": len(validation),
        "num_shards": store.num_shards,
        "shard_size": store.manifest["shard_size"],
        "val_shards": int(val_shards),
        "batch_size": batch_size,
        "seed": seed,
        "fused": bool(fused),
        "fused_scan": bool(fused_scan),
        "bucket_by_length": bool(bucket_by_length),
        "mask_aware": bool(getattr(model, "mask_aware", False)),
        "dtype": np.dtype(resolved).name,
        "gru_cells": flipped,
        "scan_layers": scan_layers,
        "num_parameters": model.num_parameters(),
    }
    return {
        "steps_per_sec": (1.0 / seconds_per_batch
                          if seconds_per_batch > 0 else float("inf")),
        "seconds_per_batch": seconds_per_batch,
        "open_seconds": open_seconds,
        "fit_seconds": fit_seconds,
        "max_rss_bytes": max_rss_bytes(),
        "profiler": None,
        "history": history,
        "model": model,
        "config": config,
    }
