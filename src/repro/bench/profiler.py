"""Per-op profiler over the ``@differentiable`` op registry.

Usage::

    from repro.bench import profile

    with profile("train-step") as prof:
        loss = model_loss(...)
        loss.backward()
    print(prof.table())
    prof.save("BENCH_train_step")   # writes BENCH_train_step_<stamp>.json

Every call to a registered primitive (see :mod:`repro.nn.ops`) records a
*forward* event — call count, inclusive and self wall time, allocated
output bytes — and every backward-closure invocation during
``Tensor.backward`` records a *backward* event attributed to the op tag
of the node being differentiated.  Forward and backward are accounted
separately per op.

Contexts nest: each active profiler sees every event exactly once, so an
outer ``profile()`` includes an inner one's ops without double-counting.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter

from . import _hooks

__all__ = ["OpStat", "Profiler", "profile"]


class OpStat:
    """Aggregated forward/backward statistics for one op tag."""

    __slots__ = ("name",
                 "forward_calls", "forward_seconds", "forward_self_seconds",
                 "forward_bytes",
                 "backward_calls", "backward_seconds",
                 "backward_self_seconds", "backward_bytes")

    def __init__(self, name):
        self.name = name
        self.forward_calls = 0
        self.forward_seconds = 0.0
        self.forward_self_seconds = 0.0
        self.forward_bytes = 0
        self.backward_calls = 0
        self.backward_seconds = 0.0
        self.backward_self_seconds = 0.0
        self.backward_bytes = 0

    @property
    def total_seconds(self):
        """Inclusive forward + backward seconds."""
        return self.forward_seconds + self.backward_seconds

    def as_dict(self):
        return {
            "forward": {
                "calls": self.forward_calls,
                "seconds": self.forward_seconds,
                "self_seconds": self.forward_self_seconds,
                "bytes": self.forward_bytes,
            },
            "backward": {
                "calls": self.backward_calls,
                "seconds": self.backward_seconds,
                "self_seconds": self.backward_self_seconds,
                "bytes": self.backward_bytes,
            },
        }

    def __repr__(self):
        return (f"OpStat({self.name!r}, fwd={self.forward_calls}"
                f"/{self.forward_seconds:.4f}s, bwd={self.backward_calls}"
                f"/{self.backward_seconds:.4f}s)")


class Profiler:
    """Records per-op forward/backward events while active.

    Use as a context manager (or via the :func:`profile` alias).  May be
    re-entered; statistics accumulate across activations until
    :meth:`reset`.
    """

    def __init__(self, label=None):
        self.label = label
        self.stats = OrderedDict()
        self.wall_seconds = 0.0
        #: Number of forward events whose output was wired into the
        #: autodiff graph (``requires_grad=True``).  Zero under
        #: ``no_grad`` — the eval-path test relies on this.
        self.grad_graph_outputs = 0
        #: High-water mark of simultaneously live gradient-buffer bytes
        #: (see ``repro.bench._hooks``).  Measures the effect of
        #: ``backward(free_graph=True)`` and in-place accumulation.
        self.peak_grad_bytes = 0
        self._entered_at = None

    # -- context management -------------------------------------------
    def __enter__(self):
        _hooks.push(self)
        self._entered_at = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        # Pop first: an out-of-order exit raises and must leave this
        # profiler's accounting (and the stack) untouched.
        _hooks.pop(self)
        self.wall_seconds += perf_counter() - self._entered_at
        self._entered_at = None
        return False

    # -- event sinks (called from repro.bench._hooks) ------------------
    def _stat(self, name):
        stat = self.stats.get(name)
        if stat is None:
            stat = self.stats[name] = OpStat(name)
        return stat

    def _record_forward(self, name, seconds, self_seconds, nbytes,
                        requires_grad):
        stat = self._stat(name)
        stat.forward_calls += 1
        stat.forward_seconds += seconds
        stat.forward_self_seconds += self_seconds
        stat.forward_bytes += nbytes
        if requires_grad:
            self.grad_graph_outputs += 1

    def _record_backward(self, name, seconds, self_seconds, nbytes):
        stat = self._stat(name)
        stat.backward_calls += 1
        stat.backward_seconds += seconds
        stat.backward_self_seconds += self_seconds
        stat.backward_bytes += nbytes

    # -- introspection -------------------------------------------------
    def reset(self):
        """Clear all recorded statistics."""
        self.stats.clear()
        self.wall_seconds = 0.0
        self.grad_graph_outputs = 0
        self.peak_grad_bytes = 0

    def op(self, name):
        """The :class:`OpStat` for ``name`` (zeros if never recorded)."""
        return self.stats.get(name, OpStat(name))

    def forward_calls(self, name=None):
        """Forward call count for one op, or the total over all ops."""
        if name is not None:
            return self.op(name).forward_calls
        return sum(s.forward_calls for s in self.stats.values())

    def backward_calls(self, name=None):
        """Backward call count for one op, or the total over all ops."""
        if name is not None:
            return self.op(name).backward_calls
        return sum(s.backward_calls for s in self.stats.values())

    def total_self_seconds(self):
        """Sum of forward + backward self time over all ops."""
        return sum(s.forward_self_seconds + s.backward_self_seconds
                   for s in self.stats.values())

    def as_dict(self, extra=None):
        """JSON-able representation (the ``BENCH_*.json`` payload)."""
        payload = {
            "schema": "repro.bench/v1",
            "label": self.label,
            "wall_seconds": self.wall_seconds,
            "grad_graph_outputs": self.grad_graph_outputs,
            "peak_grad_bytes": self.peak_grad_bytes,
            "ops": {name: stat.as_dict()
                    for name, stat in self.stats.items()},
        }
        if extra:
            payload["extra"] = dict(extra)
        return payload

    def table(self, sort_by="total", limit=None):
        """Render a sorted per-op table (delegates to repro.bench.report)."""
        from .report import render_table
        return render_table(self, sort_by=sort_by, limit=limit)

    def save(self, directory=".", extra=None):
        """Write ``BENCH_<label>_<stamp>.json`` (see repro.bench.report)."""
        from .report import write_report
        return write_report(self, directory=directory, extra=extra)


def profile(label=None):
    """Create a :class:`Profiler` — ``with profile() as prof: ...``."""
    return Profiler(label=label)
