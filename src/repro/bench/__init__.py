"""``repro.bench`` — per-op profiling and training benchmarks.

Two layers:

* :func:`profile` / :class:`Profiler` — a context manager that hooks the
  ``@differentiable`` op registry and records call counts, wall time
  (inclusive and self), and allocated bytes for forward and backward
  separately;
* :mod:`repro.bench.runner` — end-to-end training benchmarks on a fixed
  synthetic cohort (the ``repro bench`` CLI subcommand and the
  ``pytest -m bench`` perf-smoke lane are thin wrappers over it).

This package's import graph is deliberately one-way: ``repro.nn`` imports
only :mod:`repro.bench._hooks`, and nothing here imports ``repro.nn`` at
module load (``runner`` is loaded lazily), so instrumentation adds a
single list check to un-profiled op calls.

See docs/PERFORMANCE.md for the full guide.
"""

from .profiler import OpStat, Profiler, profile
from .report import render_table, write_report

__all__ = ["OpStat", "Profiler", "profile", "render_table", "write_report",
           "runner"]


def __getattr__(name):
    if name == "runner":
        from . import runner
        return runner
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
