"""Rendering and persistence of profiler results.

``render_table`` prints the per-op statistics sorted by a chosen column;
``write_report`` persists the same data as ``BENCH_<label>_<stamp>.json``
so runs can be diffed over time (see docs/PERFORMANCE.md for the schema).
"""

from __future__ import annotations

import json
import re
import time
from pathlib import Path

__all__ = ["render_table", "write_report", "SORT_KEYS"]

#: Column name -> key function over OpStat, used by ``--sort`` / table().
SORT_KEYS = {
    "total": lambda s: s.forward_seconds + s.backward_seconds,
    "forward": lambda s: s.forward_seconds,
    "backward": lambda s: s.backward_seconds,
    "self": lambda s: s.forward_self_seconds + s.backward_self_seconds,
    "calls": lambda s: s.forward_calls + s.backward_calls,
    "bytes": lambda s: s.forward_bytes + s.backward_bytes,
}

_COLUMNS = ("op", "fwd calls", "fwd s", "fwd self s", "fwd MB",
            "bwd calls", "bwd s", "bwd self s", "bwd MB")


def render_table(profiler, sort_by="total", limit=None):
    """Format a profiler's per-op statistics as an aligned text table.

    Parameters
    ----------
    profiler:
        A :class:`repro.bench.Profiler`.
    sort_by:
        One of :data:`SORT_KEYS` (descending).
    limit:
        Keep only the top ``limit`` rows (default: all).
    """
    if sort_by not in SORT_KEYS:
        raise ValueError(f"sort_by must be one of {sorted(SORT_KEYS)}, "
                         f"got {sort_by!r}")
    stats = sorted(profiler.stats.values(), key=SORT_KEYS[sort_by],
                   reverse=True)
    if limit is not None:
        stats = stats[:limit]
    rows = [[
        stat.name,
        str(stat.forward_calls),
        f"{stat.forward_seconds:.4f}",
        f"{stat.forward_self_seconds:.4f}",
        f"{stat.forward_bytes / 1e6:.2f}",
        str(stat.backward_calls),
        f"{stat.backward_seconds:.4f}",
        f"{stat.backward_self_seconds:.4f}",
        f"{stat.backward_bytes / 1e6:.2f}",
    ] for stat in stats]
    widths = [max(len(_COLUMNS[i]), *(len(r[i]) for r in rows), 1)
              if rows else len(_COLUMNS[i]) for i in range(len(_COLUMNS))]
    header = "  ".join(name.ljust(widths[i]) if i == 0 else
                       name.rjust(widths[i])
                       for i, name in enumerate(_COLUMNS))
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append("  ".join(cell.ljust(widths[i]) if i == 0 else
                               cell.rjust(widths[i])
                               for i, cell in enumerate(row)))
    lines.append(f"(sorted by {sort_by}; wall {profiler.wall_seconds:.4f}s, "
                 f"op self-time {profiler.total_self_seconds():.4f}s, "
                 f"peak grad {profiler.peak_grad_bytes / 1e6:.2f} MB)")
    return "\n".join(lines)


def _slug(label):
    cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "-", label or "run").strip("-")
    return cleaned or "run"


def write_report(profiler, directory=".", extra=None, stamp=None):
    """Write the profiler payload to ``BENCH_<label>_<stamp>.json``.

    Parameters
    ----------
    profiler:
        A :class:`repro.bench.Profiler`.
    directory:
        Destination directory (created if missing).
    extra:
        Optional mapping merged into the payload under ``"extra"`` —
        the training runner records steps/sec and configuration here.
    stamp:
        Timestamp string override (defaults to local ``YYYYmmdd-HHMMSS``);
        tests pass a fixed value for deterministic filenames.

    Returns the written :class:`pathlib.Path`.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    stamp = stamp or time.strftime("%Y%m%d-%H%M%S")
    path = directory / f"BENCH_{_slug(profiler.label)}_{stamp}.json"
    payload = profiler.as_dict(extra=extra)
    payload["created"] = stamp
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
