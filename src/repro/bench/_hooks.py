"""Low-level instrumentation hooks shared by the op layer and the profiler.

This module is the *only* coupling point between :mod:`repro.nn` and
:mod:`repro.bench`: the ``@differentiable`` wrapper in
:mod:`repro.nn.ops` and the backward loop in :mod:`repro.nn.tensor`
check :data:`_PROFILERS` (a module-level stack of active profilers) and,
when non-empty, route op execution through :func:`call_op` /
:func:`call_backward` so every event is timed and attributed.

It deliberately imports nothing from ``repro.nn`` so that
``ops``/``tensor`` can import it at module load without a cycle, and the
fast path when no profiler is active is a single truthiness check on a
module-level list.

Self-time accounting
--------------------
Registered ops may call other registered ops (``min`` is ``neg∘max∘neg``,
``split`` emits one ``getitem`` per section).  :data:`_FRAMES` is a stack
of per-call frames; each frame accumulates the inclusive time of its
*child* op calls, so an op's **self** time is its inclusive time minus
its children's — self times therefore sum to (at most) the profiled wall
time instead of double-counting nested work.
"""

from __future__ import annotations

from time import perf_counter

__all__ = ["active", "push", "pop", "call_op", "call_backward",
           "grad_alloc", "grad_free"]

#: Stack of active :class:`repro.bench.Profiler` objects, innermost last.
#: Every event is recorded once in *each* active profiler, so nested
#: ``profile()`` contexts each see the ops executed inside them exactly
#: once (the outer context includes the inner one's ops, not twice).
_PROFILERS = []

#: Stack of op-call frames; ``frame[0]`` accumulates child inclusive time.
_FRAMES = []

#: Currently live gradient-buffer bytes.  ``Tensor._accumulate`` reports
#: every None→array transition here, and the backward loop / ``zero_grad``
#: report the matching frees, so each profiler can track the *peak* of
#: this counter — the high-water mark of gradient memory, which is what
#: the buffer-reuse work in the tensor core actually optimizes.
_GRAD_LIVE_BYTES = 0


def active():
    """Whether any profiler is currently recording."""
    return bool(_PROFILERS)


def push(profiler):
    """Activate ``profiler`` (innermost position)."""
    global _GRAD_LIVE_BYTES
    if not _PROFILERS:
        # Fresh accounting region: grads allocated while nobody was
        # profiling were never counted, so start the meter at zero.
        _GRAD_LIVE_BYTES = 0
    _PROFILERS.append(profiler)


def pop(profiler):
    """Deactivate ``profiler``; contexts must exit innermost-first."""
    if not _PROFILERS or _PROFILERS[-1] is not profiler:
        raise RuntimeError("profile() contexts must be exited "
                           "innermost-first")
    _PROFILERS.pop()


def grad_alloc(nbytes):
    """Record ``nbytes`` of newly live gradient buffer."""
    global _GRAD_LIVE_BYTES
    _GRAD_LIVE_BYTES += int(nbytes)
    for profiler in _PROFILERS:
        if _GRAD_LIVE_BYTES > profiler.peak_grad_bytes:
            profiler.peak_grad_bytes = _GRAD_LIVE_BYTES


def grad_free(nbytes):
    """Record the release of ``nbytes`` of gradient buffer."""
    global _GRAD_LIVE_BYTES
    _GRAD_LIVE_BYTES = max(0, _GRAD_LIVE_BYTES - int(nbytes))


def _result_nbytes(result):
    """Bytes allocated for an op result (tensor, or list of tensors)."""
    data = getattr(result, "data", None)
    if data is not None:
        return int(data.nbytes)
    if isinstance(result, (list, tuple)):
        return sum(_result_nbytes(item) for item in result)
    return 0


def _result_requires_grad(result):
    if isinstance(result, (list, tuple)):
        return any(_result_requires_grad(item) for item in result)
    return bool(getattr(result, "requires_grad", False))


def call_op(name, fn, args, kwargs):
    """Execute a registered op's forward under timing instrumentation."""
    frame = [0.0]
    _FRAMES.append(frame)
    started = perf_counter()
    try:
        result = fn(*args, **kwargs)
    finally:
        elapsed = perf_counter() - started
        _FRAMES.pop()
        if _FRAMES:
            _FRAMES[-1][0] += elapsed
    self_seconds = elapsed - frame[0]
    nbytes = _result_nbytes(result)
    requires_grad = _result_requires_grad(result)
    for profiler in _PROFILERS:
        profiler._record_forward(name, elapsed, self_seconds, nbytes,
                                 requires_grad)
    return result


def call_backward(name, backward, grad):
    """Execute one node's backward closure under timing instrumentation.

    ``name`` is the op tag of the node (derived from the closure's
    qualified name, see ``repro.nn.tensor.Tensor.op_name``).
    """
    frame = [0.0]
    _FRAMES.append(frame)
    started = perf_counter()
    try:
        backward(grad)
    finally:
        elapsed = perf_counter() - started
        _FRAMES.pop()
        if _FRAMES:
            _FRAMES[-1][0] += elapsed
    nbytes = int(getattr(grad, "nbytes", 0))
    for profiler in _PROFILERS:
        profiler._record_backward(name or "<unnamed>", elapsed,
                                  elapsed - frame[0], nbytes)
