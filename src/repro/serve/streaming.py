"""Stateful streaming inference: O(1) per-observation risk updates.

ELDA-style monitoring scores an ICU admission again after *every* new
hourly observation.  The batch serving path recomputes the full
sequence each time — 48 timesteps of recurrence to incorporate one new
row.  A :class:`StreamingSession` instead carries the recurrent state
(GRU/LSTM hidden state, per-feature summaries) across calls, so each
:meth:`~StreamingSession.step` consumes exactly one timestep slice.

The contract is **bit-identity**: after ``t`` calls to ``step``, the
returned probabilities equal ``predict_proba`` over the same ``t``-step
prefix, bit for bit, in both dtype planes
(``tests/serve/test_streaming.py`` pins every registry model).  Two
mechanisms deliver it:

* models with a causal per-step recurrence (``stream_native = True``:
  GRU, GRU-D, StageNet, ConCare) advance real state via their
  ``stream_begin`` / ``stream_step`` hooks — the recurrent update is
  O(1) per step.  The GRU/LSTM hooks replay the fused scan kernels'
  exact ufunc tail and keep every GEMM in the BLAS row-stable regime
  (:func:`repro.nn.ops.gru_scan_step`), which is what makes the
  step-by-step arithmetic match the one-shot scan;
* models whose readout looks at the whole prefix non-causally but whose
  per-step work is reusable (``stream_incremental = True``: RETAIN,
  Dipole, SAnD, every ELDA-Net variant) stream through the same two
  hooks with **incremental attention state** — cached per-step
  projections and running recurrent states; each step computes only the
  new timestep's projections plus the attention readout over the cache,
  never re-projecting or re-encoding earlier steps (see
  :func:`repro.nn.ops.linear_rows` for why the cached rows are
  bit-stable);
* models with neither flag (the set-style LR/FM/AFM heads) fall back to
  **exact prefix replay** — the session buffers the fed steps and
  reruns the full forward, which is identical by construction (same
  arrays, same forward).

Identity holds per batch width: a session over ``n`` admissions matches
a full forward over those same ``n`` rows (BLAS kernels are chosen per
GEMM shape — the same reason the MicroBatcher pads to a fixed shape).

:class:`SessionStore` maps admission ids to sessions with LRU eviction —
the pool workers' per-admission state store.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from time import perf_counter

from ..nn.backend import xp as np

from ..data.dataset import EMRDataset
from ..nn.dtype import get_default_dtype
from ..nn.tensor import no_grad

__all__ = ["StreamingSession", "SessionStore"]


class StreamingSession:
    """Per-admission (or per-cohort-slice) streaming inference state.

    Parameters
    ----------
    model:
        Any registry model (an :class:`~repro.nn.InferenceMixin`).
        Models advertising ``stream_native`` stream in O(1); models
        advertising ``stream_incremental`` stream from cached
        attention state; the rest stream by exact prefix replay.
    batch_size:
        Number of admissions fed per step.  Bit-identity is guaranteed
        against full forwards over this same number of rows.
    spec:
        Optional :class:`~repro.baselines.ModelSpec` for feature-count
        validation.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics`; session opens and
        per-step latencies are recorded (``record_stream_*``).
    """

    def __init__(self, model, batch_size=1, spec=None, metrics=None):
        if not callable(getattr(model, "predict_logits", None)):
            raise TypeError(
                f"model {type(model).__name__} does not implement the "
                "inference protocol (predict_logits)")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.model = model
        self.batch_size = int(batch_size)
        self.spec = spec if spec is not None else getattr(model, "spec", None)
        self.metrics = metrics
        self.native = bool(getattr(model, "stream_native", False))
        self.incremental = bool(getattr(model, "stream_incremental", False))
        if self.native and self.incremental:
            raise TypeError(
                f"model {type(model).__name__} advertises both "
                "stream_native and stream_incremental; the flags are "
                "mutually exclusive")
        self.last_probs = None
        self._state = None
        self._steps = 0
        self._values = []
        self._masks = []
        self._deltas = []
        if self.native or self.incremental:
            self._state = model.stream_begin(self.batch_size)
        if self.metrics is not None:
            self.metrics.record_stream_session()

    @property
    def steps(self):
        """Number of timesteps fed so far."""
        return self._steps

    def reset(self):
        """Forget all fed steps; the session restarts from t=0."""
        self._steps = 0
        self.last_probs = None
        self._values, self._masks, self._deltas = [], [], []
        self._state = (self.model.stream_begin(self.batch_size)
                       if self.native or self.incremental else None)

    # ------------------------------------------------------------------
    def _check_step(self, values_t, mask_t, deltas_t):
        values_t = np.asarray(values_t)
        if values_t.ndim != 2:
            raise ValueError(f"values_t must be (batch, features), "
                             f"got shape {values_t.shape}")
        n, channels = values_t.shape
        if n != self.batch_size:
            raise ValueError(f"values_t has {n} rows but the session was "
                             f"opened for batch_size={self.batch_size}")
        if self.spec is not None and channels != self.spec.num_features:
            raise ValueError(
                f"values_t has {channels} features but the model was "
                f"trained on {self.spec.num_features} "
                f"(spec {self.spec.name!r})")
        if np.isnan(values_t).any():
            raise ValueError("values_t contains NaNs; feed imputed values "
                             "(repro.serve.PreprocessCache output)")
        if mask_t is None:
            mask_t = np.ones((n, channels), dtype=bool)
        else:
            mask_t = np.asarray(mask_t, dtype=bool)
            if mask_t.shape != (n, channels):
                raise ValueError(f"mask_t shape {mask_t.shape} does not "
                                 f"match values {(n, channels)}")
        if deltas_t is None:
            deltas_t = np.zeros((n, channels))
        else:
            deltas_t = np.asarray(deltas_t)
            if deltas_t.shape != (n, channels):
                raise ValueError(f"deltas_t shape {deltas_t.shape} does not "
                                 f"match values {(n, channels)}")
        return values_t, mask_t, deltas_t

    def _prefix_dataset(self):
        """The fed steps as a model-ready dataset (replay fallback)."""
        mask = np.stack(self._masks, axis=1)
        return EMRDataset(
            values=np.stack(self._values, axis=1),
            mask=mask,
            ever_observed=mask.any(axis=1),
            deltas=np.stack(self._deltas, axis=1),
            mortality=np.zeros(self.batch_size),
            long_stay=np.zeros(self.batch_size),
        )

    def step(self, values_t, mask_t=None, deltas_t=None):
        """Feed one timestep; returns probabilities *as of this prefix*.

        ``values_t`` is ``(batch, features)`` of imputed values;
        ``mask_t`` (observation indicators, default all-observed) and
        ``deltas_t`` (hours since each feature's last observation,
        default zero) feed the mask/decay-aware models.  Binary models
        return ``(batch,)``, multi-class ``(batch, K)``.
        """
        values_t, mask_t, deltas_t = self._check_step(
            values_t, mask_t, deltas_t)
        started = perf_counter()
        if self.native or self.incremental:
            model = self.model
            was_training = model.training
            model.eval()
            # Count the step up front: an incremental model that rejects
            # a short prefix (attention needs two steps) has already
            # recorded the observation into its state, mirroring the
            # replay path's buffer-then-predict ordering.
            self._steps += 1
            try:
                with no_grad():
                    self._state, logits = model.stream_step(
                        self._state, values_t, mask_t, deltas_t)
            finally:
                model.train(was_training)
            if getattr(logits, "requires_grad", False) or \
                    getattr(logits, "_backward", None) is not None:
                raise RuntimeError(
                    f"{type(model).__name__}.stream_step built autodiff "
                    "graph state under no_grad")
            logits = np.asarray(getattr(logits, "data", logits),
                                dtype=get_default_dtype())
        else:
            # Buffer first, then predict: a model that rejects short
            # prefixes (e.g. attention over t-1 earlier steps needs two)
            # keeps the observation and serves it once enough arrived.
            self._values.append(np.array(values_t))
            self._masks.append(np.array(mask_t))
            self._deltas.append(np.array(deltas_t))
            self._steps += 1
            logits = self.model.predict_logits(self._prefix_dataset())
        if self.metrics is not None:
            self.metrics.record_stream_step(
                perf_counter() - started,
                native=self.native or self.incremental)
        from ..metrics.probability import sigmoid_probs, softmax_probs
        probs = (sigmoid_probs(logits) if logits.ndim == 1
                 else softmax_probs(logits))
        self.last_probs = probs
        return probs


class SessionStore:
    """Thread-safe LRU map of admission id -> :class:`StreamingSession`.

    The replica-pool workers' per-admission state: a step request for an
    unseen admission opens a fresh single-row session; the least
    recently *stepped* admission is evicted beyond ``capacity``.
    Individual sessions are not internally synchronized — callers must
    not step the same admission concurrently (the pool's sticky
    sharding guarantees this).
    """

    def __init__(self, predictor, capacity=1024, metrics=None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.predictor = predictor
        self.capacity = int(capacity)
        self.metrics = (metrics if metrics is not None
                        else getattr(predictor, "metrics", None))
        self._lock = threading.Lock()
        self._sessions = OrderedDict()

    def session(self, admission_id, batch_size=1):
        """The admission's session, opened on first use."""
        with self._lock:
            session = self._sessions.get(admission_id)
            if session is None:
                session = StreamingSession(
                    self.predictor.model, batch_size=batch_size,
                    spec=getattr(self.predictor, "spec", None),
                    metrics=self.metrics)
                self._sessions[admission_id] = session
            self._sessions.move_to_end(admission_id)
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
            return session

    def step(self, admission_id, values_t, mask_t=None, deltas_t=None):
        """Feed one observation row for an admission; returns probs."""
        values_rows = np.asarray(values_t)
        batch_size = values_rows.shape[0] if values_rows.ndim == 2 else 1
        session = self.session(admission_id, batch_size=batch_size)
        return session.step(values_t, mask_t=mask_t, deltas_t=deltas_t)

    def close(self, admission_id):
        """Drop an admission's session (e.g. the stay ended)."""
        with self._lock:
            return self._sessions.pop(admission_id, None) is not None

    def __len__(self):
        with self._lock:
            return len(self._sessions)

    def __contains__(self, admission_id):
        with self._lock:
            return admission_id in self._sessions
