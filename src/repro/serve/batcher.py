"""Micro-batching: coalesce concurrent single-admission requests.

Per-request forward passes waste the hardware: a single admission drives
tiny GEMV-shaped kernels, while the PR-2 fused kernels are tuned for
batched GEMMs.  The :class:`MicroBatcher` sits between many caller
threads and one :class:`~repro.serve.Predictor`:

1. callers block in :meth:`MicroBatcher.predict_proba` (or get a handle
   from :meth:`MicroBatcher.submit`) while their request sits in a queue;
2. a worker thread drains the queue, coalescing up to ``max_batch_size``
   requests, waiting at most ``max_wait_ms`` after the first request of
   a batch arrives;
3. one padded fixed-shape forward serves the whole batch and results fan
   back out to the waiting callers.

Every forward runs at exactly ``max_batch_size`` rows (zero-padded), so
an admission's probabilities are **bit-identical** no matter which
requests happened to share its batch — and bit-identical to a
single-request forward through the same padded path.  BLAS picks kernels
per GEMM shape, so this determinism is only available at a fixed shape;
see docs/SERVING.md.

The worker thread never holds a reference to the batcher itself: it runs
on a detached :class:`_WorkerState`, and a ``weakref.finalize`` hook
aborts the worker when the last reference to an un-stopped batcher is
dropped — in-flight requests fail with :class:`ServeRequestError`
instead of hanging forever on a thread nobody can reach.
"""

from __future__ import annotations

import queue
import threading
import weakref
from time import monotonic, perf_counter

from .config import resolve_config

__all__ = ["MicroBatcher", "RequestHandle", "ServeRequestError"]

_SENTINEL = object()


class ServeRequestError(RuntimeError):
    """A request failed inside the serving worker (original as cause)."""


class _Pending:
    """One in-flight request: the rows, a latch, and the outcome."""

    __slots__ = ("rows", "event", "result", "error", "submitted_at")

    def __init__(self, rows):
        self.rows = rows
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.submitted_at = perf_counter()


class RequestHandle:
    """Future-like handle returned by :meth:`MicroBatcher.submit`."""

    def __init__(self, pending):
        self._pending = pending

    def done(self):
        return self._pending.event.is_set()

    def result(self, timeout=None):
        """Block until the response arrives; re-raise worker failures."""
        if not self._pending.event.wait(timeout):
            raise TimeoutError("serving request timed out")
        if self._pending.error is not None:
            raise ServeRequestError(
                "request failed in the serving worker"
            ) from self._pending.error
        return self._pending.result


class _WorkerState:
    """Everything the serve loop needs — deliberately *not* the batcher.

    The thread targets a module-level function over this state, so the
    :class:`MicroBatcher` stays collectible while its worker runs; the
    batcher's finalizer flips ``abort`` when that happens.
    """

    __slots__ = ("predictor", "max_batch_size", "max_wait_ms", "metrics",
                 "queue", "abort")

    def __init__(self, predictor, max_batch_size, max_wait_ms, metrics):
        self.predictor = predictor
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.metrics = metrics
        self.queue = queue.Queue()
        self.abort = threading.Event()


def _fail(pending, message):
    pending.error = RuntimeError(message)
    pending.event.set()


def _abort_worker(state):
    """Finalizer body: stop a worker whose batcher was dropped un-stopped.

    Queued and future requests fail fast (via :class:`ServeRequestError`
    in :meth:`RequestHandle.result`) rather than blocking forever.
    """
    state.abort.set()
    state.queue.put(_SENTINEL)


def _collect_batch(state, first):
    """Coalesce requests after ``first`` until full or deadline."""
    batch = [first]
    rows = len(first.rows)
    deadline = monotonic() + state.max_wait_ms / 1000.0
    while rows < state.max_batch_size:
        remaining = deadline - monotonic()
        try:
            item = (state.queue.get_nowait() if remaining <= 0
                    else state.queue.get(timeout=remaining))
        except queue.Empty:
            break
        if item is _SENTINEL:
            # Put the shutdown marker back for the outer loop, but
            # serve everything already accepted first.
            state.queue.put(_SENTINEL)
            break
        if rows + len(item.rows) > state.max_batch_size:
            # Does not fit this batch; lead the next one with it.
            state.queue.put(item)
            break
        batch.append(item)
        rows += len(item.rows)
    return batch


def _drain_aborted(state):
    """Fail everything still queued after an abort."""
    while True:
        try:
            item = state.queue.get_nowait()
        except queue.Empty:
            return
        if item is not _SENTINEL:
            _fail(item, "MicroBatcher was dropped without stop(); "
                        "request abandoned")


def _serve_loop(state):
    from ..metrics.probability import sigmoid_probs, softmax_probs
    from .predictor import _stack_rows
    while True:
        item = state.queue.get()
        if item is _SENTINEL:
            if state.abort.is_set():
                _drain_aborted(state)
            return
        if state.abort.is_set():
            _fail(item, "MicroBatcher was dropped without stop(); "
                        "request abandoned")
            continue
        batch = _collect_batch(state, item)
        try:
            stacked = (_stack_rows([p.rows for p in batch])
                       if len(batch) > 1 else batch[0].rows)
            # One padded forward per coalesced batch, regardless of
            # the predictor's bulk chunk size.
            logits = state.predictor.predict_logits(
                stacked, pad_to=state.max_batch_size)
            probabilities = (sigmoid_probs(logits) if logits.ndim == 1
                             else softmax_probs(logits))
        except Exception as error:  # fan the failure out to callers
            for pending in batch:
                pending.error = error
                pending.event.set()
            continue
        finished = perf_counter()
        offset = 0
        for pending in batch:
            n = len(pending.rows)
            pending.result = probabilities[offset:offset + n]
            offset += n
            if state.metrics is not None:
                state.metrics.record_request(
                    finished - pending.submitted_at)
            pending.event.set()


class MicroBatcher:
    """Threaded request coalescer in front of a :class:`Predictor`.

    Parameters
    ----------
    predictor:
        The wrapped :class:`~repro.serve.Predictor`.
    config:
        A :class:`~repro.serve.ServeConfig`; ``max_batch_size`` bounds
        coalesced requests per forward (every forward is padded to
        exactly this many rows — the determinism guarantee) and
        ``max_wait_ms`` is how long the worker holds an under-full
        batch open after its first request arrived (smaller favors
        latency, larger favors occupancy/throughput).  Defaults to the
        predictor's own config.  The pre-ServeConfig keyword spellings
        (``max_batch_size=``, ``max_wait_ms=``) still work with a
        :class:`DeprecationWarning`.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics`; receives one
        ``record_request`` per response (queue-to-response latency) on
        top of the predictor's per-forward ``record_batch`` events.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, predictor, config=None, *, metrics=None, **legacy):
        self.config = resolve_config(config, legacy, owner="MicroBatcher",
                                     base=getattr(predictor, "config", None))
        if self.config.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.predictor = predictor
        self.max_batch_size = self.config.max_batch_size
        self.max_wait_ms = self.config.max_wait_ms
        self.metrics = metrics
        self._state = _WorkerState(predictor, self.max_batch_size,
                                   self.max_wait_ms, metrics)
        self._worker = None
        self._finalizer = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._worker is not None:
            raise RuntimeError("MicroBatcher already started")
        self._state.abort.clear()
        self._worker = threading.Thread(target=_serve_loop,
                                        args=(self._state,),
                                        name="repro-serve-worker",
                                        daemon=True)
        self._worker.start()
        self._finalizer = weakref.finalize(self, _abort_worker, self._state)
        return self

    def stop(self):
        """Drain outstanding requests, then stop the worker."""
        if self._worker is None:
            return
        if self._finalizer is not None:
            self._finalizer.detach()
            self._finalizer = None
        self._state.queue.put(_SENTINEL)
        self._worker.join()
        self._worker = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, rows):
        """Enqueue a request; returns a :class:`RequestHandle`.

        ``rows`` is a (usually single-admission) model-ready
        :class:`~repro.data.dataset.EMRDataset`; it may hold up to
        ``max_batch_size`` rows.
        """
        if self._worker is None:
            raise RuntimeError("MicroBatcher is not running; use it as a "
                               "context manager or call start()")
        if len(rows) > self.max_batch_size:
            raise ValueError(f"request of {len(rows)} rows exceeds "
                             f"max_batch_size={self.max_batch_size}")
        pending = _Pending(rows)
        self._state.queue.put(pending)
        return RequestHandle(pending)

    def predict_proba(self, rows, timeout=None):
        """Blocking convenience: submit and wait for the probabilities."""
        return self.submit(rows).result(timeout=timeout)
