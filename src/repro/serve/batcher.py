"""Micro-batching: coalesce concurrent single-admission requests.

Per-request forward passes waste the hardware: a single admission drives
tiny GEMV-shaped kernels, while the PR-2 fused kernels are tuned for
batched GEMMs.  The :class:`MicroBatcher` sits between many caller
threads and one :class:`~repro.serve.Predictor`:

1. callers block in :meth:`MicroBatcher.predict_proba` (or get a handle
   from :meth:`MicroBatcher.submit`) while their request sits in a queue;
2. a worker thread drains the queue, coalescing up to ``max_batch_size``
   requests, waiting at most ``max_wait_ms`` after the first request of
   a batch arrives;
3. one padded fixed-shape forward serves the whole batch and results fan
   back out to the waiting callers.

Every forward runs at exactly ``max_batch_size`` rows (zero-padded), so
an admission's probabilities are **bit-identical** no matter which
requests happened to share its batch — and bit-identical to a
single-request forward through the same padded path.  BLAS picks kernels
per GEMM shape, so this determinism is only available at a fixed shape;
see docs/SERVING.md.
"""

from __future__ import annotations

import queue
import threading
from time import monotonic, perf_counter

__all__ = ["MicroBatcher", "ServeRequestError"]

_SENTINEL = object()


class ServeRequestError(RuntimeError):
    """A request failed inside the serving worker (original as cause)."""


class _Pending:
    """One in-flight request: the rows, a latch, and the outcome."""

    __slots__ = ("rows", "event", "result", "error", "submitted_at")

    def __init__(self, rows):
        self.rows = rows
        self.event = threading.Event()
        self.result = None
        self.error = None
        self.submitted_at = perf_counter()


class RequestHandle:
    """Future-like handle returned by :meth:`MicroBatcher.submit`."""

    def __init__(self, pending):
        self._pending = pending

    def done(self):
        return self._pending.event.is_set()

    def result(self, timeout=None):
        """Block until the response arrives; re-raise worker failures."""
        if not self._pending.event.wait(timeout):
            raise TimeoutError("serving request timed out")
        if self._pending.error is not None:
            raise ServeRequestError(
                "request failed in the serving worker"
            ) from self._pending.error
        return self._pending.result


class MicroBatcher:
    """Threaded request coalescer in front of a :class:`Predictor`.

    Parameters
    ----------
    predictor:
        The wrapped :class:`~repro.serve.Predictor`.
    max_batch_size:
        Upper bound on coalesced requests per forward; every forward is
        padded to exactly this many rows (the determinism guarantee).
    max_wait_ms:
        How long the worker holds an under-full batch open after its
        first request arrived.  Smaller values favor latency, larger
        values favor batch occupancy/throughput.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics`; receives one
        ``record_request`` per response (queue-to-response latency) on
        top of the predictor's per-forward ``record_batch`` events.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(self, predictor, max_batch_size=32, max_wait_ms=2.0,
                 metrics=None):
        if max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        self.predictor = predictor
        self.max_batch_size = int(max_batch_size)
        self.max_wait_ms = float(max_wait_ms)
        self.metrics = metrics
        self._queue = queue.Queue()
        self._worker = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._worker is not None:
            raise RuntimeError("MicroBatcher already started")
        self._worker = threading.Thread(target=self._serve_loop,
                                        name="repro-serve-worker",
                                        daemon=True)
        self._worker.start()
        return self

    def stop(self):
        """Drain outstanding requests, then stop the worker."""
        if self._worker is None:
            return
        self._queue.put(_SENTINEL)
        self._worker.join()
        self._worker = None

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def submit(self, rows):
        """Enqueue a request; returns a :class:`RequestHandle`.

        ``rows`` is a (usually single-admission) model-ready
        :class:`~repro.data.dataset.EMRDataset`; it may hold up to
        ``max_batch_size`` rows.
        """
        if self._worker is None:
            raise RuntimeError("MicroBatcher is not running; use it as a "
                               "context manager or call start()")
        if len(rows) > self.max_batch_size:
            raise ValueError(f"request of {len(rows)} rows exceeds "
                             f"max_batch_size={self.max_batch_size}")
        pending = _Pending(rows)
        self._queue.put(pending)
        return RequestHandle(pending)

    def predict_proba(self, rows, timeout=None):
        """Blocking convenience: submit and wait for the probabilities."""
        return self.submit(rows).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _collect_batch(self, first):
        """Coalesce requests after ``first`` until full or deadline."""
        batch = [first]
        rows = len(first.rows)
        deadline = monotonic() + self.max_wait_ms / 1000.0
        while rows < self.max_batch_size:
            remaining = deadline - monotonic()
            try:
                item = (self._queue.get_nowait() if remaining <= 0
                        else self._queue.get(timeout=remaining))
            except queue.Empty:
                break
            if item is _SENTINEL:
                # Put the shutdown marker back for the outer loop, but
                # serve everything already accepted first.
                self._queue.put(_SENTINEL)
                break
            if rows + len(item.rows) > self.max_batch_size:
                # Does not fit this batch; lead the next one with it.
                self._queue.put(item)
                break
            batch.append(item)
            rows += len(item.rows)
        return batch

    def _serve_loop(self):
        from ..metrics.probability import sigmoid_probs, softmax_probs
        from .predictor import _stack_rows
        while True:
            item = self._queue.get()
            if item is _SENTINEL:
                return
            batch = self._collect_batch(item)
            try:
                stacked = (_stack_rows([p.rows for p in batch])
                           if len(batch) > 1 else batch[0].rows)
                # One padded forward per coalesced batch, regardless of
                # the predictor's bulk chunk size.
                logits = self.predictor.predict_logits(
                    stacked, pad_to=self.max_batch_size)
                probabilities = (sigmoid_probs(logits) if logits.ndim == 1
                                 else softmax_probs(logits))
            except Exception as error:  # fan the failure out to callers
                for pending in batch:
                    pending.error = error
                    pending.event.set()
                continue
            finished = perf_counter()
            offset = 0
            for pending in batch:
                n = len(pending.rows)
                pending.result = probabilities[offset:offset + n]
                offset += n
                if self.metrics is not None:
                    self.metrics.record_request(
                        finished - pending.submitted_at)
                pending.event.set()
