"""Replica pool: shared-nothing multi-process serving.

One Python process tops out at one GIL's worth of request handling; the
:class:`ReplicaPool` forks ``workers`` OS processes, each rebuilding the
model from the run directory's pickled
:class:`~repro.baselines.ModelSpec` + checkpoint (capture-aware, so each
replica replays the inference graph independently) and serving from its
own :class:`~repro.serve.SessionStore`.  The parent process never holds
the model — it only routes:

* **stateless predicts** round-robin across workers, each worker
  coalescing whatever is queued into one padded fixed-shape forward
  (the MicroBatcher determinism guarantee, per replica);
* **streaming steps** shard *stickily* — ``crc32(admission_id) %
  workers`` — so an admission's recurrent state lives in exactly one
  worker and every step request finds it (CRC, unlike ``hash(str)``, is
  stable across processes and interpreter runs);
* responses resolve :class:`concurrent.futures.Future` objects via a
  collector thread, so the blocking surface and the asyncio front-end
  (:class:`AsyncServeFrontend`) share one mechanism.

On startup every worker reports its spec fingerprint; a replica that
rebuilt a different model than the parent expected fails the whole pool
loudly (mixed replicas would answer identical requests differently).
Worker metrics snapshots merge into the parent's
:class:`~repro.serve.ServeMetrics` at shutdown, so pool reports cover
every replica's latencies.

Backpressure and deadlines: the pool bounds in-flight requests at
``config.queue_depth`` (beyond it :meth:`ReplicaPool.submit` raises
:class:`ServeOverloadError`); the asyncio front-end instead *waits* for
a slot, and applies ``config.deadline_ms`` per request, raising
:class:`ServeDeadlineError` on expiry (the late response is discarded
when it eventually arrives).
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import queue as queue_module
import threading
import zlib
from concurrent.futures import Future
from pathlib import Path
from time import perf_counter

from .batcher import ServeRequestError
from .config import ServeConfig, resolve_config
from .metrics import ServeMetrics

__all__ = ["ReplicaPool", "AsyncServeFrontend", "ServeDeadlineError",
           "ServeOverloadError", "ServeWorkerError"]

_READY = "__worker_ready__"
_EXIT = "__worker_exit__"
_STOP_COLLECTOR = "__collector_stop__"


class ServeWorkerError(ServeRequestError):
    """A request failed inside a pool worker (message carries details)."""


class ServeOverloadError(RuntimeError):
    """The pool's in-flight bound (``queue_depth``) was hit."""


class ServeDeadlineError(TimeoutError):
    """A request missed its per-request deadline (``deadline_ms``)."""


def _shard_for(admission_id, workers):
    """Sticky worker index for an admission — process-stable hashing."""
    return zlib.crc32(repr(admission_id).encode()) % workers


def _worker_main(index, run_dir, checkpoint, config_payload, requests,
                 responses):
    """Pool worker: rebuild the replica, then serve until the sentinel.

    Runs in a forked child.  Stateless predicts are coalesced
    opportunistically (drain whatever else is queued, up to
    ``max_batch_size`` rows) into one padded forward; streaming steps go
    through a per-admission :class:`SessionStore`.
    """
    from ..metrics.probability import sigmoid_probs, softmax_probs
    from .predictor import Predictor, _stack_rows
    from .streaming import SessionStore

    pid = os.getpid()
    config = ServeConfig.from_dict(config_payload)
    try:
        metrics = ServeMetrics(label=f"pool-worker-{index}")
        predictor = Predictor.load(run_dir, checkpoint=checkpoint,
                                   config=config, persist=False,
                                   metrics=metrics)
        store = SessionStore(predictor, capacity=config.cache_capacity,
                             metrics=metrics)
        fingerprint = predictor.spec.fingerprint()
    except BaseException as error:
        responses.put((_READY, index, pid, f"error: {error!r}"))
        return
    responses.put((_READY, index, pid, fingerprint))

    def serve_predicts(batch):
        """One padded forward for all coalesced predict requests."""
        try:
            rows_list = [rows for _, rows in batch]
            stacked = (_stack_rows(rows_list) if len(rows_list) > 1
                       else rows_list[0])
            logits = predictor.predict_logits(
                stacked, pad_to=config.max_batch_size)
            probs = (sigmoid_probs(logits) if logits.ndim == 1
                     else softmax_probs(logits))
        except Exception as error:
            for rid, _ in batch:
                responses.put((rid, False, f"{type(error).__name__}: "
                                           f"{error}", pid))
            return
        offset = 0
        for rid, rows in batch:
            n = len(rows)
            responses.put((rid, True, probs[offset:offset + n], pid))
            offset += n

    pending = None
    while True:
        message = pending if pending is not None else requests.get()
        pending = None
        if message is None:
            responses.put((_EXIT, index, pid, metrics.snapshot()))
            return
        if message[0] == "predict":
            batch = [(message[1], message[2])]
            rows = len(message[2])
            while rows < config.max_batch_size:
                try:
                    extra = requests.get_nowait()
                except queue_module.Empty:
                    break
                if extra is not None and extra[0] == "predict" and \
                        rows + len(extra[2]) <= config.max_batch_size:
                    batch.append((extra[1], extra[2]))
                    rows += len(extra[2])
                else:
                    if extra is None:
                        serve_predicts(batch)
                        responses.put(
                            (_EXIT, index, pid, metrics.snapshot()))
                        return
                    # A step, or a predict that overflows this batch:
                    # carry it back to the outer dispatch so it is
                    # handled by kind (an overflow predict leads the
                    # next batch) instead of being mis-unpacked as a
                    # step.
                    pending = extra
                    break
            serve_predicts(batch)
        else:
            _serve_step(message, store, responses, pid)


def _serve_step(message, store, responses, pid):
    _, rid, admission_id, values_t, mask_t, deltas_t = message
    try:
        probs = store.step(admission_id, values_t, mask_t=mask_t,
                           deltas_t=deltas_t)
    except Exception as error:
        responses.put((rid, False, f"{type(error).__name__}: {error}", pid))
        return
    responses.put((rid, True, probs, pid))


class ReplicaPool:
    """Multi-process serving pool over one training run directory.

    Parameters
    ----------
    run_dir:
        Run directory as for :meth:`Predictor.load`; every worker loads
        the same spec + checkpoint (verified by fingerprint at startup).
    checkpoint:
        ``"best"`` or ``"last"``, as for :meth:`Predictor.load`.
    config:
        A :class:`~repro.serve.ServeConfig`; ``workers`` sizes the pool,
        ``queue_depth`` bounds in-flight requests, ``max_batch_size`` is
        each worker's padded forward shape, ``cache_capacity`` sizes the
        per-worker session stores.  Defaults to the run directory's
        persisted ``serve`` block.  The pre-ServeConfig ``workers=``
        keyword still works with a :class:`DeprecationWarning`.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics`; per-request
        latencies accumulate live, worker-side counters merge in at
        :meth:`stop`.

    Use as a context manager, or call :meth:`start` / :meth:`stop`.
    Workers are forked, so they inherit the parent's precision policy
    (:func:`repro.nn.autocast`) as of :meth:`start`.
    """

    def __init__(self, run_dir, checkpoint="best", config=None, *,
                 metrics=None, **legacy):
        self.run_dir = Path(run_dir)
        self.checkpoint = checkpoint
        base = None
        config_path = self.run_dir / "config.json"
        if config_path.exists():
            base = ServeConfig.from_run_config(
                json.loads(config_path.read_text()))
        self.config = resolve_config(config, legacy, owner="ReplicaPool",
                                     base=base)
        self.metrics = metrics if metrics is not None else ServeMetrics(
            label=f"pool-{self.run_dir.name}")
        self.workers = self.config.workers
        self._processes = []
        self._request_queues = []
        self._responses = None
        self._collector = None
        self._pending = {}
        self._pending_lock = threading.Lock()
        self._rid = 0
        # itertools.count: next() is atomic under the GIL, so concurrent
        # submit() calls (the class promises thread-safety) cannot skew
        # the round-robin distribution via a read-modify-write race.
        self._round_robin = itertools.count()
        self._served_pids = set()
        self._worker_pids = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self):
        if self._processes:
            raise RuntimeError("ReplicaPool already started")
        context = multiprocessing.get_context("fork")
        self._responses = context.Queue()
        config_payload = self.config.to_dict()
        for index in range(self.workers):
            requests = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(index, str(self.run_dir), self.checkpoint,
                      config_payload, requests, self._responses),
                name=f"repro-serve-replica-{index}", daemon=True)
            process.start()
            self._request_queues.append(requests)
            self._processes.append(process)

        # Ready handshake: every replica must rebuild the *same* model.
        # Any failure here (a worker that died before reporting, a
        # timeout, a fingerprint mismatch) tears down every process that
        # did start, so a broken startup never leaks live replicas.
        fingerprints = {}
        try:
            deadline = perf_counter() + 120.0
            while len(fingerprints) < self.workers:
                try:
                    kind, index, pid, fingerprint = self._responses.get(
                        timeout=1.0)
                except queue_module.Empty:
                    dead = [i for i, process in enumerate(self._processes)
                            if i not in fingerprints
                            and not process.is_alive()]
                    if dead:
                        codes = {i: self._processes[i].exitcode
                                 for i in dead}
                        raise RuntimeError(
                            f"replica worker(s) {dead} died before "
                            f"reporting ready (exit codes {codes})")
                    if perf_counter() > deadline:
                        raise RuntimeError(
                            f"replica startup timed out: only "
                            f"{len(fingerprints)} of {self.workers} "
                            "workers reported ready within 120 s")
                    continue
                if kind != _READY:
                    raise RuntimeError(
                        f"unexpected startup message {kind!r}")
                fingerprints[index] = fingerprint
                self._worker_pids.append(pid)
            failed = {i: f for i, f in fingerprints.items()
                      if str(f).startswith("error:")}
            if failed:
                raise RuntimeError(f"replica startup failed: {failed}")
            if len(set(fingerprints.values())) != 1:
                raise RuntimeError(
                    f"replicas disagree on the model spec: "
                    f"{fingerprints} — the run directory changed "
                    "underneath the pool?")
        except BaseException:
            self._teardown_processes()
            self._worker_pids = []
            raise

        self._collector = threading.Thread(target=self._collect_loop,
                                           name="repro-serve-collector",
                                           daemon=True)
        self._collector.start()
        return self

    def stop(self, timeout=30.0):
        """Stop workers, merge their metrics, fail leftover requests."""
        if not self._processes:
            return
        for requests in self._request_queues:
            requests.put(None)
        for process in self._processes:
            process.join(timeout=timeout)
        self._teardown_processes()
        self._responses.put((_STOP_COLLECTOR, None, None, None))
        self._collector.join(timeout=timeout)
        self._collector = None
        with self._pending_lock:
            leftovers = list(self._pending.values())
            self._pending.clear()
        for future, _submitted_at in leftovers:
            if not future.done():
                future.set_exception(ServeRequestError(
                    "ReplicaPool stopped with the request in flight"))
        self._responses = None

    def _teardown_processes(self):
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
        self._processes = []
        self._request_queues = []

    def __enter__(self):
        return self.start()

    def __exit__(self, exc_type, exc, tb):
        self.stop()
        return False

    # ------------------------------------------------------------------
    # Collector
    # ------------------------------------------------------------------
    def _collect_loop(self):
        while True:
            message = self._responses.get()
            if message[0] == _STOP_COLLECTOR:
                return
            if message[0] == _EXIT:
                _, _index, _pid, snapshot = message
                self.metrics.merge_snapshot(snapshot)
                continue
            rid, ok, payload, pid = message
            with self._pending_lock:
                entry = self._pending.pop(rid, None)
            if entry is None:
                continue  # deadline-abandoned request; drop the response
            future, submitted_at = entry
            self._served_pids.add(pid)
            if future.cancelled():
                continue
            if ok:
                self.metrics.record_request(perf_counter() - submitted_at)
                future.set_result(payload)
            else:
                future.set_exception(ServeWorkerError(
                    f"pool worker {pid} failed the request: {payload}"))

    # ------------------------------------------------------------------
    # Client surface
    # ------------------------------------------------------------------
    def _register(self):
        future = Future()
        with self._pending_lock:
            if len(self._pending) >= self.config.queue_depth:
                raise ServeOverloadError(
                    f"{len(self._pending)} requests in flight >= "
                    f"queue_depth={self.config.queue_depth}")
            self._rid += 1
            rid = self._rid
            self._pending[rid] = (future, perf_counter())
        return rid, future

    def _abandon(self, future):
        """Forget an in-flight request (deadline miss): frees its
        queue-depth slot now; the late response is dropped on arrival."""
        with self._pending_lock:
            for rid, (pending_future, _) in list(self._pending.items()):
                if pending_future is future:
                    del self._pending[rid]
                    return True
        return False

    def _require_running(self):
        if not self._processes:
            raise RuntimeError("ReplicaPool is not running; use it as a "
                               "context manager or call start()")

    def submit(self, rows):
        """Enqueue a stateless predict; returns a Future of probabilities.

        ``rows`` is a model-ready :class:`~repro.data.dataset.EMRDataset`
        of up to ``max_batch_size`` admissions; workers coalesce and pad
        exactly like the in-process :class:`MicroBatcher`.
        """
        self._require_running()
        if len(rows) > self.config.max_batch_size:
            raise ValueError(f"request of {len(rows)} rows exceeds "
                             f"max_batch_size={self.config.max_batch_size}")
        rid, future = self._register()
        index = next(self._round_robin) % self.workers
        self._request_queues[index].put(("predict", rid, rows))
        return future

    def submit_step(self, admission_id, values_t, mask_t=None,
                    deltas_t=None):
        """Enqueue one streaming observation; returns a Future.

        Sticky-sharded: all steps for an admission hit the same worker,
        where its :class:`StreamingSession` state lives.
        """
        self._require_running()
        rid, future = self._register()
        index = _shard_for(admission_id, self.workers)
        self._request_queues[index].put(
            ("step", rid, admission_id, values_t, mask_t, deltas_t))
        return future

    def predict_proba(self, rows, timeout=None):
        """Blocking convenience: submit and wait for the probabilities."""
        return self.submit(rows).result(timeout=timeout)

    def step(self, admission_id, values_t, mask_t=None, deltas_t=None,
             timeout=None):
        """Blocking convenience around :meth:`submit_step`."""
        return self.submit_step(admission_id, values_t, mask_t=mask_t,
                                deltas_t=deltas_t).result(timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def worker_pids(self):
        """PIDs of the replica processes (after :meth:`start`)."""
        return tuple(self._worker_pids)

    @property
    def served_pids(self):
        """PIDs observed on responses so far — proof of real fan-out."""
        return frozenset(self._served_pids)

    @property
    def in_flight(self):
        with self._pending_lock:
            return len(self._pending)


class AsyncServeFrontend:
    """Asyncio face of a :class:`ReplicaPool`: awaitable, bounded, timed.

    * **Backpressure**: at most ``config.queue_depth`` requests are in
      flight; further awaiters queue on an :class:`asyncio.Semaphore`
      instead of erroring (the raw pool surface raises
      :class:`ServeOverloadError` instead — the front-end absorbs
      bursts, the raw surface refuses them).
    * **Deadlines**: each request gets ``config.deadline_ms`` (or the
      per-call override); on expiry :class:`ServeDeadlineError` is
      raised and the late response is dropped when it arrives.

    Construct inside a running event loop (the semaphore binds to it).
    """

    def __init__(self, pool, config=None):
        import asyncio
        self.pool = pool
        self.config = config if config is not None else pool.config
        self.deadline_misses = 0
        self._semaphore = asyncio.Semaphore(self.config.queue_depth)

    async def _await_future(self, future, deadline_ms):
        import asyncio
        deadline_ms = (self.config.deadline_ms if deadline_ms is None
                       else deadline_ms)
        wrapped = asyncio.wrap_future(future)
        if deadline_ms is None:
            return await wrapped
        try:
            return await asyncio.wait_for(wrapped, deadline_ms / 1000.0)
        except asyncio.TimeoutError:
            self.deadline_misses += 1
            self.pool._abandon(future)
            raise ServeDeadlineError(
                f"request missed its {deadline_ms:g} ms deadline") from None

    async def predict_proba(self, rows, deadline_ms=None):
        """Await probabilities for a stateless predict."""
        async with self._semaphore:
            return await self._await_future(
                self.pool.submit(rows), deadline_ms)

    async def step(self, admission_id, values_t, mask_t=None, deltas_t=None,
                   deadline_ms=None):
        """Await one streaming-step update for an admission."""
        async with self._semaphore:
            return await self._await_future(
                self.pool.submit_step(admission_id, values_t, mask_t=mask_t,
                                      deltas_t=deltas_t), deadline_ms)
