"""Preprocessing cache: memoized raw-admission -> model-ready pipeline.

Serving requests arrive as *raw* admission records — a (T, C) array of
measurements with NaN for missing entries, exactly what the cohort
loaders produce before preprocessing.  Turning one into model input
replays the :mod:`repro.data.preprocess` pipeline (range cleaning,
train-split standardization, mean/LOCF imputation, GRU-D deltas), which
costs more than a small model forward.  Readmissions, repeated scoring
of open stays, and retry traffic hit the same admissions over and over,
so :class:`PreprocessCache` memoizes the pipeline output keyed by
admission id, with LRU eviction and hit/miss accounting reported through
:class:`~repro.serve.ServeMetrics`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from ..nn.backend import xp as np

from ..data.dataset import EMRDataset
from ..data.preprocess import clean_values, impute, observation_deltas

__all__ = ["PreprocessCache", "prepare_admission"]


def prepare_admission(raw_values, standardizer):
    """Run the full preprocessing pipeline on one raw admission.

    Parameters
    ----------
    raw_values:
        Array (T, C) of raw measurements, NaN where unobserved.
    standardizer:
        The *training-split* :class:`~repro.data.preprocess.Standardizer`
        (persisted as ``run_dir/standardizer.npz`` by CLI training runs).

    Returns a single-row model-ready :class:`EMRDataset` — the same
    arrays :func:`repro.data.dataset.build_dataset` would produce for
    this admission inside a cohort (labels are placeholders; serving
    predicts them).
    """
    raw = clean_values(np.asarray(raw_values, dtype=float)[None, ...])
    mask = ~np.isnan(raw)
    values = impute(standardizer.transform(raw), mask)
    return EMRDataset(
        values=values,
        mask=mask,
        ever_observed=mask.any(axis=1),
        deltas=observation_deltas(mask),
        mortality=np.zeros(1),
        long_stay=np.zeros(1),
    )


class PreprocessCache:
    """Thread-safe LRU memoizer over :func:`prepare_admission`.

    Parameters
    ----------
    standardizer:
        Fitted training-split standardizer used for every preparation.
    config:
        A :class:`~repro.serve.ServeConfig`; ``cache_capacity`` bounds
        the number of cached admissions — the least recently used entry
        is evicted beyond it.  The pre-ServeConfig ``capacity=`` keyword
        still works with a :class:`DeprecationWarning`.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics`; every lookup
        records a cache hit or miss.
    """

    def __init__(self, standardizer, config=None, *, metrics=None, **legacy):
        from .config import resolve_config
        self.config = resolve_config(config, legacy, owner="PreprocessCache")
        if self.config.cache_capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.standardizer = standardizer
        self.capacity = self.config.cache_capacity
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self._lock = threading.Lock()
        self._entries = OrderedDict()

    def get(self, admission_id, raw_values=None):
        """Model-ready single-row dataset for an admission.

        On a hit, ``raw_values`` is not touched; on a miss it is
        required, prepared, cached, and returned.  The key is the
        caller's admission identity (any hashable) — the cache trusts it
        and does not fingerprint the raw array.
        """
        with self._lock:
            cached = self._entries.get(admission_id)
            if cached is not None:
                self._entries.move_to_end(admission_id)
                self.hits += 1
        if cached is not None:
            if self.metrics is not None:
                self.metrics.record_cache(hit=True)
            return cached
        if raw_values is None:
            raise KeyError(f"admission {admission_id!r} not cached and no "
                           "raw_values supplied")
        prepared = prepare_admission(raw_values, self.standardizer)
        with self._lock:
            self.misses += 1
            self._entries[admission_id] = prepared
            self._entries.move_to_end(admission_id)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        if self.metrics is not None:
            self.metrics.record_cache(hit=False)
        return prepared

    def invalidate(self, admission_id):
        """Drop one admission (e.g. new measurements arrived)."""
        with self._lock:
            return self._entries.pop(admission_id, None) is not None

    def clear(self):
        with self._lock:
            self._entries.clear()

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, admission_id):
        with self._lock:
            return admission_id in self._entries
