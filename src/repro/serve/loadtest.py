"""Load testing the replica pool: latency percentiles under real traffic.

``repro loadtest`` (and :func:`run_loadtest` underneath) drives a
:class:`~repro.serve.ReplicaPool` through its
:class:`~repro.serve.AsyncServeFrontend` with a synthetic mixed
workload — stateless cohort predicts plus per-admission streaming step
trains — and reports p50/p95/p99 latency, throughput, and the set of
worker PIDs that actually answered (≥2 distinct PIDs is the proof that
requests fanned out across processes, not threads).  The report lands in
the standard ``SERVE_*.json`` schema via
:meth:`~repro.serve.ServeMetrics.save`, with the loadtest summary under
``extra.loadtest``.

CI regression floors: :func:`check_floor` compares a report against a
committed floor file (``benchmarks/results/pool_floor.json``) and
returns the list of violations — empty means the serving tier still
meets its latency/throughput/fan-out bar.
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path
from time import perf_counter

from ..nn.backend import xp as np

from .config import ServeConfig, resolve_config
from .metrics import ServeMetrics
from .pool import AsyncServeFrontend, ReplicaPool, ServeDeadlineError

__all__ = ["run_loadtest", "check_floor"]


def _workload(num_requests, num_streams, stream_steps, seed):
    """Synthetic traffic: single-admission predict rows + step trains."""
    from ..data.synthetic import SyntheticEMRGenerator
    from .cache import prepare_admission
    from ..data.preprocess import Standardizer

    generator = SyntheticEMRGenerator()
    rng = np.random.default_rng(seed)
    needed = max(num_requests, num_streams, 1)
    admissions = generator.sample_many(needed, rng)
    standardizer = Standardizer().fit(
        np.stack([adm.values for adm in admissions]))

    predict_rows = [prepare_admission(admissions[i % needed].values,
                                      standardizer)
                    for i in range(num_requests)]
    stream_jobs = []
    for i in range(num_streams):
        prepared = prepare_admission(admissions[i].values, standardizer)
        steps = [(prepared.values[:, t], prepared.mask[:, t],
                  prepared.deltas[:, t])
                 for t in range(min(stream_steps, prepared.num_time_steps))]
        stream_jobs.append((f"loadtest-admission-{i}", steps))
    return predict_rows, stream_jobs


async def _drive(frontend, predict_rows, stream_jobs, concurrency):
    """Run the whole workload; returns client-side error count."""
    errors = []
    semaphore = asyncio.Semaphore(concurrency)

    async def one_predict(rows):
        async with semaphore:
            try:
                await frontend.predict_proba(rows)
            except ServeDeadlineError:
                pass  # counted by the frontend
            except Exception as error:
                errors.append(repr(error))

    async def one_stream(admission_id, steps):
        async with semaphore:
            for values_t, mask_t, deltas_t in steps:
                try:
                    await frontend.step(admission_id, values_t,
                                        mask_t=mask_t, deltas_t=deltas_t)
                except ServeDeadlineError:
                    pass
                except Exception as error:
                    errors.append(repr(error))

    tasks = [one_predict(rows) for rows in predict_rows]
    tasks += [one_stream(admission_id, steps)
              for admission_id, steps in stream_jobs]
    await asyncio.gather(*tasks)
    return errors


def run_loadtest(run_dir, checkpoint="best", config=None, *,
                 num_requests=64, num_streams=8, stream_steps=4,
                 concurrency=16, max_seconds=120.0, seed=0,
                 out_dir=None, label=None, **legacy):
    """Drive a replica pool and return the loadtest report dict.

    ``max_seconds`` is a hard watchdog on the whole drive phase — a hung
    pool fails the loadtest instead of hanging CI.  When ``out_dir`` is
    given the full metrics payload (report under ``extra.loadtest``) is
    written as ``SERVE_*.json``; the report also carries the output path.
    """
    # Seed defaults from the run directory's persisted ``serve`` block
    # (exactly like ReplicaPool does) so a bare ``repro loadtest``
    # honors the run's recorded serving preferences instead of
    # silently falling back to ServeConfig() defaults.
    base = None
    config_path = Path(run_dir) / "config.json"
    if config_path.exists():
        base = ServeConfig.from_run_config(
            json.loads(config_path.read_text()))
    config = resolve_config(config, legacy, owner="run_loadtest",
                            base=base)
    predict_rows, stream_jobs = _workload(num_requests, num_streams,
                                          stream_steps, seed)
    metrics = ServeMetrics(label=label or f"loadtest-{Path(run_dir).name}")
    pool = ReplicaPool(run_dir, checkpoint=checkpoint, config=config,
                       metrics=metrics)

    async def _main():
        frontend = AsyncServeFrontend(pool)
        started = perf_counter()
        errors = await asyncio.wait_for(
            _drive(frontend, predict_rows, stream_jobs, concurrency),
            timeout=max_seconds)
        return frontend, errors, perf_counter() - started

    with pool:
        frontend, errors, duration = asyncio.run(_main())
        observed_pids = sorted(pool.served_pids)
        worker_pids = list(pool.worker_pids)

    total = num_requests + sum(len(steps) for _, steps in stream_jobs)
    report = {
        "schema": "repro.loadtest/v1",
        "requests": num_requests,
        "stream_sessions": num_streams,
        "stream_steps": total - num_requests,
        "duration_seconds": duration,
        "throughput_rps": (total / duration) if duration > 0 else 0.0,
        "latency_ms": {
            "p50": metrics.latency_quantile(50) * 1e3,
            "p95": metrics.latency_quantile(95) * 1e3,
            "p99": metrics.latency_quantile(99) * 1e3,
            "max": metrics.latency_quantile(100) * 1e3,
        },
        "workers": {
            "configured": config.workers,
            "pids": worker_pids,
            "observed_pids": observed_pids,
        },
        "deadline_misses": frontend.deadline_misses,
        "errors": errors,
    }
    if out_dir is not None:
        report["report_path"] = str(metrics.save(
            out_dir, extra={"loadtest": report}))
    return report


def check_floor(report, floor_path):
    """Compare a loadtest report against a committed floor file.

    The floor file holds the *minimum acceptable* serving behavior::

        {"max_p50_ms": ..., "max_p95_ms": ..., "max_p99_ms": ...,
         "min_throughput_rps": ..., "min_observed_workers": 2,
         "max_errors": 0}

    Any key may be omitted.  Returns a list of human-readable violation
    strings — empty means the floor holds.
    """
    floor = json.loads(Path(floor_path).read_text())
    latency = report["latency_ms"]
    violations = []
    for quantile in ("p50", "p95", "p99"):
        bound = floor.get(f"max_{quantile}_ms")
        if bound is not None and latency[quantile] > bound:
            violations.append(
                f"{quantile} latency {latency[quantile]:.2f} ms exceeds "
                f"floor {bound:g} ms")
    min_rps = floor.get("min_throughput_rps")
    if min_rps is not None and report["throughput_rps"] < min_rps:
        violations.append(
            f"throughput {report['throughput_rps']:.1f} rps below floor "
            f"{min_rps:g} rps")
    min_workers = floor.get("min_observed_workers")
    if min_workers is not None and \
            len(report["workers"]["observed_pids"]) < min_workers:
        violations.append(
            f"only {len(report['workers']['observed_pids'])} worker pid(s) "
            f"answered; floor requires {min_workers}")
    max_errors = floor.get("max_errors")
    if max_errors is not None and len(report["errors"]) > max_errors:
        violations.append(
            f"{len(report['errors'])} client-side errors exceed floor "
            f"{max_errors} (first: {report['errors'][:1]})")
    return violations
