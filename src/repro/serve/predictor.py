"""Checkpoint-backed inference: one ``Predictor`` for all registry models.

A :class:`Predictor` wraps any model satisfying the shared inference
protocol (:class:`repro.nn.InferenceMixin` — every registry model) and
exposes validated, training-free ``predict_proba`` / ``predict`` over
:class:`~repro.data.dataset.EMRDataset` batches.  Nothing from the
training stack (optimizer, callbacks, gradient graph) is constructed or
touched; forwards run in ``eval()`` mode under ``no_grad``.

Two batching disciplines, both bit-reproducible:

* **bulk** (``predict_proba(dataset)``) — chunks the dataset in order
  with the training batch size, which reproduces
  ``Trainer.predict_proba`` bit-for-bit (same shapes, same GEMMs);
* **fixed-shape** (``pad_to=k``) — pads every forward to exactly ``k``
  rows, making each admission's output independent of which other
  admissions shared its batch.  BLAS kernels are chosen per GEMM shape,
  so *only* a fixed shape makes dynamically coalesced micro-batches
  bit-identical to single-request forwards — this is the mode the
  :class:`~repro.serve.MicroBatcher` runs in.

:meth:`Predictor.load` rebuilds the exact trained architecture from a
run directory written by the training engine's Checkpointer: the
``model_spec`` recorded in ``config.json`` names the model and its
hyperparameters, and the ``best`` (or ``last``) checkpoint supplies the
weights.
"""

from __future__ import annotations

import json
from pathlib import Path
from time import perf_counter

from ..nn.backend import xp as np

from ..data.dataset import EMRDataset
from .config import ServeConfig, resolve_config

__all__ = ["Predictor", "load_predictor"]


def _stack_rows(datasets):
    """Concatenate single-request datasets into one forward batch."""
    return EMRDataset(
        values=np.concatenate([d.values for d in datasets]),
        mask=np.concatenate([d.mask for d in datasets]),
        ever_observed=np.concatenate([d.ever_observed for d in datasets]),
        deltas=np.concatenate([d.deltas for d in datasets]),
        mortality=np.concatenate([d.mortality for d in datasets]),
        long_stay=np.concatenate([d.long_stay for d in datasets]),
    )


def _pad_rows(dataset, pad_to):
    """Zero-pad a dataset to exactly ``pad_to`` rows (labels unused)."""
    n = len(dataset)
    if n == pad_to:
        return dataset
    extra = pad_to - n

    def pad(array, fill=0):
        padding = np.zeros((extra,) + array.shape[1:], dtype=array.dtype)
        return np.concatenate([array, padding])

    return EMRDataset(
        values=pad(dataset.values),
        mask=pad(dataset.mask),
        ever_observed=pad(dataset.ever_observed),
        deltas=pad(dataset.deltas),
        mortality=pad(np.asarray(dataset.mortality)),
        long_stay=pad(np.asarray(dataset.long_stay)),
    )


class Predictor:
    """Serving-side wrapper over a trained registry model.

    Parameters
    ----------
    model:
        A module implementing the :class:`repro.nn.InferenceMixin`
        protocol (``predict_logits`` / ``predict_proba``).
    config:
        A :class:`~repro.serve.ServeConfig`.  The fields this component
        reads: ``batch_size`` (bulk-prediction chunk size; matching the
        training batch size reproduces ``Trainer.predict_proba``
        bit-for-bit), ``capture`` (route forwards through inference
        graph capture, :func:`repro.nn.capture.trace` — ``None`` means
        off here), and ``max_captures`` (shape budget for captured
        graphs; bulk prediction needs two, the micro-batcher one).
        Legacy keywords (``batch_size=``, ``capture=``,
        ``max_captures=``) still work via a ``DeprecationWarning`` shim.
    spec:
        Optional :class:`~repro.baselines.ModelSpec`; enables feature-
        count validation and round-trip introspection.  Defaults to the
        spec the registry attached to the model, if any.
    metrics:
        Optional :class:`~repro.serve.ServeMetrics` sink; every forward
        batch is recorded into it.
    """

    def __init__(self, model, config=None, *, spec=None, metrics=None,
                 **legacy):
        for method in ("predict_logits", "predict_proba"):
            if not callable(getattr(model, method, None)):
                raise TypeError(
                    f"model {type(model).__name__} does not implement the "
                    f"inference protocol ({method}); registry models gain "
                    "it from repro.nn.InferenceMixin")
        self.config = resolve_config(config, legacy, owner="Predictor")
        self.model = model
        self.batch_size = self.config.batch_size
        self.spec = spec if spec is not None else getattr(model, "spec", None)
        self.metrics = metrics
        self.capture = bool(self.config.capture)
        self.max_captures = self.config.max_captures
        self._graphs = {}
        self._capture_broken = False

    # ------------------------------------------------------------------
    # Input validation
    # ------------------------------------------------------------------
    def validate(self, batch):
        """Check a batch has model-ready shapes; raises ``ValueError``.

        Requires the four model-facing arrays with consistent (N, T, C)
        shapes, no NaNs in the imputed values, and — when the predictor
        knows its spec — the trained feature count.
        """
        for name in ("values", "mask", "ever_observed", "deltas"):
            if not hasattr(batch, name):
                raise ValueError(f"batch lacks required array {name!r}; "
                                 "expected an EMRDataset-like object")
        values = np.asarray(batch.values)
        if values.ndim != 3:
            raise ValueError(f"batch.values must be (N, T, C), "
                             f"got shape {values.shape}")
        n, steps, channels = values.shape
        if self.spec is not None and channels != self.spec.num_features:
            raise ValueError(
                f"batch has {channels} features but the model was trained "
                f"on {self.spec.num_features} (spec {self.spec.name!r})")
        for name in ("mask", "deltas"):
            shape = np.asarray(getattr(batch, name)).shape
            if shape != (n, steps, channels):
                raise ValueError(f"batch.{name} shape {shape} does not "
                                 f"match values {(n, steps, channels)}")
        ever = np.asarray(batch.ever_observed)
        if ever.shape != (n, channels):
            raise ValueError(f"batch.ever_observed shape {ever.shape} "
                             f"must be {(n, channels)}")
        if np.isnan(values).any():
            raise ValueError("batch.values contains NaNs; run the "
                             "preprocessing pipeline (repro.serve."
                             "PreprocessCache) before predicting")
        return batch

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def predict_logits(self, batch, pad_to=None):
        """Raw logits for a validated batch.

        With ``pad_to`` the forward runs at exactly that many rows
        (zero-padded, outputs sliced back) so the result is independent
        of batch composition — the micro-batcher's determinism
        guarantee.
        """
        self.validate(batch)
        n = len(batch)
        if pad_to is not None:
            if n > pad_to:
                raise ValueError(f"batch of {n} rows exceeds pad_to={pad_to}")
            started = perf_counter()
            logits = self._forward(_pad_rows(batch, pad_to))[:n]
        else:
            started = perf_counter()
            logits = self._forward(batch)
        if self.metrics is not None:
            self.metrics.record_batch(n, perf_counter() - started)
        return logits

    def _forward(self, batch):
        """One full-batch forward: captured replay when enabled, else eager."""
        if self.capture:
            from ..nn import capture as nn_capture

            graph = None if self._capture_broken else self._graph_for(batch)
            if graph is not None:
                try:
                    logits = graph.replay(batch)
                except nn_capture.CaptureError:
                    # Invalidated (parameter storage swap, dtype-policy
                    # change): drop stale graphs; next forward re-traces.
                    self._graphs.clear()
                else:
                    if self.metrics is not None:
                        self.metrics.record_capture(hit=True)
                    return logits
            if self.metrics is not None:
                self.metrics.record_capture(hit=False)
        return self.model.predict_logits(batch)

    def _graph_for(self, batch):
        """Captured graph for this batch's shape, tracing on first use.

        Returns ``None`` — eager fallback — when the model failed trace
        validation earlier, or the shape budget is spent on other
        shapes.  A model-level :class:`~repro.nn.capture.CaptureError`
        (unsupported forward, replaced parameter storage) marks capture
        broken for good rather than re-tracing every call.
        """
        from ..nn import capture as nn_capture

        key = tuple(np.asarray(getattr(batch, f)).shape
                    for f in nn_capture._INPUT_FIELDS)
        graph = self._graphs.get(key)
        if graph is not None:
            return graph
        if len(self._graphs) >= self.max_captures:
            return None
        try:
            graph = nn_capture.trace(self.model, batch)
        except nn_capture.CaptureError:
            self._capture_broken = True
            return None
        self._graphs[key] = graph
        return graph

    def predict_proba(self, batch, pad_to=None):
        """Predicted probabilities, chunked at the bulk batch size.

        Binary models return (N,); multi-class models return (N, K).
        Without ``pad_to``, chunking matches the training engine's
        evaluation pass bit-for-bit.
        """
        from ..metrics.probability import sigmoid_probs, softmax_probs
        outputs = []
        for start in range(0, len(batch), self.batch_size):
            chunk = batch.subset(
                np.arange(start, min(start + self.batch_size, len(batch))))
            logits = self.predict_logits(chunk, pad_to=pad_to)
            outputs.append(sigmoid_probs(logits) if logits.ndim == 1
                           else softmax_probs(logits))
        return np.concatenate(outputs)

    def predict(self, batch, threshold=0.5):
        """Hard class predictions (thresholded binary or argmax)."""
        probabilities = self.predict_proba(batch)
        if probabilities.ndim == 1:
            return (probabilities >= threshold).astype(int)
        return probabilities.argmax(axis=-1)

    # ------------------------------------------------------------------
    # Streaming inference
    # ------------------------------------------------------------------
    def start_stream(self, batch_size=1):
        """Open a :class:`~repro.serve.StreamingSession` on this model.

        Each :meth:`step` on the returned session consumes one timestep
        slice and yields probabilities bit-identical to
        :meth:`predict_proba` over the same prefix (O(1) per step for
        natively streaming models, exact prefix replay otherwise).
        """
        from .streaming import StreamingSession
        return StreamingSession(self.model, batch_size=batch_size,
                                spec=self.spec, metrics=self.metrics)

    def step(self, session, values_t, mask_t=None, deltas_t=None):
        """Feed one observation row into a session from :meth:`start_stream`."""
        return session.step(values_t, mask_t=mask_t, deltas_t=deltas_t)

    # ------------------------------------------------------------------
    # Loading from run directories
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, run_dir, checkpoint="best", metrics=None, capture=None,
             config=None, persist=True):
        """Rebuild a predictor from a training run directory.

        Parameters
        ----------
        run_dir:
            Directory written by a ``run_dir``-enabled training run:
            ``config.json`` with a ``model_spec`` entry plus
            ``checkpoints/{best,last}/weights.npz``.
        checkpoint:
            ``"best"`` (best-on-validation; falls back to ``"last"``
            when no best snapshot exists) or ``"last"``.
        capture:
            ``None`` (default) restores the run directory's persisted
            serving preference (``config.json`` → ``serve.capture``,
            off when absent).  An explicit ``True``/``False`` both
            applies *and persists* the choice, so later loads of the
            same run directory keep it.
        config:
            An explicit :class:`~repro.serve.ServeConfig`, overriding
            the run directory's persisted ``serve`` block entirely —
            and persisted back into it, so the configuration
            round-trips: a later ``Predictor.load(run_dir)`` restores
            it.  Without it the persisted block is used (top-level
            training ``batch_size`` fills the gap for pre-ServeConfig
            run directories).
        persist:
            Set ``False`` to never write ``config.json`` back —
            replica-pool workers do this to avoid racing on the shared
            run directory.

        The model is rebuilt under the *current* precision policy
        (:func:`repro.nn.get_default_dtype`); a checkpoint stored in a
        wider float dtype (e.g. a float64 run served under float32) is
        cast once at load with a ``UserWarning``.  Bit-identity
        guarantees between training-time validation and served scores
        hold per dtype: serve under the dtype the run trained with to
        reproduce its scores exactly.
        """
        from ..baselines import ModelSpec
        from ..nn.serialization import load_weights

        run_dir = Path(run_dir)
        config_path = run_dir / "config.json"
        if not config_path.exists():
            raise FileNotFoundError(
                f"no config.json under {run_dir}; train with run_dir=... "
                "(CLI: --run-dir) to produce a servable run directory")
        run_config = json.loads(config_path.read_text())
        spec_payload = run_config.get("model_spec")
        if not spec_payload:
            raise ValueError(
                f"{config_path} has no model_spec entry; re-train with a "
                "registry-built model (build_model attaches the spec)")
        spec = ModelSpec.from_dict(spec_payload)
        model = spec.build()

        if checkpoint not in ("best", "last"):
            raise ValueError("checkpoint must be 'best' or 'last'")
        weights = run_dir / "checkpoints" / checkpoint / "weights.npz"
        if checkpoint == "best" and not weights.exists():
            weights = run_dir / "checkpoints" / "last" / "weights.npz"
        if not weights.exists():
            raise FileNotFoundError(f"no checkpoint weights under "
                                    f"{run_dir / 'checkpoints'}")
        load_weights(model, weights)

        persisted = ServeConfig.from_run_config(run_config)
        if config is not None and capture is not None:
            raise TypeError("pass either config= or capture=, not both "
                            "(set capture on the ServeConfig)")
        if config is not None:
            serve_config = config
        elif capture is not None:
            serve_config = persisted.replace(capture=bool(capture))
        else:
            serve_config = persisted
        explicit = config is not None or capture is not None
        if persist and explicit and serve_config != persisted:
            run_config["serve"] = serve_config.to_dict()
            config_path.write_text(
                json.dumps(run_config, indent=2, sort_keys=True) + "\n")

        return cls(model, serve_config, spec=spec, metrics=metrics)


def load_predictor(run_dir, checkpoint="best", metrics=None, capture=None,
                   config=None, persist=True):
    """Module-level alias for :meth:`Predictor.load`."""
    return Predictor.load(run_dir, checkpoint=checkpoint, metrics=metrics,
                          capture=capture, config=config, persist=persist)
