"""Serving metrics: request counts, batch shapes, latency, cache hits.

:class:`ServeMetrics` is the inference-side sibling of the training
profiler (:mod:`repro.bench`): a thread-safe accumulator every serving
component reports into — the :class:`~repro.serve.Predictor` records
forward batches, the :class:`~repro.serve.MicroBatcher` records
per-request queue-to-response latencies and coalesced batch sizes, and
the :class:`~repro.serve.PreprocessCache` records hits and misses.  The
payload follows the ``repro.bench`` report conventions:
``as_dict()`` emits a versioned-schema JSON document and
:meth:`ServeMetrics.save` writes ``SERVE_<label>_<stamp>.json`` next to
the profiler's ``BENCH_*`` reports (see docs/SERVING.md).
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import Counter
from pathlib import Path

from ..nn.backend import xp as np

__all__ = ["ServeMetrics"]


class ServeMetrics:
    """Thread-safe accumulator for one serving session.

    All ``record_*`` methods may be called concurrently from client and
    worker threads; reads take the same lock, so snapshots are
    consistent.
    """

    def __init__(self, label=None):
        self.label = label
        self._lock = threading.Lock()
        self._request_latencies = []
        self._batch_sizes = Counter()
        self._batch_seconds = 0.0
        self._cache_hits = 0
        self._cache_misses = 0
        self._capture_hits = 0
        self._capture_fallbacks = 0
        self._stream_sessions = 0
        self._stream_steps = 0
        self._stream_native_steps = 0
        self._stream_seconds = 0.0
        self._started = time.perf_counter()

    # -- event sinks ----------------------------------------------------
    def record_request(self, seconds):
        """One request completed, ``seconds`` after it was submitted."""
        with self._lock:
            self._request_latencies.append(float(seconds))

    def record_batch(self, size, seconds):
        """One coalesced forward pass of ``size`` admissions ran."""
        with self._lock:
            self._batch_sizes[int(size)] += 1
            self._batch_seconds += float(seconds)

    def record_cache(self, hit):
        """One preprocessing-cache lookup resolved (hit or miss)."""
        with self._lock:
            if hit:
                self._cache_hits += 1
            else:
                self._cache_misses += 1

    def record_capture(self, hit):
        """One capture-enabled forward resolved: replay hit or eager
        fallback (unsupported model, shape-budget overflow, …)."""
        with self._lock:
            if hit:
                self._capture_hits += 1
            else:
                self._capture_fallbacks += 1

    def record_stream_session(self):
        """One :class:`~repro.serve.StreamingSession` opened."""
        with self._lock:
            self._stream_sessions += 1

    def record_stream_step(self, seconds, native=False):
        """One streaming step served (``native`` = O(1) state update)."""
        with self._lock:
            self._stream_steps += 1
            if native:
                self._stream_native_steps += 1
            self._stream_seconds += float(seconds)

    # -- pool aggregation ----------------------------------------------
    def snapshot(self):
        """Raw counters as a JSON-able dict (for cross-process merge).

        Replica-pool workers ship this over the response queue at exit;
        the parent folds them in with :meth:`merge_snapshot`, so the
        pool-wide report covers every worker's latencies and batches.
        """
        with self._lock:
            return {
                "request_latencies": list(self._request_latencies),
                "batch_sizes": {str(k): v
                                for k, v in self._batch_sizes.items()},
                "batch_seconds": self._batch_seconds,
                "cache_hits": self._cache_hits,
                "cache_misses": self._cache_misses,
                "capture_hits": self._capture_hits,
                "capture_fallbacks": self._capture_fallbacks,
                "stream_sessions": self._stream_sessions,
                "stream_steps": self._stream_steps,
                "stream_native_steps": self._stream_native_steps,
                "stream_seconds": self._stream_seconds,
            }

    def merge_snapshot(self, snapshot):
        """Fold another accumulator's :meth:`snapshot` into this one."""
        with self._lock:
            self._request_latencies.extend(
                float(s) for s in snapshot.get("request_latencies", ()))
            for size, count in snapshot.get("batch_sizes", {}).items():
                self._batch_sizes[int(size)] += int(count)
            self._batch_seconds += float(snapshot.get("batch_seconds", 0.0))
            self._cache_hits += int(snapshot.get("cache_hits", 0))
            self._cache_misses += int(snapshot.get("cache_misses", 0))
            self._capture_hits += int(snapshot.get("capture_hits", 0))
            self._capture_fallbacks += int(
                snapshot.get("capture_fallbacks", 0))
            self._stream_sessions += int(snapshot.get("stream_sessions", 0))
            self._stream_steps += int(snapshot.get("stream_steps", 0))
            self._stream_native_steps += int(
                snapshot.get("stream_native_steps", 0))
            self._stream_seconds += float(snapshot.get("stream_seconds", 0.0))
        return self

    def merge(self, other):
        """Fold another :class:`ServeMetrics` instance into this one."""
        return self.merge_snapshot(other.snapshot())

    # -- derived statistics --------------------------------------------
    @property
    def request_count(self):
        with self._lock:
            return len(self._request_latencies)

    @property
    def batch_count(self):
        with self._lock:
            return sum(self._batch_sizes.values())

    def batch_size_histogram(self):
        """``{batch size: count}`` over all coalesced forward passes."""
        with self._lock:
            return dict(sorted(self._batch_sizes.items()))

    def mean_batch_size(self):
        with self._lock:
            total = sum(self._batch_sizes.values())
            if total == 0:
                return 0.0
            return sum(s * c for s, c in self._batch_sizes.items()) / total

    def latency_quantile(self, q):
        """Latency quantile in seconds (``q`` in [0, 100])."""
        with self._lock:
            if not self._request_latencies:
                return 0.0
            return float(np.percentile(self._request_latencies, q))

    @property
    def p50_latency(self):
        return self.latency_quantile(50)

    @property
    def p95_latency(self):
        return self.latency_quantile(95)

    @property
    def p99_latency(self):
        return self.latency_quantile(99)

    @property
    def stream_step_count(self):
        with self._lock:
            return self._stream_steps

    @property
    def capture_hits(self):
        with self._lock:
            return self._capture_hits

    @property
    def eager_fallbacks(self):
        with self._lock:
            return self._capture_fallbacks

    @property
    def cache_hit_rate(self):
        with self._lock:
            total = self._cache_hits + self._cache_misses
            return self._cache_hits / total if total else 0.0

    def throughput(self):
        """Served requests per wall-clock second since construction."""
        elapsed = time.perf_counter() - self._started
        return self.request_count / elapsed if elapsed > 0 else 0.0

    # -- reporting ------------------------------------------------------
    def as_dict(self, extra=None):
        """JSON-able payload (the ``SERVE_*.json`` schema)."""
        with self._lock:
            latencies = list(self._request_latencies)
            histogram = dict(sorted(self._batch_sizes.items()))
            cache_hits, cache_misses = self._cache_hits, self._cache_misses
            capture_hits = self._capture_hits
            capture_fallbacks = self._capture_fallbacks
            batch_seconds = self._batch_seconds
            stream = {
                "sessions": self._stream_sessions,
                "steps": self._stream_steps,
                "native_steps": self._stream_native_steps,
                "step_seconds": self._stream_seconds,
            }
        total_batches = sum(histogram.values())
        payload = {
            "schema": "repro.serve/v2",
            "label": self.label,
            "requests": len(latencies),
            "batches": total_batches,
            "batch_seconds": batch_seconds,
            "batch_size_histogram": {str(k): v for k, v in histogram.items()},
            "mean_batch_size": (
                sum(s * c for s, c in histogram.items()) / total_batches
                if total_batches else 0.0),
            "latency_seconds": {
                "p50": float(np.percentile(latencies, 50)) if latencies else 0.0,
                "p95": float(np.percentile(latencies, 95)) if latencies else 0.0,
                "p99": float(np.percentile(latencies, 99)) if latencies else 0.0,
                "max": float(max(latencies)) if latencies else 0.0,
            },
            "stream": stream,
            "cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (cache_hits / (cache_hits + cache_misses)
                             if cache_hits + cache_misses else 0.0),
            },
            "capture": {
                "hits": capture_hits,
                "eager_fallbacks": capture_fallbacks,
            },
        }
        if extra:
            payload["extra"] = dict(extra)
        return payload

    def table(self):
        """Human-readable summary (mirrors ``Profiler.table``)."""
        payload = self.as_dict()
        histogram = payload["batch_size_histogram"]
        lines = [
            f"requests        : {payload['requests']}",
            f"batches         : {payload['batches']} "
            f"(mean size {payload['mean_batch_size']:.1f})",
            f"p50 latency     : {payload['latency_seconds']['p50'] * 1e3:.2f} ms",
            f"p95 latency     : {payload['latency_seconds']['p95'] * 1e3:.2f} ms",
            f"cache hit rate  : {payload['cache']['hit_rate'] * 100:.1f}% "
            f"({payload['cache']['hits']} hits / "
            f"{payload['cache']['misses']} misses)",
        ]
        capture = payload["capture"]
        if capture["hits"] or capture["eager_fallbacks"]:
            lines.append(
                f"capture         : {capture['hits']} replay hits / "
                f"{capture['eager_fallbacks']} eager fallbacks")
        stream = payload["stream"]
        if stream["steps"]:
            lines.append(
                f"stream steps    : {stream['steps']} "
                f"({stream['native_steps']} native) over "
                f"{stream['sessions']} sessions")
        if histogram:
            spread = "  ".join(f"{size}x{count}"
                               for size, count in histogram.items())
            lines.append(f"batch sizes     : {spread}")
        return "\n".join(lines)

    def save(self, directory=".", extra=None, stamp=None):
        """Write ``SERVE_<label>_<stamp>.json``; returns the path.

        Mirrors :func:`repro.bench.report.write_report` — same stamp
        format, same ``extra`` merging, versioned schema field.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stamp = stamp or time.strftime("%Y%m%d-%H%M%S")
        cleaned = re.sub(r"[^A-Za-z0-9_.-]+", "-",
                         self.label or "run").strip("-") or "run"
        path = directory / f"SERVE_{cleaned}_{stamp}.json"
        payload = self.as_dict(extra=extra)
        payload["created"] = stamp
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        return path
