"""``repro.serve`` — the inference runtime, decoupled from training.

Training's ``Trainer.predict_proba`` drags the whole training stack
(optimizer, callbacks, gradient bookkeeping) into the inference path;
this package is the serving half the ROADMAP's north star asks for:

* :class:`Predictor` — wraps any registry model + checkpoint behind one
  validated ``predict_proba`` / ``predict`` surface, running ``eval()``
  forwards under ``no_grad``.  :meth:`Predictor.load` rebuilds the exact
  trained architecture from a run directory (``config.json`` model spec
  + Checkpointer weights).
* :class:`MicroBatcher` — coalesces concurrent single-admission requests
  into padded fixed-shape batches (``max_batch_size`` / ``max_wait_ms``
  knobs), turning per-request forwards into the batched GEMMs the fused
  kernels are optimized for, with **bit-identical** results regardless
  of how requests were coalesced.
* :class:`PreprocessCache` — LRU-memoized raw-admission preprocessing
  (cleaning, train-split standardization, imputation, deltas) keyed by
  admission id.
* :class:`ServeMetrics` — thread-safe serving metrics (request count,
  batch-size histogram, p50/p95 latency, cache hit rate) with
  ``SERVE_*.json`` reports following the :mod:`repro.bench` conventions.

Quickstart (see docs/SERVING.md)::

    repro train --model GRU --run-dir runs/gru      # train + checkpoint
    repro predict --run-dir runs/gru                # bulk predictions
    repro serve --run-dir runs/gru --requests 512   # micro-batched load

or in code::

    from repro.serve import Predictor, MicroBatcher

    predictor = Predictor.load("runs/gru")
    probs = predictor.predict_proba(dataset)        # == Trainer bit-for-bit
    with MicroBatcher(predictor, max_batch_size=32) as batcher:
        p = batcher.predict_proba(one_admission)    # from many threads
"""

from .batcher import MicroBatcher, RequestHandle, ServeRequestError
from .cache import PreprocessCache, prepare_admission
from .metrics import ServeMetrics
from .predictor import Predictor, load_predictor

__all__ = [
    "Predictor", "load_predictor",
    "MicroBatcher", "RequestHandle", "ServeRequestError",
    "PreprocessCache", "prepare_admission",
    "ServeMetrics",
]
