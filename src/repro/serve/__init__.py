"""``repro.serve`` — the inference runtime, decoupled from training.

Training's ``Trainer.predict_proba`` drags the whole training stack
(optimizer, callbacks, gradient bookkeeping) into the inference path;
this package is the serving half the ROADMAP's north star asks for.
One configuration object drives every component:

* :class:`ServeConfig` — every serving knob (batching, caching, capture,
  pool sizing, deadlines) in one frozen JSON-able dataclass, persisted
  as the ``serve`` block of a run directory's ``config.json``.  The old
  per-component keywords still work with a ``DeprecationWarning``.
* :class:`Predictor` — wraps any registry model + checkpoint behind one
  validated ``predict_proba`` / ``predict`` surface, running ``eval()``
  forwards under ``no_grad``.  :meth:`Predictor.load` rebuilds the exact
  trained architecture from a run directory (``config.json`` model spec
  + Checkpointer weights) and restores its persisted serving config.
* :class:`StreamingSession` / :class:`SessionStore` —
  **stateful streaming inference**: each new hourly observation is an
  O(1) recurrent-state update (or exact prefix replay for non-causal
  models), bit-identical to the full forward at every prefix.  Open one
  with :meth:`Predictor.start_stream`.
* :class:`MicroBatcher` — coalesces concurrent single-admission requests
  into padded fixed-shape batches, turning per-request forwards into the
  batched GEMMs the fused kernels are optimized for, with
  **bit-identical** results regardless of how requests were coalesced.
* :class:`ReplicaPool` / :class:`AsyncServeFrontend` — shared-nothing
  multi-process serving: forked workers each rebuild the model from the
  run directory's spec + checkpoint, stateless predicts round-robin,
  streaming steps shard stickily by admission id, and the asyncio
  front-end adds bounded backpressure plus per-request deadlines.
* :class:`PreprocessCache` — LRU-memoized raw-admission preprocessing
  (cleaning, train-split standardization, imputation, deltas) keyed by
  admission id.
* :class:`ServeMetrics` — thread-safe serving metrics (request count,
  batch-size histogram, p50/p95/p99 latency, cache hit rate, stream
  counters) with ``SERVE_*.json`` reports following the
  :mod:`repro.bench` conventions; worker snapshots merge across the
  pool.

Quickstart (see docs/SERVING.md)::

    repro train --model GRU --run-dir runs/gru      # train + checkpoint
    repro predict --run-dir runs/gru                # bulk predictions
    repro serve --run-dir runs/gru --requests 512   # micro-batched load
    repro loadtest --run-dir runs/gru --workers 2   # pool under traffic

or in code::

    from repro.serve import Predictor, ReplicaPool, ServeConfig

    predictor = Predictor.load("runs/gru")
    probs = predictor.predict_proba(dataset)        # == Trainer bit-for-bit

    session = predictor.start_stream()              # one ICU admission
    for t in range(48):
        risk = session.step(values[:, t], mask[:, t], deltas[:, t])

    config = ServeConfig(workers=4, deadline_ms=50.0)
    with ReplicaPool("runs/gru", config=config) as pool:
        p = pool.predict_proba(one_admission)       # from any thread
"""

from .batcher import MicroBatcher, RequestHandle, ServeRequestError
from .cache import PreprocessCache, prepare_admission
from .config import ServeConfig, resolve_config
from .loadtest import check_floor, run_loadtest
from .metrics import ServeMetrics
from .pool import (AsyncServeFrontend, ReplicaPool, ServeDeadlineError,
                   ServeOverloadError, ServeWorkerError)
from .predictor import Predictor, load_predictor
from .streaming import SessionStore, StreamingSession

__all__ = [
    "ServeConfig", "resolve_config",
    "Predictor", "load_predictor",
    "StreamingSession", "SessionStore",
    "MicroBatcher", "RequestHandle", "ServeRequestError",
    "ReplicaPool", "AsyncServeFrontend",
    "ServeDeadlineError", "ServeOverloadError", "ServeWorkerError",
    "PreprocessCache", "prepare_admission",
    "ServeMetrics",
    "run_loadtest", "check_floor",
]
