"""One serving configuration object: :class:`ServeConfig`.

The serving stack grew one keyword at a time — ``batch_size`` on the
:class:`~repro.serve.Predictor`, ``max_batch_size``/``max_wait_ms`` on
the :class:`~repro.serve.MicroBatcher`, ``capacity`` on the
:class:`~repro.serve.PreprocessCache`, ``capture``/``max_captures`` for
graph capture, and now pool sizing and deadlines for the replica pool.
:class:`ServeConfig` consolidates all of them into a single frozen
dataclass that every serving component accepts as its first
configuration argument, that round-trips through JSON, and that training
run directories persist as the ``serve`` block of ``config.json`` (so
``Predictor.load`` restores a run's serving preferences).

The old per-component keywords keep working through
:func:`resolve_config` shims that emit a ``DeprecationWarning`` naming
the new spelling; see docs/API.md for the migration table.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass, fields, replace

__all__ = ["ServeConfig", "resolve_config"]


@dataclass(frozen=True)
class ServeConfig:
    """Every serving knob in one declarative, JSON-able object.

    Parameters
    ----------
    batch_size:
        Chunk size for bulk prediction (``Predictor.predict_proba``).
        Matching the training batch size reproduces the training
        engine's evaluation pass bit-for-bit.
    max_batch_size:
        Upper bound on coalesced requests per forward; micro-batched
        forwards are padded to exactly this many rows (the determinism
        guarantee) both in the :class:`~repro.serve.MicroBatcher` and in
        replica-pool workers.
    max_wait_ms:
        How long the micro-batching worker holds an under-full batch
        open after its first request arrived.
    cache_capacity:
        LRU capacity shared by the preprocessing cache and the
        streaming session store (entries, per component).
    capture:
        Tri-state inference graph capture: ``None`` inherits the run
        directory's persisted preference (off when absent), ``True`` /
        ``False`` force it.
    max_captures:
        Shape budget for captured graphs per predictor.
    workers:
        Replica-pool size — number of worker processes, each holding a
        shared-nothing model replica.
    deadline_ms:
        Per-request deadline for pool requests; ``None`` disables
        deadlines (callers may still pass explicit timeouts).
    queue_depth:
        Bound on in-flight pool requests (backpressure): the asyncio
        front-end blocks and the raw ``submit`` surface raises
        :class:`~repro.serve.ServeOverloadError` beyond it.
    """

    batch_size: int = 64
    max_batch_size: int = 32
    max_wait_ms: float = 2.0
    cache_capacity: int = 4096
    capture: bool | None = None
    max_captures: int = 8
    workers: int = 2
    deadline_ms: float | None = None
    queue_depth: int = 128

    def __post_init__(self):
        for name in ("batch_size", "max_batch_size", "cache_capacity",
                     "max_captures", "workers", "queue_depth"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                object.__setattr__(self, name, int(value))
            if getattr(self, name) < 1:
                raise ValueError(f"ServeConfig.{name} must be >= 1, "
                                 f"got {value!r}")
        object.__setattr__(self, "max_wait_ms", float(self.max_wait_ms))
        if self.max_wait_ms < 0:
            raise ValueError("ServeConfig.max_wait_ms must be >= 0")
        if self.deadline_ms is not None:
            object.__setattr__(self, "deadline_ms", float(self.deadline_ms))
            if self.deadline_ms <= 0:
                raise ValueError("ServeConfig.deadline_ms must be > 0 "
                                 "(use None to disable deadlines)")
        if self.capture is not None and not isinstance(self.capture, bool):
            object.__setattr__(self, "capture", bool(self.capture))

    # ------------------------------------------------------------------
    # Derivation / serialization
    # ------------------------------------------------------------------
    def replace(self, **overrides):
        """A copy with the given fields changed (validation re-runs)."""
        return replace(self, **overrides)

    def to_dict(self):
        """JSON-able payload; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def field_names(cls):
        return tuple(f.name for f in fields(cls))

    @classmethod
    def from_dict(cls, payload, strict=False):
        """Rebuild from :meth:`to_dict` output.

        Unknown keys are ignored unless ``strict`` — forward
        compatibility for run directories written by newer versions.
        """
        payload = dict(payload or {})
        known = set(cls.field_names())
        unknown = set(payload) - known
        if unknown and strict:
            raise ValueError(f"unknown ServeConfig fields: {sorted(unknown)}")
        return cls(**{k: v for k, v in payload.items() if k in known})

    @classmethod
    def from_run_config(cls, config_payload):
        """Serving configuration persisted in a run-dir ``config.json``.

        Reads the ``serve`` block; a run directory predating the block
        (or a partial block) fills the gaps with defaults, except
        ``batch_size`` which falls back to the *training* batch size
        recorded at the top level — matching it reproduces the training
        engine's evaluation pass bit-for-bit.
        """
        config_payload = config_payload or {}
        serve_block = dict(config_payload.get("serve") or {})
        if "batch_size" not in serve_block and "batch_size" in config_payload:
            serve_block["batch_size"] = int(config_payload["batch_size"])
        return cls.from_dict(serve_block)


# Legacy keyword -> ServeConfig field. Keys are the historical spellings
# accepted by the pre-ServeConfig constructors.
_LEGACY_SPELLINGS = {
    "batch_size": "batch_size",
    "max_batch_size": "max_batch_size",
    "max_wait_ms": "max_wait_ms",
    "capacity": "cache_capacity",
    "cache_capacity": "cache_capacity",
    "capture": "capture",
    "max_captures": "max_captures",
    "workers": "workers",
    "deadline_ms": "deadline_ms",
    "queue_depth": "queue_depth",
}


def resolve_config(config, legacy, owner, base=None):
    """Merge a ``config`` argument and legacy keywords into a ServeConfig.

    ``legacy`` is the ``**kwargs`` dict a serving constructor collected;
    each recognized key maps onto its :class:`ServeConfig` field and
    emits one ``DeprecationWarning`` naming the new spelling.  Unknown
    keys raise ``TypeError`` exactly like a normal bad keyword would.
    Passing both ``config`` and legacy keywords is ambiguous and raises.
    ``base`` seeds the defaults when neither is given (e.g. a
    MicroBatcher inheriting its predictor's config).
    """
    legacy = dict(legacy or {})
    unknown = [k for k in legacy if k not in _LEGACY_SPELLINGS]
    if unknown:
        raise TypeError(f"{owner}() got unexpected keyword argument(s) "
                        f"{sorted(unknown)}")
    if config is not None and legacy:
        raise TypeError(
            f"{owner}() received both config=ServeConfig(...) and legacy "
            f"keyword(s) {sorted(legacy)}; move them into the config")
    if config is not None:
        if not isinstance(config, ServeConfig):
            raise TypeError(f"{owner}() config must be a ServeConfig, "
                            f"got {type(config).__name__}")
        return config
    resolved = base if base is not None else ServeConfig()
    if legacy:
        spellings = ", ".join(
            f"{key}= -> ServeConfig({_LEGACY_SPELLINGS[key]}=...)"
            for key in sorted(legacy))
        warnings.warn(
            f"passing {sorted(legacy)} directly to {owner}() is deprecated; "
            f"use {owner}(config=ServeConfig(...)) — {spellings}",
            DeprecationWarning, stacklevel=3)
        resolved = resolved.replace(
            **{_LEGACY_SPELLINGS[k]: v for k, v in legacy.items()})
    return resolved
