"""Phenotyping: the multi-class extension of the Prediction Module.

The paper's Prediction Module generalizes beyond binary outcomes
("different downstream prediction tasks", Section IV-B); this example
trains ELDA-Net with a softmax head to classify the admission's disease
archetype — the simulation's ground-truth phenotype — from the same
48-hour EMR window.

    python examples/phenotyping.py
"""

import numpy as np

from repro.core.elda_net import ELDANet
from repro.data import ARCHETYPES, NUM_FEATURES, load_cohort
from repro.train import Trainer


def main():
    splits = load_cohort("physionet2012", scale="small")
    num_classes = len(ARCHETYPES)
    names = [a.name for a in ARCHETYPES]

    print(f"Training ELDA-Net with a {num_classes}-way softmax head ...")
    model = ELDANet(NUM_FEATURES, np.random.default_rng(0),
                    num_classes=num_classes)
    trainer = Trainer(model, "phenotype", max_epochs=10, patience=4,
                      num_classes=num_classes)
    history = trainer.fit(splits.train, splits.validation)
    print(f"  stopped after {history.num_epochs} epochs; "
          f"train CE per epoch: {[round(v, 3) for v in history.train_loss]}")

    metrics = trainer.evaluate(splits.test)
    print(f"Test cross-entropy: {metrics['ce']:.3f} "
          f"(chance level: {np.log(num_classes):.3f})")
    print(f"Test accuracy: {metrics['accuracy']:.3f} "
          f"(chance level: {1 / num_classes:.3f})")

    probs = trainer.predict_proba(splits.test)
    predicted = probs.argmax(axis=1)
    truth = splits.test.labels("phenotype")
    print("\nPer-archetype recall:")
    for k, name in enumerate(names):
        members = truth == k
        if members.sum():
            recall = (predicted[members] == k).mean()
            print(f"  {name:<12} n={members.sum():>3}  recall={recall:.2f}")


if __name__ == "__main__":
    main()
