"""ICU risk alerting: the framework scenario from the paper's Section III.

ELDA monitors newly admitted patients and "triggers timely alerts to
inform clinicians" when predicted in-hospital mortality risk exceeds a
threshold.  The synthetic cohort lets us check the alerts against the
simulation's ground truth (archetype and outcome).

    python examples/mortality_alerting.py
"""

import numpy as np

from repro.core import ELDA
from repro.data import load_cohort


def main():
    splits = load_cohort("physionet2012", scale="small")

    print("Training ELDA on historical EMR data ...")
    framework = ELDA(task="mortality", seed=0,
                     trainer_kwargs=dict(max_epochs=8, patience=3))
    framework.fit(splits.train, splits.validation)

    print("\nNew admissions arrive (the held-out test cohort).")
    risks = framework.predict_risk(splits.test)
    threshold = float(np.quantile(risks, 0.85))
    alerts = framework.alerts(splits.test, threshold=threshold)
    print(f"Alert threshold set at the 85th risk percentile "
          f"({threshold:.2f}); {len(alerts)} alerts raised.\n")

    print("Highest-risk admissions (with simulation ground truth):")
    header = f"{'admission':>9}  {'risk':>5}  {'archetype':<12} outcome"
    print(header)
    print("-" * len(header))
    for alert in sorted(alerts, key=lambda a: -a.risk)[:10]:
        idx = alert.admission_index
        outcome = ("died in hospital" if splits.test.mortality[idx]
                   else "survived")
        print(f"{idx:>9}  {alert.risk:.2f}  "
              f"{splits.test.archetypes[idx]:<12} {outcome}")

    flagged = np.zeros(len(splits.test), dtype=bool)
    flagged[[a.admission_index for a in alerts]] = True
    capture = splits.test.mortality[flagged].sum()
    total = splits.test.mortality.sum()
    base = splits.test.mortality.mean()
    print(f"\nAlerts flagged {flagged.sum()} of {len(splits.test)} "
          f"admissions and captured {capture}/{total} deaths "
          f"(cohort mortality {base:.1%}).")


if __name__ == "__main__":
    main()
