"""Patient A case study: the paper's Section V-D interpretability walkthrough.

Reproduces, as console output, the analyses of Table II and Figures 9-10:

1. Patient A is a diabetic patient developing diabetic lactic acidosis
   (DLA): Glucose surges at hour 13, Lactate/pH/HCO3/Temp/MAP co-move,
   treatment normalizes Glucose by hour 35.
2. ELDA's feature-level attention at the crisis and recovery hours.
3. The controlled experiment: rewrite Lactate to the population normal
   and watch the attention response.
4. Attention traces of Glucose's interactions across the 48 hours.

    python examples/interpretability_case_study.py
"""


from repro.core import ELDA, modify_feature_to_normal
from repro.data import feature_index, load_cohort
from repro.experiments import ESSENTIAL_FEATURES, patient_a_processed


def print_grid(matrix, names, title):
    print(f"\n{title}")
    width = max(len(n) for n in names)
    print(" " * (width + 2) + "  ".join(f"{n:>7}" for n in names))
    for i, name in enumerate(names):
        row = "  ".join(f"{matrix[i, j] * 100:6.1f}%" for j in range(len(names)))
        print(f"{name:<{width}}  {row}")


def main():
    splits = load_cohort("physionet2012", scale="small")
    print("Training ELDA for the case study ...")
    framework = ELDA(task="mortality", seed=0,
                     trainer_kwargs=dict(max_epochs=10, patience=4))
    framework.fit(splits.train, splits.validation)

    values, ever_observed, admission = patient_a_processed(
        splits.standardizer)

    print("\n=== Table II: Patient A's essential features (standardized) ===")
    hours = (1, 13, 19, 25, 35, 47)
    print(f"{'feature':<8}" + "".join(f"  h{h:<4}" for h in hours))
    for name in ESSENTIAL_FEATURES:
        col = feature_index(name)
        cells = "".join(f"  {values[h, col]:5.1f}" for h in hours)
        print(f"{name:<8}{cells}")

    print("\n=== Figure 9a: feature-level attention ===")
    for hour, label in ((13, "hour 13 (Glucose starts rising)"),
                        (35, "hour 35 (Glucose back to normal)")):
        grid, names = framework.feature_interpretation(
            values, ever_observed, hour, features=ESSENTIAL_FEATURES)
        print_grid(grid, names, f"Attention at {label}:")

    print("\n=== Figure 9b: controlled experiment (Lactate -> normal) ===")
    modified = modify_feature_to_normal(values, "Lactate")
    grid, names = framework.feature_interpretation(
        modified, ever_observed, 13, features=ESSENTIAL_FEATURES)
    print_grid(grid, names, "Attention at hour 13 after normalizing Lactate:")

    print("\n=== Figure 10: Glucose interaction-attention traces ===")
    partners = ("FiO2", "HR", "Lactate", "HCT", "WBC")
    traces = framework.interaction_traces(values, ever_observed, "Glucose",
                                          partners)
    glucose = values[:, feature_index("Glucose")]
    print(f"{'hour':>4}  {'Glucose(z)':>10}  "
          + "  ".join(f"{p:>7}" for p in partners))
    for hour in range(0, 48, 4):
        cells = "  ".join(f"{traces[p][hour] * 100:6.1f}%" for p in partners)
        print(f"{hour:>4}  {glucose[hour]:>10.2f}  {cells}")

    onset = admission.onset_hour
    print(f"\nGround truth: Patient A's DLA crisis begins at hour {onset}.")


if __name__ == "__main__":
    main()
