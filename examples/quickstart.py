"""Quickstart: train ELDA on a synthetic ICU cohort and evaluate it.

Runs end-to-end in a couple of minutes at the default small scale:

    python examples/quickstart.py

Steps: load the PhysioNet-2012-style cohort, train ELDA-Net on in-hospital
mortality with early stopping, report the paper's metric triple on the
test split, and persist / restore the trained weights.
"""

from pathlib import Path

from repro.core import ELDA
from repro.data import load_cohort


def main():
    print("Loading the PhysioNet2012-style synthetic cohort ...")
    splits = load_cohort("physionet2012", scale="small")
    stats = splits.train.statistics()
    print(f"  train admissions: {stats['admissions']}, "
          f"missing rate: {stats['missing_rate']:.1%}")

    print("Training ELDA-Net (mortality task) ...")
    framework = ELDA(
        task="mortality",
        seed=0,
        trainer_kwargs=dict(max_epochs=8, patience=3),
    )
    history = framework.fit(splits.train, splits.validation)
    print(f"  stopped after {history.num_epochs} epochs "
          f"(best epoch {history.best_epoch}); "
          f"validation AUC-PR per epoch: "
          f"{[round(v, 3) for v in history.val_auc_pr]}")

    metrics = framework.evaluate(splits.test)
    print("Test metrics (the paper's triple):")
    print(f"  BCE loss : {metrics['bce']:.3f}")
    print(f"  AUC-ROC  : {metrics['auc_roc']:.3f}")
    print(f"  AUC-PR   : {metrics['auc_pr']:.3f}")

    weights = Path("elda_quickstart.npz")
    framework.save(weights)
    clone = ELDA(task="mortality", seed=123)
    clone.load(weights)
    restored = clone.evaluate(splits.test)
    assert abs(restored["auc_roc"] - metrics["auc_roc"]) < 1e-9
    print(f"Weights saved to {weights} and verified to restore exactly.")
    weights.unlink()


if __name__ == "__main__":
    main()
