"""Explore the synthetic EMR substrate: Table I statistics and beyond.

Prints the dataset statistics the paper's Table I reports, plus the
simulation-level detail a downstream user should understand before
training models: the archetype case mix, per-kind observation density,
and one admission's severity/observation timeline in ASCII.

    python examples/explore_cohort.py [physionet2012|mimic3]
"""

import sys
from collections import Counter

import numpy as np

from repro.data import FEATURES, load_cohort
from repro.experiments import render_table


def main():
    cohort = sys.argv[1] if len(sys.argv) > 1 else "physionet2012"
    splits = load_cohort(cohort, scale="small")
    train = splits.train

    print(f"=== {cohort}: Table I statistics (train split) ===")
    stats = train.statistics()
    for key, value in stats.items():
        formatted = f"{value:.4f}" if isinstance(value, float) else value
        print(f"  {key:<28} {formatted}")

    print("\n=== Archetype case mix ===")
    mix = Counter(train.archetypes)
    rows = [[name, str(count), f"{100 * count / len(train):.1f}%",
             f"{train.mortality[[a == name for a in train.archetypes]].mean():.2f}"]
            for name, count in mix.most_common()]
    print(render_table(["archetype", "n", "share", "mortality"], rows))

    print("\n=== Observation density by feature kind ===")
    kinds = {}
    for column, spec in enumerate(FEATURES):
        kinds.setdefault(spec.kind, []).append(train.mask[:, :, column].mean())
    for kind, rates in sorted(kinds.items()):
        print(f"  {kind:<6} mean observed fraction: {np.mean(rates):.3f}")

    print("\n=== One admission's timeline ===")
    # Pick a non-survivor with an acute event for an interesting plot.
    candidates = [i for i in range(len(train))
                  if train.mortality[i] == 1 and train.onset_hours[i]]
    index = candidates[0] if candidates else 0
    observed_per_hour = train.mask[index].sum(axis=1)
    print(f"admission {index}: archetype={train.archetypes[index]}, "
          f"event onset hour={train.onset_hours[index]}, "
          f"outcome={'died' if train.mortality[index] else 'survived'}")
    print("observations per hour (informative sampling makes sick hours denser):")
    peak = max(observed_per_hour.max(), 1)
    for hour in range(0, train.num_time_steps, 2):
        bar = "#" * int(20 * observed_per_hour[hour] / peak)
        print(f"  h{hour:02d} {bar} ({observed_per_hour[hour]})")


if __name__ == "__main__":
    main()
