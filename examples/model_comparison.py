"""Mini model comparison: a single Figure 6 cell on the console.

Trains a representative subset of the paper's models on one dataset/task
and prints the metric table.  For the full 13-model x 4-cell grid, run the
benchmark harness:

    REPRO_SCALE=small pytest benchmarks/test_figure6_main_results.py --benchmark-only

Usage:

    python examples/model_comparison.py [cohort] [task]

with cohort in {physionet2012, mimic3} and task in {mortality, los}.
"""

import sys

from repro.experiments import (default_config, format_metric, render_table,
                               run_grid)

MODELS = ("LR", "FM", "GRU", "Dipole_l", "GRU-D", "ELDA-Net")


def main():
    cohort = sys.argv[1] if len(sys.argv) > 1 else "physionet2012"
    task = sys.argv[2] if len(sys.argv) > 2 else "mortality"
    config = default_config()
    config.max_epochs = max(config.max_epochs, 8)

    print(f"Comparing {len(MODELS)} models on {cohort} / {task} "
          f"(scale={config.scale}, up to {config.max_epochs} epochs) ...")
    results = run_grid(MODELS, cohort, task, config)

    rows = [
        [name,
         str(metrics["params"]),
         format_metric(metrics["bce"]),
         format_metric(metrics["auc_roc"]),
         format_metric(metrics["auc_pr"])]
        for name, metrics in results.items()
    ]
    print()
    print(render_table(["model", "params", "BCE", "AUC-ROC", "AUC-PR"],
                       rows))

    best = max(results, key=lambda name: results[name]["auc_pr"])
    print(f"\nBest AUC-PR: {best} "
          f"({format_metric(results[best]['auc_pr'])})")


if __name__ == "__main__":
    main()
