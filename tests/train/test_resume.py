"""Kill-and-resume: a resumed run equals the uninterrupted one.

The checkpoint must carry weights, optimizer moments, shuffle-RNG
state, the epoch counter, and early-stopping state — restoring all of
them makes the continued run bit-identical to never having stopped.
"""

import json

import numpy as np
import pytest

from repro.baselines import GRUClassifier, LogisticRegression
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, train_val_test_split
from repro.nn.schedules import StepDecay
from repro.train import Trainer


@pytest.fixture(scope="module")
def resume_splits():
    admissions = SyntheticEMRGenerator().sample_many(
        48, np.random.default_rng(123))
    return train_val_test_split(admissions, np.random.default_rng(124))


def _trainer(run_dir, max_epochs, **kwargs):
    kwargs.setdefault("monitor", "loss")
    model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                          hidden_size=8)
    return Trainer(model, "mortality", max_epochs=max_epochs, patience=10,
                   batch_size=16, seed=0, run_dir=str(run_dir), **kwargs)


class TestKillAndResume:
    def test_resumed_run_equals_uninterrupted(self, resume_splits, tmp_path):
        full = _trainer(tmp_path / "full", 6)
        history_full = full.fit(resume_splits.train, resume_splits.validation)
        metrics_full = full.evaluate(resume_splits.test)

        # "Kill" after 3 epochs, then resume with the full budget.
        part = _trainer(tmp_path / "part", 3)
        part.fit(resume_splits.train, resume_splits.validation)
        resumed = _trainer(tmp_path / "part", 6)
        history_resumed = resumed.fit(resume_splits.train,
                                      resume_splits.validation, resume=True)
        metrics_resumed = resumed.evaluate(resume_splits.test)

        assert history_full.train_loss == history_resumed.train_loss
        assert history_full.val_loss == history_resumed.val_loss
        assert history_full.best_epoch == history_resumed.best_epoch
        assert metrics_full == metrics_resumed
        full_weights = full.model.state_dict()
        resumed_weights = resumed.model.state_dict()
        for name in full_weights:
            np.testing.assert_array_equal(full_weights[name],
                                          resumed_weights[name])

    def test_optimizer_moments_round_trip(self, resume_splits, tmp_path):
        """Adam's m/v/step_count survive the checkpoint byte-for-byte."""
        trainer = _trainer(tmp_path / "run", 2)
        trainer.fit(resume_splits.train, resume_splits.validation)
        saved = trainer.optimizer.state_dict()

        fresh = _trainer(tmp_path / "run", 2)
        fresh.engine.resume()
        loaded = fresh.optimizer.state_dict()
        assert loaded["step_count"] == saved["step_count"]
        assert loaded["lr"] == saved["lr"]
        for slot in ("m", "v"):
            for a, b in zip(saved[slot], loaded[slot]):
                np.testing.assert_array_equal(a, b)

    def test_rng_state_round_trip(self, resume_splits, tmp_path):
        trainer = _trainer(tmp_path / "run", 2)
        trainer.fit(resume_splits.train, resume_splits.validation)
        state = trainer.engine.rng.bit_generator.state

        fresh = _trainer(tmp_path / "run", 2)
        fresh.engine.resume()
        assert fresh.engine.rng.bit_generator.state == state
        # Both generators produce the same next draws.
        np.testing.assert_array_equal(trainer.engine.rng.integers(0, 1 << 30, 8),
                                      fresh.engine.rng.integers(0, 1 << 30, 8))

    def test_epoch_counter_and_history_restored(self, resume_splits,
                                                tmp_path):
        trainer = _trainer(tmp_path / "run", 3)
        history = trainer.fit(resume_splits.train, resume_splits.validation)

        fresh = _trainer(tmp_path / "run", 3)
        fresh.engine.resume()
        assert fresh.engine.epoch == 3
        assert fresh.engine.history.train_loss == history.train_loss
        # Re-fitting with the same budget is a no-op (already done).
        again = fresh.fit(resume_splits.train, resume_splits.validation)
        assert again.num_epochs == 3

    def test_scheduler_state_resumes(self, resume_splits, tmp_path):
        factory = lambda opt: StepDecay(opt, 1, 0.5)  # noqa: E731
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
        trainer = Trainer(model, "mortality", lr=0.01, max_epochs=2,
                          patience=10, batch_size=16, seed=0, monitor="loss",
                          run_dir=str(tmp_path / "sched"),
                          scheduler_factory=factory)
        trainer.fit(resume_splits.train, resume_splits.validation)
        assert np.isclose(trainer.optimizer.lr, 0.01 * 0.5 ** 2)

        model2 = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
        resumed = Trainer(model2, "mortality", lr=0.01, max_epochs=4,
                          patience=10, batch_size=16, seed=0, monitor="loss",
                          run_dir=str(tmp_path / "sched"),
                          scheduler_factory=factory)
        resumed.fit(resume_splits.train, resume_splits.validation,
                    resume=True)
        # Two more decays on top of the restored schedule state.
        assert np.isclose(resumed.optimizer.lr, 0.01 * 0.5 ** 4)

    def test_resume_without_checkpoint_raises(self, tmp_path):
        trainer = _trainer(tmp_path / "empty", 2)
        with pytest.raises(FileNotFoundError):
            trainer.engine.resume()

    def test_resume_without_run_dir_raises(self):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        trainer = Trainer(model, "mortality")
        with pytest.raises(ValueError, match="run directory"):
            trainer.engine.resume()


class TestRunArtifacts:
    def test_run_directory_layout(self, resume_splits, tmp_path):
        run_dir = tmp_path / "run"
        trainer = _trainer(run_dir, 2)
        trainer.fit(resume_splits.train, resume_splits.validation)

        assert (run_dir / "config.json").exists()
        assert (run_dir / "metrics.jsonl").exists()
        assert (run_dir / "checkpoints" / "last" / "weights.npz").exists()
        assert (run_dir / "checkpoints" / "last" / "optimizer.npz").exists()
        assert (run_dir / "checkpoints" / "last" / "state.json").exists()
        assert (run_dir / "checkpoints" / "best" / "weights.npz").exists()

        config = json.loads((run_dir / "config.json").read_text())
        assert config["model_class"] == "GRUClassifier"
        assert config["task"] == "mortality"
        assert config["max_epochs"] == 2

        lines = [json.loads(line) for line in
                 (run_dir / "metrics.jsonl").read_text().splitlines()]
        assert [line["epoch"] for line in lines] == [0, 1]
        assert all(np.isfinite(line["train_loss"]) for line in lines)
        assert all("val_loss" in line and "lr" in line for line in lines)

    def test_periodic_checkpoints(self, resume_splits, tmp_path):
        run_dir = tmp_path / "run"
        trainer = _trainer(run_dir, 4, checkpoint_every=2)
        trainer.fit(resume_splits.train, resume_splits.validation)
        kept = sorted(p.name for p in (run_dir / "checkpoints").iterdir())
        assert "epoch_0001" in kept and "epoch_0003" in kept

    def test_fresh_fit_truncates_stale_stream(self, resume_splits, tmp_path):
        run_dir = tmp_path / "run"
        _trainer(run_dir, 2).fit(resume_splits.train,
                                 resume_splits.validation)
        _trainer(run_dir, 1).fit(resume_splits.train,
                                 resume_splits.validation)
        lines = (run_dir / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 1  # not appended to the first run's stream
