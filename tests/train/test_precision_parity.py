"""Statistical parity of the float32 compute plane with float64.

The precision policy changes *numerics*, never *semantics*: a same-seed
training run under float32 must land on the same model quality as the
float64 run (AUROC within 1e-3), and checkpoints must round-trip across
policies — a float64 checkpoint served or resumed under the float32
policy is cast once, with a warning, instead of silently widening the
whole compute plane.
"""

import warnings

import numpy as np
import pytest

from repro.baselines import GRUClassifier
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, train_val_test_split
from repro.nn.dtype import autocast
from repro.nn.serialization import load_weights, save_weights
from repro.train import Trainer


@pytest.fixture(scope="module")
def parity_splits():
    admissions = SyntheticEMRGenerator().sample_many(
        96, np.random.default_rng(7))
    return train_val_test_split(admissions, np.random.default_rng(8))


def _train(splits, dtype, run_dir=None, max_epochs=3):
    with autocast(dtype):
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                              hidden_size=8)
        trainer = Trainer(model, "mortality", max_epochs=max_epochs,
                          patience=10, batch_size=16, seed=0,
                          monitor="loss",
                          run_dir=str(run_dir) if run_dir else None)
        trainer.fit(splits.train, splits.validation)
        metrics = trainer.evaluate(splits.test)
    return model, trainer, metrics


class TestSameSeedParity:
    def test_float32_matches_float64_auroc_within_1e3(self, parity_splits):
        _, _, m64 = _train(parity_splits, np.float64)
        model32, _, m32 = _train(parity_splits, np.float32)
        for _, param in model32.named_parameters():
            assert param.data.dtype == np.float32
        assert abs(m32["auc_roc"] - m64["auc_roc"]) < 1e-3
        assert abs(m32["bce"] - m64["bce"]) < 1e-3


class TestCheckpointDtype:
    def test_save_load_state_preserves_policy_dtype(self, parity_splits,
                                                    tmp_path):
        with autocast(np.float32):
            model = GRUClassifier(NUM_FEATURES, np.random.default_rng(1),
                                  hidden_size=8)
            save_weights(model, tmp_path / "w32.npz")
            fresh = GRUClassifier(NUM_FEATURES, np.random.default_rng(2),
                                  hidden_size=8)
            with warnings.catch_warnings():
                warnings.simplefilter("error")  # no cast warning expected
                load_weights(fresh, tmp_path / "w32.npz")
            for _, param in fresh.named_parameters():
                assert param.data.dtype == np.float32

    def test_float64_checkpoint_under_float32_warns_and_casts_once(
            self, parity_splits, tmp_path):
        with autocast(np.float64):
            source = GRUClassifier(NUM_FEATURES, np.random.default_rng(3),
                                   hidden_size=8)
            save_weights(source, tmp_path / "w64.npz")
        with autocast(np.float32):
            target = GRUClassifier(NUM_FEATURES, np.random.default_rng(4),
                                   hidden_size=8)
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                load_weights(target, tmp_path / "w64.npz")
            cast_warnings = [w for w in caught
                             if issubclass(w.category, UserWarning)
                             and "cast once" in str(w.message)]
            assert len(cast_warnings) == 1  # one warning, not per-parameter
            for (name, param), (_, src) in zip(
                    target.named_parameters(), source.named_parameters()):
                assert param.data.dtype == np.float32, name
                np.testing.assert_array_equal(
                    param.data, src.data.astype(np.float32))

    def test_float64_run_resumes_under_float32_policy(self, parity_splits,
                                                      tmp_path):
        """PR 3-style resume across a policy change: a float64 run's
        checkpoint resumes under float32 (warned cast), and the continued
        training runs in the float32 plane."""
        run_dir = tmp_path / "run64"
        _train(parity_splits, np.float64, run_dir=run_dir, max_epochs=2)

        with autocast(np.float32):
            model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                                  hidden_size=8)
            trainer = Trainer(model, "mortality", max_epochs=4, patience=10,
                              batch_size=16, seed=0, monitor="loss",
                              run_dir=str(run_dir))
            with pytest.warns(UserWarning, match="cast once"):
                history = trainer.fit(parity_splits.train,
                                      parity_splits.validation, resume=True)
            assert history.num_epochs == 4
            for _, param in model.named_parameters():
                assert param.data.dtype == np.float32
            metrics = trainer.evaluate(parity_splits.test)
            assert np.isfinite(metrics["bce"])

    def test_predictor_load_serves_float64_run_under_float32(
            self, parity_splits, tmp_path):
        from repro.baselines import build_model
        from repro.serve import Predictor
        run_dir = tmp_path / "serve64"
        # Predictor.load rebuilds from config.json's model_spec, so the
        # run must use a registry-built model.
        with autocast(np.float64):
            model = build_model("GRU", NUM_FEATURES,
                                np.random.default_rng(0))
            trainer = Trainer(model, "mortality", max_epochs=2, patience=10,
                              batch_size=16, seed=0, monitor="loss",
                              run_dir=str(run_dir))
            trainer.fit(parity_splits.train, parity_splits.validation)

        with autocast(np.float32):
            with pytest.warns(UserWarning, match="cast once"):
                predictor = Predictor.load(str(run_dir))
            probs = predictor.predict_proba(parity_splits.test)
        assert probs.dtype == np.float32
        assert np.all((probs >= 0) & (probs <= 1))
