"""Unit tests of the engine's event protocol and individual callbacks."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import LogisticRegression
from repro.data import NUM_FEATURES
from repro.train import (Callback, EarlyStopping, Engine, Trainer,
                         monitor_score)


def _engine(model, callbacks, **kwargs):
    kwargs.setdefault("batch_size", 16)
    kwargs.setdefault("max_epochs", 2)
    return Engine(model, "mortality", nn.Adam(model.parameters(), lr=1e-3),
                  callbacks=callbacks, **kwargs)


class Recorder(Callback):
    """Records every event it receives, in order."""

    def __init__(self):
        self.events = []

    def on_fit_start(self, engine):
        self.events.append("fit_start")

    def on_epoch_start(self, engine, epoch):
        self.events.append(f"epoch_start:{epoch}")

    def on_batch_start(self, engine, epoch, batch_index):
        self.events.append(f"batch_start:{epoch}.{batch_index}")

    def on_backward_end(self, engine, epoch, batch_index, loss):
        self.events.append(f"backward_end:{epoch}.{batch_index}")
        assert np.isfinite(loss)

    def on_batch_end(self, engine, epoch, batch_index, loss):
        self.events.append(f"batch_end:{epoch}.{batch_index}")

    def on_epoch_end(self, engine, epoch, logs):
        self.events.append(f"epoch_end:{epoch}")
        assert {"train_loss", "val_loss",
                "val_auc_pr", "val_auc_roc"} <= set(logs)

    def on_fit_end(self, engine):
        self.events.append("fit_end")


class TestEventProtocol:
    def test_event_order_and_coverage(self, tiny_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        recorder = Recorder()
        engine = _engine(model, [recorder], max_epochs=2, batch_size=32)
        engine.fit(tiny_splits.train, tiny_splits.validation)

        events = recorder.events
        assert events[0] == "fit_start"
        assert events[-1] == "fit_end"
        assert events[1] == "epoch_start:0"
        assert "epoch_end:0" in events and "epoch_end:1" in events
        # Each batch produces start -> backward_end -> end, in order.
        first = events.index("batch_start:0.0")
        assert events[first:first + 3] == [
            "batch_start:0.0", "backward_end:0.0", "batch_end:0.0"]

    def test_callback_can_stop_training(self, tiny_splits):
        class StopAfterFirst(Callback):
            def on_epoch_end(self, engine, epoch, logs):
                engine.should_stop = True
                engine.stop_reason = "test stop"

        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
        engine = _engine(model, [StopAfterFirst()], max_epochs=10)
        history = engine.fit(tiny_splits.train, tiny_splits.validation)
        assert history.num_epochs == 1
        assert engine.stop_reason == "test stop"

    def test_batch_end_emitted_when_step_raises(self, tiny_splits):
        class Boom(Callback):
            def on_backward_end(self, engine, epoch, batch_index, loss):
                raise RuntimeError("boom")

        recorder = Recorder()

        class QuietRecorder(Recorder):
            def on_backward_end(self, engine, epoch, batch_index, loss):
                pass

        recorder = QuietRecorder()
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(2))
        # Recorder first so it still sees batch_end after Boom raises.
        engine = _engine(model, [recorder, Boom()])
        with pytest.raises(RuntimeError, match="boom"):
            engine.fit(tiny_splits.train, tiny_splits.validation)
        assert "batch_end:0.0" in recorder.events


class TestMonitorScore:
    def test_loss_monitor_negates(self):
        assert monitor_score({"val_loss": 0.25, "val_auc_pr": 0.9},
                             "loss") == -0.25

    def test_aucpr_monitor_reads_directly(self):
        assert monitor_score({"val_loss": 0.25, "val_auc_pr": 0.9},
                             "auc_pr") == 0.9


class TestEarlyStoppingNaNFallback:
    def test_all_nan_monitor_keeps_last_epoch_weights(self, tiny_splits):
        """Regression: an all-NaN monitor used to silently restore the
        *initial* weights with best_epoch == -1; it must now keep the
        last epoch's weights (training did happen) and warn."""
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(3))
        initial = {k: v.copy() for k, v in model.state_dict().items()}

        class NaNMonitor(EarlyStopping):
            def on_epoch_end(self, engine, epoch, logs):
                logs = dict(logs, val_auc_pr=float("nan"))
                super().on_epoch_end(engine, epoch, logs)

        early = NaNMonitor(monitor="auc_pr", patience=10)
        engine = _engine(model, [early], max_epochs=3)
        with pytest.warns(RuntimeWarning, match="NaN every epoch"):
            history = engine.fit(tiny_splits.train, tiny_splits.validation)

        assert history.num_epochs == 3
        assert history.best_epoch == 2  # falls back to the last epoch
        trained = model.state_dict()
        assert any(not np.array_equal(trained[k], initial[k])
                   for k in trained)

    def test_improving_monitor_still_restores_best(self, tiny_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(4))
        trainer = Trainer(model, "mortality", max_epochs=4, patience=4,
                          batch_size=32, monitor="loss")
        history = trainer.fit(tiny_splits.train, tiny_splits.validation)
        assert history.best_epoch == int(np.argmin(history.val_loss))


class TestAnomalyGuardOrdering:
    def test_nonfinite_loss_aborts_before_optimizer_step(self, tiny_splits):
        """The guard fires on on_backward_end, i.e. before clip/step."""
        stepped = []

        class NaNModel(nn.Module):
            def __init__(self):
                super().__init__()
                self.weight = nn.Parameter(np.array([np.nan]))

            def forward_batch(self, batch):
                pooled = nn.Tensor(batch.values.mean(axis=(1, 2)))
                return pooled * self.weight

        model = NaNModel()
        trainer = Trainer(model, "mortality", max_epochs=1, batch_size=16)
        original_step = trainer.optimizer.step
        trainer.optimizer.step = lambda: (stepped.append(1),
                                          original_step())
        with pytest.raises(nn.AnomalyError, match="non-finite"):
            trainer.fit(tiny_splits.train, tiny_splits.validation)
        assert stepped == []
