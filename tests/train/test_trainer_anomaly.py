"""Trainer behaviour on non-finite losses and in anomaly mode."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import LogisticRegression
from repro.data import NUM_FEATURES
from repro.train import Trainer


class NaNLogits(nn.Module):
    """A model whose single parameter is already NaN, so the first
    forward pass produces non-finite logits."""

    def __init__(self):
        super().__init__()
        self.weight = nn.Parameter(np.array([np.nan]))

    def forward_batch(self, batch):
        pooled = nn.Tensor(batch.values.mean(axis=(1, 2)))
        return pooled * self.weight


class TestNaNLossAbort:
    def test_fit_aborts_on_non_finite_loss(self, tiny_splits):
        trainer = Trainer(NaNLogits(), "mortality", max_epochs=2,
                          batch_size=16)
        with pytest.raises(nn.AnomalyError,
                           match="non-finite training loss"):
            trainer.fit(tiny_splits.train, tiny_splits.validation)

    def test_abort_message_points_at_debug_flag(self, tiny_splits):
        trainer = Trainer(NaNLogits(), "mortality", max_epochs=1,
                          batch_size=16)
        with pytest.raises(nn.AnomalyError, match="--debug-anomaly"):
            trainer.fit(tiny_splits.train, tiny_splits.validation)

    def test_abort_happens_before_weights_are_updated(self, tiny_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        first = next(iter(model.parameters()))
        first.data[...] = np.nan  # poison -> first loss is non-finite
        snapshots = {name: p.data.copy()
                     for name, p in model.named_parameters()}
        trainer = Trainer(model, "mortality", max_epochs=1, batch_size=16)
        with pytest.raises(nn.AnomalyError):
            trainer.fit(tiny_splits.train, tiny_splits.validation)
        for name, p in model.named_parameters():
            np.testing.assert_array_equal(
                np.isnan(p.data), np.isnan(snapshots[name]))
            finite = np.isfinite(snapshots[name])
            np.testing.assert_array_equal(p.data[finite],
                                          snapshots[name][finite])


class TestAnomalyMode:
    def test_anomaly_mode_pinpoints_the_forward_op(self, tiny_splits):
        trainer = Trainer(NaNLogits(), "mortality", max_epochs=1,
                          batch_size=16, anomaly_mode=True)
        with pytest.raises(nn.AnomalyError, match=r"forward pass: op '"):
            trainer.fit(tiny_splits.train, tiny_splits.validation)

    def test_without_anomaly_mode_only_loss_guard_fires(self, tiny_splits):
        trainer = Trainer(NaNLogits(), "mortality", max_epochs=1,
                          batch_size=16, anomaly_mode=False)
        with pytest.raises(nn.AnomalyError) as excinfo:
            trainer.fit(tiny_splits.train, tiny_splits.validation)
        assert "non-finite training loss" in str(excinfo.value)
        assert "forward pass" not in str(excinfo.value)

    def test_healthy_model_trains_under_anomaly_mode(self, tiny_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
        trainer = Trainer(model, "mortality", max_epochs=1, batch_size=32,
                          anomaly_mode=True)
        history = trainer.fit(tiny_splits.train, tiny_splits.validation)
        assert history.num_epochs == 1
        assert np.isfinite(history.train_loss).all()

    def test_anomaly_state_is_scoped_to_the_train_step(self, tiny_splits):
        from repro.nn.debug import anomaly_enabled
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(2))
        trainer = Trainer(model, "mortality", max_epochs=1, batch_size=32,
                          anomaly_mode=True)
        trainer.fit(tiny_splits.train, tiny_splits.validation)
        assert not anomaly_enabled()
