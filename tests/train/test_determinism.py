"""Seed contract: same seeds, same bytes.

Two training runs that share (a) the model-init RNG seed and (b) the
trainer's shuffle seed must produce identical per-epoch losses and test
metrics — docs/CORRECTNESS.md documents this contract.  The only RNG
consumers in the training path are weight init (caller-provided
generator) and batch shuffling (the engine's checkpointed generator).
"""

import numpy as np
import pytest

from repro.baselines import GRUClassifier
from repro.core.elda_net import build_variant
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, train_val_test_split
from repro.train import Trainer


@pytest.fixture(scope="module")
def det_splits():
    admissions = SyntheticEMRGenerator().sample_many(
        40, np.random.default_rng(21))
    return train_val_test_split(admissions, np.random.default_rng(22))


def _run(builder, splits, seed):
    model = builder(np.random.default_rng(seed))
    trainer = Trainer(model, "mortality", max_epochs=3, patience=3,
                      batch_size=16, seed=seed, monitor="loss")
    history = trainer.fit(splits.train, splits.validation)
    return history, trainer.evaluate(splits.test), model


def test_same_seed_same_history_and_metrics(det_splits):
    builder = lambda rng: GRUClassifier(NUM_FEATURES, rng,  # noqa: E731
                                        hidden_size=8)
    history_a, metrics_a, model_a = _run(builder, det_splits, seed=7)
    history_b, metrics_b, model_b = _run(builder, det_splits, seed=7)

    assert history_a.train_loss == history_b.train_loss
    assert history_a.val_loss == history_b.val_loss
    assert history_a.best_epoch == history_b.best_epoch
    assert metrics_a == metrics_b
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


def test_same_seed_deterministic_with_dropout_model(det_splits):
    """ELDA-Net uses dropout; fresh same-seed builds must still agree."""
    builder = lambda rng: build_variant(  # noqa: E731
        "ELDA-Net", NUM_FEATURES, rng, embedding_size=4, hidden_size=6,
        compression=2)
    history_a, metrics_a, _ = _run(builder, det_splits, seed=3)
    history_b, metrics_b, _ = _run(builder, det_splits, seed=3)
    assert history_a.train_loss == history_b.train_loss
    assert metrics_a == metrics_b


def test_different_shuffle_seed_changes_trajectory(det_splits):
    """Sanity: the contract is not vacuous — seeds do matter."""
    builder = lambda rng: GRUClassifier(NUM_FEATURES, rng,  # noqa: E731
                                        hidden_size=8)
    history_a, _, _ = _run(builder, det_splits, seed=7)
    history_b, _, _ = _run(builder, det_splits, seed=8)
    assert history_a.train_loss != history_b.train_loss
