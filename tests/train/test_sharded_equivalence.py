"""Sharded-vs-in-memory training equivalence (the PR's headline claim).

A streamed epoch from :class:`ShardedDataLoader` must be *the same
epoch* the in-memory :func:`iterate_batches` runs over a materialized
copy of the store: same batch composition, same order, same floats.
The loader earns this by computing its epoch plan globally from lazy
metadata with exactly the RNG calls the in-memory path makes, and by
reusing the canonical per-row preprocessing pipeline — so the
comparisons below demand 1e-12, and in practice observe exact
equality, on both ``REPRO_DTYPE`` planes and with bucketing on.
"""

import numpy as np
import pytest

from repro.baselines import GRUClassifier
from repro.data import ShardedDataset, iterate_batches
from repro.nn.dtype import autocast
from repro.nn.losses import bce_with_logits
from repro.train import Trainer

pytestmark = pytest.mark.shards

TOL = 1e-12


def _epoch_losses_and_grads(model, data, batch_size, bucket, seed):
    """Per-batch loss trajectory and accumulated parameter gradients
    over one full epoch (no optimizer steps)."""
    model.zero_grad()
    losses = []
    rng = np.random.default_rng(seed)
    for batch, labels in iterate_batches(data, "mortality", batch_size,
                                         rng=rng,
                                         bucket_by_length=bucket):
        logits = model.forward_batch(batch)
        loss = bce_with_logits(logits, labels.astype(logits.data.dtype),
                               reduction="sum")
        loss.backward()
        losses.append(loss.item())
    grads = {name: p.grad.copy() for name, p in model.named_parameters()}
    return losses, grads


@pytest.mark.parametrize("dtype", [np.float32, np.float64],
                         ids=["float32", "float64"])
@pytest.mark.parametrize("bucket", [False, True],
                         ids=["padded", "bucketed"])
def test_streamed_epoch_matches_in_memory_epoch(shard_store, dtype, bucket):
    with autocast(dtype):
        store = ShardedDataset.open(shard_store)
        in_memory = store.materialize()

        streamed_model = GRUClassifier(store.num_features,
                                       np.random.default_rng(0),
                                       hidden_size=8, mask_aware=True)
        memory_model = GRUClassifier(store.num_features,
                                     np.random.default_rng(0),
                                     hidden_size=8, mask_aware=True)
        streamed = _epoch_losses_and_grads(streamed_model, store, 16,
                                           bucket, seed=11)
        reference = _epoch_losses_and_grads(memory_model, in_memory, 16,
                                            bucket, seed=11)

    losses_s, grads_s = streamed
    losses_m, grads_m = reference
    assert len(losses_s) == len(losses_m)
    np.testing.assert_allclose(losses_s, losses_m, rtol=0, atol=TOL)
    assert grads_s.keys() == grads_m.keys()
    for name in grads_m:
        np.testing.assert_allclose(grads_s[name], grads_m[name],
                                   rtol=0, atol=TOL, err_msg=name)


def test_streamed_batches_are_bit_identical(shard_store):
    """Stronger than the loss comparison: the batch tensors themselves
    (values/mask/deltas/labels) match the in-memory epoch exactly."""
    store = ShardedDataset.open(shard_store)
    in_memory = store.materialize()
    for bucket in (False, True):
        streamed = list(iterate_batches(store, "mortality", 16,
                                        rng=np.random.default_rng(5),
                                        bucket_by_length=bucket))
        reference = list(iterate_batches(in_memory, "mortality", 16,
                                         rng=np.random.default_rng(5),
                                         bucket_by_length=bucket))
        assert len(streamed) == len(reference)
        for (batch_s, labels_s), (batch_m, labels_m) in zip(streamed,
                                                            reference):
            np.testing.assert_array_equal(batch_s.values, batch_m.values)
            np.testing.assert_array_equal(batch_s.mask, batch_m.mask)
            np.testing.assert_array_equal(batch_s.deltas, batch_m.deltas)
            np.testing.assert_array_equal(batch_s.ever_observed,
                                          batch_m.ever_observed)
            np.testing.assert_array_equal(labels_s, labels_m)


def test_full_fit_matches_in_memory_fit(shard_store):
    """End-to-end: Trainer.fit over sharded train/val views reproduces
    the in-memory fit exactly — loss history, metrics, final weights."""
    store = ShardedDataset.open(shard_store)
    train, validation = store.split(val_shards=1)

    def fit(train_data, val_data):
        model = GRUClassifier(store.num_features,
                              np.random.default_rng(2),
                              hidden_size=8, mask_aware=True)
        trainer = Trainer(model, "mortality", batch_size=16, max_epochs=2,
                          patience=3, seed=4, bucket_by_length=True)
        history = trainer.fit(train_data, val_data)
        return history, model

    history_s, model_s = fit(train, validation)
    history_m, model_m = fit(train.materialize(), validation.materialize())
    assert history_s.train_loss == history_m.train_loss
    assert history_s.val_loss == history_m.val_loss
    for (name, p_s), (_, p_m) in zip(model_s.named_parameters(),
                                     model_m.named_parameters()):
        np.testing.assert_array_equal(p_s.data, p_m.data, err_msg=name)
