"""Tests of scheduler integration with the Trainer."""

import numpy as np

from repro.baselines import LogisticRegression
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, train_val_test_split
from repro.nn.schedules import ReduceOnPlateau, StepDecay
from repro.train import Trainer


def _splits():
    admissions = SyntheticEMRGenerator().sample_many(
        40, np.random.default_rng(7))
    return train_val_test_split(admissions, np.random.default_rng(8))


def test_step_decay_reduces_lr_during_fit():
    splits = _splits()
    model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
    trainer = Trainer(model, "mortality", lr=0.01, max_epochs=4, patience=4,
                      scheduler_factory=lambda opt: StepDecay(opt, 1, 0.5))
    trainer.fit(splits.train, splits.validation)
    assert np.isclose(trainer.optimizer.lr, 0.01 * 0.5 ** 4)


def test_plateau_scheduler_receives_val_loss():
    splits = _splits()
    model = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
    seen = []

    class Spy(ReduceOnPlateau):
        def step(self, value):
            seen.append(value)
            return super().step(value)

    trainer = Trainer(model, "mortality", max_epochs=3, patience=3,
                      scheduler_factory=lambda opt: Spy(opt))
    history = trainer.fit(splits.train, splits.validation)
    assert seen == history.val_loss


def test_no_scheduler_by_default():
    model = LogisticRegression(NUM_FEATURES, np.random.default_rng(2))
    trainer = Trainer(model, "mortality")
    assert trainer.scheduler is None
