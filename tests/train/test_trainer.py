"""Tests of the shared training loop."""

import numpy as np
import pytest

from repro.baselines import GRUClassifier, LogisticRegression
from repro.data import NUM_FEATURES
from repro.train import Trainer


@pytest.fixture(scope="module")
def separable_splits():
    """A cohort where mortality is strongly learnable."""
    from repro.data import SyntheticEMRGenerator, train_val_test_split
    admissions = SyntheticEMRGenerator(label_noise=0.0).sample_many(
        160, np.random.default_rng(10))
    return train_val_test_split(admissions, np.random.default_rng(11))


class TestFitting:
    def test_learns_above_chance(self, separable_splits):
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                              hidden_size=16)
        trainer = Trainer(model, "mortality", max_epochs=8, patience=8,
                          batch_size=32, monitor="loss")
        trainer.fit(separable_splits.train, separable_splits.validation)
        metrics = trainer.evaluate(separable_splits.train)
        assert metrics["auc_roc"] > 0.7

    def test_training_loss_decreases(self, separable_splits):
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(1),
                              hidden_size=8)
        trainer = Trainer(model, "mortality", max_epochs=4, patience=4,
                          batch_size=32)
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        assert history.train_loss[-1] < history.train_loss[0]

    def test_history_bookkeeping(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(2))
        trainer = Trainer(model, "mortality", max_epochs=3, patience=3)
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        assert history.num_epochs == 3
        assert len(history.val_auc_pr) == 3
        assert 0 <= history.best_epoch < 3
        assert history.seconds_per_batch > 0
        assert history.prediction_seconds_per_sample > 0

    def test_early_stopping_halts(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(3))
        trainer = Trainer(model, "mortality", max_epochs=50, patience=2)
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        assert history.num_epochs < 50

    def test_best_weights_restored(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(4))
        trainer = Trainer(model, "mortality", max_epochs=6, patience=6)
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        restored = trainer.evaluate(separable_splits.validation)
        assert np.isclose(restored["auc_pr"],
                          history.val_auc_pr[history.best_epoch], atol=1e-9)

    def test_monitor_loss_mode(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(5))
        trainer = Trainer(model, "mortality", max_epochs=2, patience=2,
                          monitor="loss")
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        assert history.best_epoch == int(np.argmin(history.val_loss))

    def test_invalid_monitor_raises(self):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        with pytest.raises(ValueError):
            Trainer(model, "mortality", monitor="vibes")


class TestPrediction:
    def test_probabilities_shape_and_range(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(6))
        trainer = Trainer(model, "mortality", max_epochs=1, patience=1)
        trainer.fit(separable_splits.train, separable_splits.validation)
        probs = trainer.predict_proba(separable_splits.test)
        assert probs.shape == (len(separable_splits.test),)
        assert np.all((probs >= 0) & (probs <= 1))

    def test_prediction_order_preserved(self, separable_splits):
        """predict_proba must not shuffle: metrics align with labels."""
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(7))
        trainer = Trainer(model, "mortality", max_epochs=1, patience=1)
        trainer.fit(separable_splits.train, separable_splits.validation)
        a = trainer.predict_proba(separable_splits.test)
        b = trainer.predict_proba(separable_splits.test)
        assert np.array_equal(a, b)

    def test_predict_proba_is_deprecated_but_delegates(self,
                                                       separable_splits):
        """The old surface warns once per call and matches the engine."""
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(6))
        trainer = Trainer(model, "mortality", max_epochs=1, patience=1)
        trainer.fit(separable_splits.train, separable_splits.validation)
        with pytest.warns(DeprecationWarning, match="Predictor"):
            deprecated = trainer.predict_proba(separable_splits.test)
        replacement = trainer.engine.predict_proba(separable_splits.test)
        np.testing.assert_array_equal(deprecated, replacement)

    def test_los_task(self, separable_splits):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(8))
        trainer = Trainer(model, "los", max_epochs=2, patience=2)
        history = trainer.fit(separable_splits.train,
                              separable_splits.validation)
        assert history.num_epochs >= 1
