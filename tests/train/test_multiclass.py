"""Tests of the multi-class (phenotyping) training path."""

import numpy as np
import pytest

from repro.core.elda_net import ELDANet
from repro.data import ARCHETYPES, NUM_FEATURES
from repro.train import Trainer


@pytest.fixture(scope="module")
def pheno_splits():
    from repro.data import SyntheticEMRGenerator, train_val_test_split
    admissions = SyntheticEMRGenerator().sample_many(
        90, np.random.default_rng(4))
    return train_val_test_split(admissions, np.random.default_rng(5))


NUM_CLASSES = len(ARCHETYPES)


class TestPhenotypeLabels:
    def test_labels_are_archetype_indices(self, pheno_splits):
        labels = pheno_splits.train.labels("phenotype")
        assert labels.min() >= 0
        assert labels.max() < NUM_CLASSES
        names = [a.name for a in ARCHETYPES]
        for i in range(5):
            assert names[labels[i]] == pheno_splits.train.archetypes[i]

    def test_missing_annotations_raise(self, pheno_splits):
        stripped = pheno_splits.train.subset(np.arange(4))
        stripped.archetypes = []
        with pytest.raises(ValueError):
            stripped.labels("phenotype")


class TestMulticlassTrainer:
    def test_trains_and_reports_multiclass_metrics(self, pheno_splits):
        model = ELDANet(NUM_FEATURES, np.random.default_rng(0),
                        embedding_size=6, hidden_size=8, compression=2,
                        num_classes=NUM_CLASSES)
        trainer = Trainer(model, "phenotype", max_epochs=2, patience=2,
                          batch_size=32, num_classes=NUM_CLASSES)
        history = trainer.fit(pheno_splits.train, pheno_splits.validation)
        assert history.num_epochs >= 1
        metrics = trainer.evaluate(pheno_splits.test)
        assert set(metrics) == {"ce", "accuracy"}
        assert 0.0 <= metrics["accuracy"] <= 1.0

    def test_predict_proba_is_row_stochastic(self, pheno_splits):
        model = ELDANet(NUM_FEATURES, np.random.default_rng(1),
                        embedding_size=6, hidden_size=8, compression=2,
                        num_classes=NUM_CLASSES)
        trainer = Trainer(model, "phenotype", max_epochs=1, patience=1,
                          num_classes=NUM_CLASSES)
        trainer.fit(pheno_splits.train, pheno_splits.validation)
        probs = trainer.predict_proba(pheno_splits.test)
        assert probs.shape == (len(pheno_splits.test), NUM_CLASSES)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_monitor_falls_back_to_loss(self):
        model = ELDANet(NUM_FEATURES, np.random.default_rng(2),
                        embedding_size=4, hidden_size=6, compression=2,
                        num_classes=3)
        trainer = Trainer(model, "phenotype", num_classes=3)
        assert trainer.monitor == "loss"

    def test_learning_reduces_cross_entropy(self, pheno_splits):
        """A brief run must reduce CE below the log(K) chance level."""
        model = ELDANet(NUM_FEATURES, np.random.default_rng(3),
                        embedding_size=8, hidden_size=16, compression=2,
                        num_classes=NUM_CLASSES)
        trainer = Trainer(model, "phenotype", max_epochs=14, patience=14,
                          batch_size=32, num_classes=NUM_CLASSES)
        history = trainer.fit(pheno_splits.train, pheno_splits.validation)
        # 90 admissions over 10 classes is a tiny problem; require steady
        # progress on the training loss rather than an absolute bar.
        assert history.train_loss[-1] < history.train_loss[0] - 0.05
