"""Property tests for length-bucketed batching.

Three invariants keep ``bucket_by_length=True`` a pure throughput knob:

(a) *partition* — every admission trains exactly once per epoch, no
    matter how lengths are distributed relative to the batch size;
(b) *model equivalence* — for a mask-aware model, the epoch's total
    loss and the accumulated parameter gradients (no optimizer steps in
    between) match the unbucketed padded epoch to tolerance: a row's
    forward depends only on its own observed prefix, so regrouping rows
    by length must not change the math, only how much padded tail the
    scan skips;
(c) *determinism* — the seed contract of docs/CORRECTNESS.md survives
    bucketing: the sampler consumes the shuffle RNG in a fixed order.

Randomized length distributions run under Hypothesis when available
(skipped otherwise — CI installs it); seeded versions of each property
run unconditionally.
"""

import numpy as np
import pytest

from repro.baselines import GRUClassifier
from repro.data import (NUM_FEATURES, BucketSampler, SyntheticEMRGenerator,
                        iterate_batches, sequence_lengths,
                        train_val_test_split)
from repro.nn.dtype import autocast
from repro.nn.losses import bce_with_logits
from repro.train import Trainer


def _sampler_partition_ok(lengths, batch_size, seed=None):
    rng = np.random.default_rng(seed) if seed is not None else None
    batches = BucketSampler(lengths, batch_size).batches(rng)
    seen = np.concatenate(batches) if batches else np.empty(0, dtype=int)
    assert sorted(seen.tolist()) == list(range(len(lengths)))
    for batch in batches:
        assert 0 < len(batch) <= batch_size


def _make_ragged(num=24, seed=0, max_steps=48):
    """A small split whose train admissions have genuinely ragged lengths
    (observation masks cut at per-row offsets)."""
    admissions = SyntheticEMRGenerator().sample_many(
        num, np.random.default_rng(seed))
    splits = train_val_test_split(admissions, np.random.default_rng(seed + 1))
    rng = np.random.default_rng(seed + 2)
    for dataset in (splits.train, splits.validation):
        cuts = rng.integers(4, max_steps + 1, size=len(dataset))
        for i, cut in enumerate(cuts):
            dataset.mask[i, cut:, :] = False
            dataset.mask[i, cut - 1, 0] = True   # length is exactly `cut`
    return splits


def _epoch_loss_and_grads(model, dataset, batch_size, bucketed):
    """Sum of per-batch (mean loss x batch size) and the accumulated
    parameter gradients over one full epoch with no optimizer steps —
    both invariant under any partition of the admissions into batches."""
    model.zero_grad()
    total = 0.0
    count = 0
    for batch, labels in iterate_batches(dataset, "mortality", batch_size,
                                         rng=None,
                                         bucket_by_length=bucketed):
        logits = model.forward_batch(batch)
        loss = bce_with_logits(logits, labels.astype(logits.data.dtype),
                               reduction="sum")
        loss.backward()
        total += loss.item()
        count += len(labels)
    grads = {name: p.grad.copy() for name, p in model.named_parameters()}
    return total, count, grads


# ----------------------------------------------------------------------
# (a) partition: every admission exactly once per epoch
# ----------------------------------------------------------------------

def test_sampler_partitions_indices_seeded():
    rng = np.random.default_rng(0)
    for trial in range(25):
        n = int(rng.integers(1, 60))
        lengths = rng.integers(1, 49, size=n)
        _sampler_partition_ok(lengths, int(rng.integers(1, 17)), seed=trial)


def test_iterate_batches_bucketed_covers_dataset_once():
    splits = _make_ragged()
    train = splits.train
    labels_seen = []
    rows = 0
    for batch, labels in iterate_batches(train, "mortality", 4,
                                         rng=np.random.default_rng(3),
                                         bucket_by_length=True):
        rows += len(batch)
        labels_seen.extend(labels.tolist())
        batch_lengths = sequence_lengths(batch.mask)
        assert batch_lengths.max() <= train.lengths().max()
    assert rows == len(train)
    assert sorted(labels_seen) == sorted(train.mortality.tolist())


def test_sampler_rejects_bad_arguments():
    with pytest.raises(ValueError, match="batch_size"):
        BucketSampler(np.array([1, 2]), 0)
    with pytest.raises(ValueError, match="1-D"):
        BucketSampler(np.zeros((2, 2)), 4)


# ----------------------------------------------------------------------
# (b) bucketed epoch == padded epoch for a mask-aware model
# ----------------------------------------------------------------------

@pytest.mark.parametrize("dtype,tol", [(np.float64, 1e-9),
                                       (np.float32, 2e-3)],
                         ids=["float64", "float32"])
def test_bucketed_epoch_matches_padded_epoch(dtype, tol):
    with autocast(dtype):
        splits = _make_ragged()
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                              hidden_size=8, mask_aware=True)
        loss_b, count_b, grads_b = _epoch_loss_and_grads(
            model, splits.train, 4, bucketed=True)
        loss_p, count_p, grads_p = _epoch_loss_and_grads(
            model, splits.train, 4, bucketed=False)
    assert count_b == count_p == len(splits.train)
    assert abs(loss_b - loss_p) <= tol * max(1.0, abs(loss_p))
    for name in grads_p:
        np.testing.assert_allclose(grads_b[name], grads_p[name],
                                   rtol=tol, atol=tol, err_msg=name)


# ----------------------------------------------------------------------
# (c) seed contract survives bucketing
# ----------------------------------------------------------------------

def _fit_history(splits, seed, bucket):
    model = GRUClassifier(NUM_FEATURES, np.random.default_rng(seed),
                          hidden_size=8, mask_aware=True)
    trainer = Trainer(model, "mortality", max_epochs=2, patience=3,
                      batch_size=8, seed=seed, monitor="loss",
                      bucket_by_length=bucket)
    history = trainer.fit(splits.train, splits.validation)
    return history, model


def test_same_seed_same_history_under_bucketing():
    splits = _make_ragged()
    history_a, model_a = _fit_history(splits, seed=7, bucket=True)
    history_b, model_b = _fit_history(splits, seed=7, bucket=True)
    assert history_a.train_loss == history_b.train_loss
    assert history_a.val_loss == history_b.val_loss
    state_a, state_b = model_a.state_dict(), model_b.state_dict()
    for name in state_a:
        np.testing.assert_array_equal(state_a[name], state_b[name])


def test_shuffle_seed_still_matters_under_bucketing():
    splits = _make_ragged()
    history_a, _ = _fit_history(splits, seed=7, bucket=True)
    history_b, _ = _fit_history(splits, seed=8, bucket=True)
    assert history_a.train_loss != history_b.train_loss


def test_bucketing_changes_batch_composition_not_contract():
    """Sanity that the property isn't vacuous: with ragged lengths the
    bucketed epoch visits differently composed batches than the padded
    one, yet (b) showed identical epoch totals."""
    splits = _make_ragged()
    rng_a = np.random.default_rng(5)
    rng_b = np.random.default_rng(5)
    sizes_bucketed = [len(b) for b, _ in iterate_batches(
        splits.train, "mortality", 4, rng_a, bucket_by_length=True)]
    sizes_padded = [len(b) for b, _ in iterate_batches(
        splits.train, "mortality", 4, rng_b, bucket_by_length=False)]
    assert sum(sizes_bucketed) == sum(sizes_padded)


# ----------------------------------------------------------------------
# Hypothesis lane: randomized length distributions
# ----------------------------------------------------------------------

hypothesis = pytest.importorskip("hypothesis")
given, settings, strategies = (hypothesis.given, hypothesis.settings,
                               hypothesis.strategies)


@given(lengths=strategies.lists(strategies.integers(1, 48), min_size=1,
                                max_size=64),
       batch_size=strategies.integers(1, 16),
       seed=strategies.integers(0, 2**32 - 1))
@settings(max_examples=60, deadline=None)
def test_hypothesis_sampler_partition(lengths, batch_size, seed):
    _sampler_partition_ok(np.asarray(lengths), batch_size, seed=seed)


@given(lengths=strategies.lists(strategies.integers(1, 48), min_size=1,
                                max_size=64),
       batch_size=strategies.integers(1, 16),
       seed=strategies.integers(0, 2**32 - 1))
@settings(max_examples=30, deadline=None)
def test_hypothesis_sampler_deterministic_under_seed(lengths, batch_size,
                                                     seed):
    sampler = BucketSampler(np.asarray(lengths), batch_size)
    first = sampler.batches(np.random.default_rng(seed))
    second = sampler.batches(np.random.default_rng(seed))
    assert len(first) == len(second)
    for a, b in zip(first, second):
        np.testing.assert_array_equal(a, b)


@given(lengths=strategies.lists(strategies.integers(1, 48), min_size=1,
                                max_size=64),
       batch_size=strategies.integers(1, 16))
@settings(max_examples=30, deadline=None)
def test_hypothesis_unshuffled_sampler_orders_by_length(lengths,
                                                        batch_size):
    sampler = BucketSampler(np.asarray(lengths), batch_size)
    order = np.concatenate(sampler.batches(rng=None))
    ordered_lengths = np.asarray(lengths)[order]
    assert np.all(np.diff(ordered_lengths) >= 0)
