"""Behavior parity: the event-driven engine reproduces the old trainer.

The per-epoch ``train_loss`` / ``val_loss`` trajectories and
``best_epoch`` below were recorded from the pre-refactor monolithic
``Trainer.fit`` at commit ea9577f on the fixed-seed small synthetic
cohort.  The refactored engine must reproduce them bit-for-bit — any
drift means the loop's order of operations (shuffle RNG consumption,
loss math, early-stopping decisions) changed.

The recordings were made under float64, so the whole module pins the
precision policy to float64 (the float32-vs-float64 *statistical*
parity lives in tests/train/test_precision_parity.py).  They also
predate the sequence-fused scan kernels, whose one-big-GEMM input
projection reassociates float ops, so the GRU model is pinned to the
per-step path here — scan-vs-step closeness has its own tolerance-based
suite in tests/nn/test_scan_equivalence.py.
"""

import numpy as np
import pytest

from repro.baselines import GRUClassifier, LogisticRegression
from repro.bench.runner import set_fused_scan
from repro.data import NUM_FEATURES, SyntheticEMRGenerator, train_val_test_split
from repro.nn.dtype import autocast
from repro.train import Trainer


@pytest.fixture(autouse=True)
def float64_policy():
    with autocast(np.float64):
        yield

# Trajectories recorded from the pre-refactor trainer (see docstring).
GRU_TRAIN_LOSS = [0.8028150695562074, 0.8358040233268609,
                  0.7987742531180199, 0.7430667078479932]
GRU_VAL_LOSS = [0.9253917266658791, 0.9051914815903019,
                0.8872169642211027, 0.8695145540584255]
GRU_BEST_EPOCH = 3
GRU_TEST_BCE = 0.9159215492618706

LR_TRAIN_LOSS = [0.8734295241592079, 0.8046616981382103, 0.9127432690163886]
LR_VAL_LOSS = [0.9002992158650487, 0.8919676723655693, 0.8842173178999495]
LR_BEST_EPOCH = 0
LR_NUM_EPOCHS = 3  # early-stopped by patience=2 on a flat AUC-PR


@pytest.fixture(scope="module")
def parity_splits():
    admissions = SyntheticEMRGenerator().sample_many(
        48, np.random.default_rng(123))
    return train_val_test_split(admissions, np.random.default_rng(124))


def test_gru_loss_monitor_trajectory_is_pinned(parity_splits):
    model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                          hidden_size=8)
    set_fused_scan(model, False)   # recordings predate the scan kernels
    trainer = Trainer(model, "mortality", max_epochs=4, patience=4,
                      batch_size=16, seed=0, monitor="loss")
    history = trainer.fit(parity_splits.train, parity_splits.validation)
    np.testing.assert_allclose(history.train_loss, GRU_TRAIN_LOSS,
                               rtol=0, atol=1e-12)
    np.testing.assert_allclose(history.val_loss, GRU_VAL_LOSS,
                               rtol=0, atol=1e-12)
    assert history.best_epoch == GRU_BEST_EPOCH
    metrics = trainer.evaluate(parity_splits.test)
    np.testing.assert_allclose(metrics["bce"], GRU_TEST_BCE,
                               rtol=0, atol=1e-12)


def test_lr_aucpr_monitor_early_stop_is_pinned(parity_splits):
    model = LogisticRegression(NUM_FEATURES, np.random.default_rng(1))
    trainer = Trainer(model, "mortality", max_epochs=5, patience=2,
                      batch_size=16, seed=3, monitor="auc_pr")
    history = trainer.fit(parity_splits.train, parity_splits.validation)
    assert history.num_epochs == LR_NUM_EPOCHS
    assert history.best_epoch == LR_BEST_EPOCH
    np.testing.assert_allclose(history.train_loss, LR_TRAIN_LOSS,
                               rtol=0, atol=1e-12)
    np.testing.assert_allclose(history.val_loss, LR_VAL_LOSS,
                               rtol=0, atol=1e-12)
