"""The evaluation path must not build autodiff graph state.

``Trainer.predict_proba`` / ``Trainer.evaluate`` run the whole forward
pass under ``no_grad``: no op output may be wired into the graph
(``requires_grad=True``) and no backward closure may ever fire.  The
per-op profiler counts exactly those events (``grad_graph_outputs``,
backward calls), so these tests pin the invariant directly instead of
inspecting internals.
"""

import numpy as np
import pytest

from repro.baselines import build_model
from repro.bench import profile
from repro.bench.runner import benchmark_cohort
from repro.data import NUM_FEATURES
from repro.train import Trainer


@pytest.fixture(scope="module")
def splits():
    return benchmark_cohort(num_admissions=24, seed=3)


@pytest.fixture(scope="module")
def trainer():
    model = build_model("GRU", NUM_FEATURES, np.random.default_rng(0))
    return Trainer(model, "mortality", batch_size=8)


def test_evaluate_builds_no_grad_graph(trainer, splits):
    with profile() as prof:
        metrics = trainer.evaluate(splits.validation)
    assert prof.forward_calls() > 0          # the pass really ran ops
    assert prof.grad_graph_outputs == 0      # ...but wired none into a graph
    assert prof.backward_calls() == 0
    assert 0.0 <= metrics["auc_roc"] <= 1.0


def test_predict_proba_builds_no_grad_graph(trainer, splits):
    with profile() as prof:
        probs = trainer.predict_proba(splits.validation)
    assert prof.forward_calls() > 0
    assert prof.grad_graph_outputs == 0
    assert probs.shape == (len(splits.validation),)


def test_training_step_does_build_grad_graph(trainer, splits):
    """Sanity: the same profiler counter is non-zero when grad is on —
    the eval test above is not vacuously passing."""
    with profile() as prof:
        history = Trainer(trainer.model, "mortality", batch_size=8,
                          max_epochs=1, patience=2, seed=1).fit(
                              splits.train, splits.validation)
    assert history.num_epochs == 1
    assert prof.grad_graph_outputs > 0
    assert prof.backward_calls() > 0


@pytest.mark.parametrize("was_training", [True, False])
def test_predict_proba_restores_mode(splits, was_training):
    model = build_model("GRU", NUM_FEATURES, np.random.default_rng(5))
    trainer = Trainer(model, "mortality", batch_size=8)
    model.train(was_training)
    trainer.predict_proba(splits.validation)
    assert model.training is was_training
