"""Shared probability/loss helpers (used by the engine's eval path)."""

import numpy as np

from repro.metrics import (evaluate_multiclass, multiclass_ce, sigmoid_probs,
                           softmax_probs)


class TestSoftmaxProbs:
    def test_rows_sum_to_one(self):
        probs = softmax_probs(np.random.default_rng(0).normal(size=(5, 7)))
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0)
        assert (probs > 0).all()

    def test_shift_invariance_and_large_logits(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax_probs(logits),
                                   softmax_probs(logits + 1000.0))
        assert np.isfinite(softmax_probs(np.array([[1e4, -1e4]]))).all()


class TestSigmoidProbs:
    def test_matches_closed_form(self):
        z = np.linspace(-5, 5, 11)
        np.testing.assert_allclose(sigmoid_probs(z), 1 / (1 + np.exp(-z)))

    def test_range(self):
        assert ((sigmoid_probs(np.array([-50.0, 0.0, 50.0])) >= 0).all())


class TestMulticlassCE:
    def test_perfect_prediction_is_zero(self):
        probs = np.eye(3)
        assert multiclass_ce(probs, np.arange(3)) == 0.0

    def test_uniform_is_log_k(self):
        probs = np.full((4, 5), 0.2)
        np.testing.assert_allclose(multiclass_ce(probs, np.zeros(4)),
                                   np.log(5))

    def test_zero_probability_is_clipped_finite(self):
        probs = np.array([[0.0, 1.0]])
        assert np.isfinite(multiclass_ce(probs, np.array([0])))

    def test_evaluate_multiclass_pair(self):
        probs = np.array([[0.9, 0.1], [0.2, 0.8]])
        out = evaluate_multiclass(probs, np.array([0, 1]))
        assert set(out) == {"ce", "accuracy"}
        assert out["accuracy"] == 1.0
