"""Tests of the calibration metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (brier_score, expected_calibration_error,
                           reliability_curve)


class TestBrier:
    def test_perfect_forecast(self):
        assert brier_score([1, 0], [1.0, 0.0]) == 0.0

    def test_worst_forecast(self):
        assert brier_score([1, 0], [0.0, 1.0]) == 1.0

    def test_uniform_half(self):
        assert brier_score([1, 0, 1, 0], [0.5] * 4) == 0.25

    def test_rejects_non_probabilities(self):
        with pytest.raises(ValueError):
            brier_score([1], [1.5])


class TestReliabilityCurve:
    def test_bins_cover_scores(self):
        labels = np.array([0, 1, 0, 1])
        scores = np.array([0.05, 0.95, 0.15, 0.85])
        confidence, frequency, counts = reliability_curve(labels, scores,
                                                          num_bins=10)
        assert counts.sum() == 4
        assert counts[0] == 1 and counts[9] == 1

    def test_empty_bins_are_nan(self):
        confidence, frequency, counts = reliability_curve(
            [1], [0.95], num_bins=10)
        assert np.isnan(confidence[0])
        assert counts[0] == 0

    def test_calibrated_forecaster_on_diagonal(self):
        rng = np.random.default_rng(0)
        scores = rng.random(20_000)
        labels = (rng.random(20_000) < scores).astype(float)
        confidence, frequency, counts = reliability_curve(labels, scores)
        occupied = counts > 100
        assert np.abs(confidence[occupied] - frequency[occupied]).max() < 0.05


class TestECE:
    def test_calibrated_forecaster_near_zero(self):
        rng = np.random.default_rng(1)
        scores = rng.random(20_000)
        labels = (rng.random(20_000) < scores).astype(float)
        assert expected_calibration_error(labels, scores) < 0.02

    def test_overconfident_forecaster_penalized(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 2_000).astype(float)
        overconfident = np.where(labels > 0.5, 0.99, 0.01)
        # Flip 30% of predictions: confidence stays extreme, accuracy drops.
        flip = rng.random(2_000) < 0.3
        overconfident[flip] = 1.0 - overconfident[flip]
        assert expected_calibration_error(labels, overconfident) > 0.2


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000), st.integers(2, 100))
def test_ece_bounded(seed, n):
    """Property: ECE is in [0, 1] for any probability forecast."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    scores = rng.random(n)
    value = expected_calibration_error(labels, scores)
    assert 0.0 <= value <= 1.0
