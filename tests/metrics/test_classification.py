"""Tests of the evaluation metrics, including property-based invariances."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (accuracy, auc_pr, auc_roc, bce_loss,
                           bootstrap_metric, evaluate_all, f1_score,
                           precision_recall_curve, roc_curve)


class TestAUCROC:
    def test_perfect_classifier(self):
        assert auc_roc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_classifier(self):
        assert auc_roc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 5000)
        scores = rng.random(5000)
        assert abs(auc_roc(labels, scores) - 0.5) < 0.03

    def test_ties_counted_half(self):
        # One positive and one negative share a score: AUC = 0.5.
        assert auc_roc([0, 1], [0.5, 0.5]) == 0.5

    def test_known_hand_value(self):
        # pairs: (0.1,0.4)+, (0.1,0.3)+, (0.2,0.4)+, (0.2,0.3)+ => 4/4
        # plus with 0.35 negative: (0.35,0.4)+, (0.35,0.3)- => 5/6
        labels = [0, 0, 1, 1, 0]
        scores = [0.1, 0.2, 0.4, 0.3, 0.35]
        assert np.isclose(auc_roc(labels, scores), 5.0 / 6.0)

    def test_single_class_is_nan(self):
        assert np.isnan(auc_roc([1, 1], [0.2, 0.8]))

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError):
            auc_roc([0, 1], [0.5])

    def test_non_binary_labels_raise(self):
        with pytest.raises(ValueError):
            auc_roc([0, 2], [0.5, 0.5])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            auc_roc([], [])


class TestAUCPR:
    def test_perfect_classifier(self):
        assert auc_pr([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_baseline_equals_prevalence_for_constant_scores(self):
        labels = np.array([1] * 10 + [0] * 90)
        scores = np.full(100, 0.5)
        assert np.isclose(auc_pr(labels, scores), 0.1)

    def test_no_positives_is_nan(self):
        assert np.isnan(auc_pr([0, 0], [0.2, 0.8]))

    def test_matches_manual_average_precision(self):
        labels = np.array([1, 0, 1, 0, 1])
        scores = np.array([0.9, 0.8, 0.7, 0.6, 0.5])
        # AP = sum over positives of precision at that recall step / n_pos
        expected = (1.0 / 1 + 2.0 / 3 + 3.0 / 5) / 3
        assert np.isclose(auc_pr(labels, scores), expected)


class TestCurves:
    def test_roc_endpoints(self):
        fpr, tpr, _ = roc_curve([0, 1, 0, 1], [0.1, 0.9, 0.4, 0.6])
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == 1.0 and tpr[-1] == 1.0

    def test_roc_monotone(self):
        rng = np.random.default_rng(1)
        labels = rng.integers(0, 2, 200)
        scores = rng.random(200)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)

    def test_pr_recall_monotone(self):
        rng = np.random.default_rng(2)
        labels = rng.integers(0, 2, 200)
        scores = rng.random(200)
        _, recall, _ = precision_recall_curve(labels, scores)
        assert np.all(np.diff(recall) >= 0)

    def test_trapezoid_roc_matches_mannwhitney(self):
        rng = np.random.default_rng(3)
        labels = rng.integers(0, 2, 500)
        scores = rng.random(500)
        fpr, tpr, _ = roc_curve(labels, scores)
        assert np.isclose(np.trapezoid(tpr, fpr), auc_roc(labels, scores))


class TestPointMetrics:
    def test_bce_known_value(self):
        assert np.isclose(bce_loss([1, 0], [0.5, 0.5]), np.log(2.0))

    def test_bce_handles_extreme_scores(self):
        assert np.isfinite(bce_loss([1, 0], [0.0, 1.0]))

    def test_accuracy(self):
        assert accuracy([1, 0, 1, 0], [0.9, 0.1, 0.4, 0.6]) == 0.5

    def test_f1_perfect(self):
        assert f1_score([1, 0, 1], [0.9, 0.1, 0.8]) == 1.0

    def test_f1_no_predictions(self):
        assert f1_score([1, 1], [0.1, 0.2]) == 0.0

    def test_evaluate_all_keys(self):
        out = evaluate_all([0, 1], [0.3, 0.7])
        assert set(out) == {"bce", "auc_roc", "auc_pr"}


class TestBootstrap:
    def test_interval_contains_point_typically(self):
        rng = np.random.default_rng(4)
        labels = rng.integers(0, 2, 300)
        scores = np.clip(labels * 0.4 + rng.random(300) * 0.6, 0, 1)
        point, low, high = bootstrap_metric(labels, scores, auc_roc,
                                            n_resamples=100, seed=0)
        assert low <= point <= high

    def test_interval_narrows_with_sample_size(self):
        rng = np.random.default_rng(5)

        def width(n):
            labels = rng.integers(0, 2, n)
            scores = np.clip(labels * 0.3 + rng.random(n) * 0.7, 0, 1)
            _, low, high = bootstrap_metric(labels, scores, auc_roc,
                                            n_resamples=120, seed=1)
            return high - low

        assert width(2000) < width(60)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(5, 60))
def test_auc_invariant_under_monotone_transform(seed, n):
    """Property: AUC depends only on the score ordering."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.random(n)
    original = auc_roc(labels, scores)
    transformed = auc_roc(labels, np.exp(3 * scores) + 7)
    assert np.isclose(original, transformed)


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(5, 60))
def test_auc_flip_symmetry(seed, n):
    """Property: negating scores gives 1 - AUC."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.normal(size=n)  # continuous: no ties
    assert np.isclose(auc_roc(labels, scores),
                      1.0 - auc_roc(labels, -scores))


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 10_000), st.integers(5, 60))
def test_metrics_in_unit_interval(seed, n):
    """Property: AUC-ROC and AUC-PR always land in [0, 1]."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, n)
    if labels.min() == labels.max():
        labels[0] = 1 - labels[0]
    scores = rng.random(n)
    assert 0.0 <= auc_roc(labels, scores) <= 1.0
    assert 0.0 <= auc_pr(labels, scores) <= 1.0
