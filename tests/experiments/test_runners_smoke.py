"""Smoke tests of the figure/table runners at a micro scale.

These verify the experiment plumbing end-to-end (training included) with
a one-epoch budget; the scientific "shape" assertions live in the
benchmark harness, which runs at a meaningful scale.
"""

import numpy as np
import pytest

from repro.experiments import (ExperimentConfig, aggregate_seeds,
                               relevant_vs_irrelevant, render_figure6,
                               render_table2, render_table3, run_grid,
                               run_table2, run_table3, train_and_evaluate)
from repro.experiments.figure8 import attention_summary


@pytest.fixture(scope="module")
def micro_config():
    return ExperimentConfig(scale="small", max_epochs=1, patience=1,
                            num_seeds=1, batch_size=32,
                            model_overrides=dict())


@pytest.fixture(scope="module")
def micro_splits():
    from repro.data import SyntheticEMRGenerator, train_val_test_split
    admissions = SyntheticEMRGenerator().sample_many(
        60, np.random.default_rng(0))
    return train_val_test_split(admissions, np.random.default_rng(1))


class TestRunner:
    def test_train_and_evaluate_contract(self, micro_config, micro_splits):
        metrics, model = train_and_evaluate(
            "GRU", micro_splits, "mortality", micro_config, seed=0,
            model_kwargs=dict(hidden_size=6))
        assert {"bce", "auc_roc", "auc_pr", "params",
                "seconds_per_batch"} <= set(metrics)
        assert metrics["params"] == model.num_parameters()

    def test_aggregate_seeds_means(self):
        per_seed = [
            dict(bce=0.4, auc_roc=0.7, auc_pr=0.5, params=10,
                 seconds_per_batch=0.1, prediction_seconds=0.01),
            dict(bce=0.6, auc_roc=0.9, auc_pr=0.7, params=10,
                 seconds_per_batch=0.3, prediction_seconds=0.03),
        ]
        agg = aggregate_seeds(per_seed)
        assert np.isclose(agg["bce"], 0.5)
        assert np.isclose(agg["auc_roc"], 0.8)
        assert np.isclose(agg["auc_pr_std"], 0.1)

    def test_run_grid_micro(self, micro_config):
        results = run_grid(("LR",), "physionet2012", "mortality",
                           micro_config)
        assert "LR" in results
        assert 0.0 <= results["LR"]["auc_roc"] <= 1.0


class TestRenderers:
    def test_render_figure6_layout(self):
        results = {("physionet2012", "mortality"): {
            "LR": dict(bce=0.4, auc_roc=0.8, auc_pr=0.5)}}
        text = render_figure6(results)
        assert "physionet2012 / mortality" in text
        assert "LR" in text and "0.800" in text

    def test_table2_runner_and_render(self):
        results = run_table2()
        assert "Glucose" in results and "Lactate" in results
        # DLA crisis: Glucose standardized value high at hour 19.
        assert results["Glucose"][19] > 1.0
        # HCT stays near baseline (irrelevant to DLA).
        assert abs(results["HCT"][19]) < 1.5
        text = render_table2(results)
        assert "h13" in text and "Glucose" in text

    def test_table3_runner_and_render(self, micro_config):
        results = run_table3(micro_config, models=("LR", "GRU"),
                             num_batches=1)
        assert results["LR"]["params"] == 38
        assert results["GRU"]["train_seconds_per_batch"] > 0
        text = render_table3(results)
        assert "# of param" in text

    def test_attention_summary(self):
        curve = np.zeros(47)
        curve[-5:] = 0.2
        summary = attention_summary(curve)
        assert summary["late_share"] == 1.0
        assert summary["peakiness"] == pytest.approx(0.2 * 47)

    def test_relevant_vs_irrelevant(self):
        names = ["Glucose", "Lactate", "HCT"]
        matrix = np.array([[0.0, 0.9, 0.1],
                           [0.5, 0.0, 0.5],
                           [0.5, 0.5, 0.0]])
        rel, irr = relevant_vs_irrelevant(matrix, names, anchor="Glucose",
                                          relevant=("Lactate",),
                                          irrelevant=("HCT",))
        assert rel == 0.9 and irr == pytest.approx(0.1)
