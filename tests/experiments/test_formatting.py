"""Tests of table rendering helpers."""

from repro.experiments import format_metric, render_table


class TestFormatMetric:
    def test_float(self):
        assert format_metric(0.123456) == "0.123"

    def test_digits(self):
        assert format_metric(0.5, digits=1) == "0.5"

    def test_int_passthrough(self):
        assert format_metric(42) == "42"

    def test_nan(self):
        assert format_metric(float("nan")) == "n/a"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        text = render_table(["a", "b"], [["x", "y"], ["1", "2"]])
        assert "a" in text and "y" in text and "2" in text

    def test_title_first_line(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        text = render_table(["col", "c2"], [["looooong", "1"], ["s", "2"]])
        lines = text.splitlines()
        # The second column starts at the same offset in all data rows.
        offsets = {line.index(ch) for line, ch in zip(lines[-2:], "12")}
        assert len(offsets) == 1
