"""Tests of the Figure 8 helper functions (no training required)."""

import numpy as np
import pytest

from repro.baselines import Dipole
from repro.data import NUM_FEATURES
from repro.experiments.figure8 import attention_summary, dipole_time_attention


@pytest.fixture(scope="module")
def tiny_dataset_local():
    from repro.data import SyntheticEMRGenerator, build_dataset
    admissions = SyntheticEMRGenerator().sample_many(
        24, np.random.default_rng(3))
    dataset, _ = build_dataset(admissions)
    # Ensure both outcome groups are present for the grouping logic.
    dataset.mortality[:4] = 1
    dataset.mortality[4:] = 0
    return dataset


class TestDipoleTimeAttention:
    def test_groups_and_shapes(self, tiny_dataset_local):
        model = Dipole(NUM_FEATURES, np.random.default_rng(0),
                       variant="concat", hidden_size=6, attention_size=4)
        curves = dipole_time_attention(model, tiny_dataset_local,
                                       batch_size=8)
        steps = tiny_dataset_local.num_time_steps
        assert curves["survivor"]["per_patient"].shape == (20, steps - 1)
        assert curves["non_survivor"]["per_patient"].shape == (4, steps - 1)
        assert curves["survivor"]["mean"].shape == (steps - 1,)

    def test_rows_are_distributions(self, tiny_dataset_local):
        model = Dipole(NUM_FEATURES, np.random.default_rng(1),
                       variant="concat", hidden_size=6, attention_size=4)
        curves = dipole_time_attention(model, tiny_dataset_local)
        for group in ("survivor", "non_survivor"):
            rows = curves[group]["per_patient"]
            assert np.allclose(rows.sum(axis=1), 1.0, atol=1e-8)


class TestAttentionSummary:
    def test_uniform_curve(self):
        curve = np.full(47, 1.0 / 47)
        summary = attention_summary(curve)
        assert np.isclose(summary["late_share"], (47 // 3) / 47)
        assert np.isclose(summary["peakiness"], 1.0)

    def test_late_concentration(self):
        curve = np.zeros(47)
        curve[-1] = 1.0
        summary = attention_summary(curve)
        assert summary["late_share"] == 1.0
        assert summary["peakiness"] == 47.0
