"""Tests of experiment configuration and the Table I runner."""

import pytest

from repro.experiments import default_config, render_table1, run_table1
from repro.experiments.config import ExperimentConfig


class TestConfig:
    def test_presets_ordered(self):
        small = default_config("small")
        paper = default_config("paper")
        assert paper.max_epochs > small.max_epochs
        assert paper.num_seeds == 5  # the paper's five-runs protocol

    def test_env_var(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert default_config().scale == "medium"

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            default_config("cosmic")

    def test_seeds_distinct(self):
        config = ExperimentConfig(num_seeds=5, base_seed=3)
        assert config.seeds() == [3, 4, 5, 6, 7]

    def test_trainer_kwargs_paper_protocol(self):
        config = default_config("paper")
        kwargs = config.trainer_kwargs(seed=0)
        assert kwargs["lr"] == 1e-3       # paper: initial lr 0.001
        assert kwargs["batch_size"] == 64  # paper: batch size 64


class TestTable1:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table1(scale="small")

    def test_both_datasets_present(self, results):
        assert set(results) == {"PhysioNet2012", "MIMIC-III"}

    def test_mimic_larger(self, results):
        assert (results["MIMIC-III"]["admissions"]
                > results["PhysioNet2012"]["admissions"])

    def test_survivors_majority(self, results):
        for stats in results.values():
            assert stats["survivor"] > stats["non_survivor"]

    def test_long_stay_majority(self, results):
        """Paper Table I: LOS > 7 is the larger class in both datasets."""
        for stats in results.values():
            assert stats["los_gt_7"] > stats["los_le_7"]

    def test_missing_rate_near_80_percent(self, results):
        for stats in results.values():
            assert 0.70 < stats["missing_rate"] < 0.90

    def test_thirty_seven_features(self, results):
        for stats in results.values():
            assert stats["num_features"] == 37

    def test_render_contains_all_rows(self, results):
        text = render_table1(results)
        assert "# of admissions" in text
        assert "missing rate" in text
        assert "PhysioNet2012" in text and "MIMIC-III" in text
