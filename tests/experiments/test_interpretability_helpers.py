"""Tests of the interpretability experiment helpers."""

import numpy as np
import pytest

from repro.data import NUM_FEATURES, NUM_TIME_STEPS
from repro.data.schema import feature_index
from repro.experiments import patient_a_processed


class TestPatientAProcessed:
    @pytest.fixture(scope="class")
    def processed(self, tiny_splits_cls):
        return patient_a_processed(tiny_splits_cls.standardizer)

    @pytest.fixture(scope="class")
    def tiny_splits_cls(self):
        from repro.data import SyntheticEMRGenerator, train_val_test_split
        admissions = SyntheticEMRGenerator().sample_many(
            50, np.random.default_rng(0))
        return train_val_test_split(admissions, np.random.default_rng(1))

    def test_shapes(self, processed):
        values, ever_observed, admission = processed
        assert values.shape == (NUM_TIME_STEPS, NUM_FEATURES)
        assert ever_observed.shape == (NUM_FEATURES,)
        assert not np.isnan(values).any()

    def test_standardized_scale(self, processed):
        """Values are z-scores: bulk within a plausible standardized band."""
        values, _, _ = processed
        assert np.abs(values).mean() < 3.0

    def test_glucose_crisis_visible_after_standardization(self, processed):
        values, _, admission = processed
        glucose = values[:, feature_index("Glucose")]
        assert glucose[20] > glucose[5] + 1.0

    def test_case_study_features_marked_observed(self, processed):
        _, ever_observed, _ = processed
        for name in ("Glucose", "Lactate", "pH", "HCT", "WBC"):
            assert ever_observed[feature_index(name)]

    def test_deterministic(self, tiny_splits_cls):
        a, _, _ = patient_a_processed(tiny_splits_cls.standardizer)
        b, _, _ = patient_a_processed(tiny_splits_cls.standardizer)
        assert np.array_equal(a, b)


def test_examples_compile():
    """Every example script must at least be valid Python."""
    import pathlib
    import py_compile
    examples = pathlib.Path(__file__).parents[2] / "examples"
    scripts = sorted(examples.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        py_compile.compile(str(script), doraise=True)
