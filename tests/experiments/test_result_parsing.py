"""Tests of the benchmark-side result-table parsing helpers.

The cross-cell benchmark tests reconstruct per-model AUC-PR values from
the persisted panel tables; this test pins the renderer format those
parsers rely on (a render/parse round trip).
"""

from repro.experiments import render_figure6


def _parse(text, model_names):
    parsed = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) == 4 and parts[0] in model_names:
            parsed[parts[0]] = float(parts[3])
    return parsed


def test_render_parse_round_trip():
    results = {("physionet2012", "mortality"): {
        "LR": dict(bce=0.5, auc_roc=0.7, auc_pr=0.412),
        "ELDA-Net": dict(bce=0.3, auc_roc=0.85, auc_pr=0.625),
    }}
    text = render_figure6(results)
    parsed = _parse(text, ("LR", "ELDA-Net"))
    assert parsed == {"LR": 0.412, "ELDA-Net": 0.625}


def test_parser_ignores_headers_and_rules():
    results = {("mimic3", "los"): {
        "GRU": dict(bce=0.4, auc_roc=0.75, auc_pr=0.8),
    }}
    text = render_figure6(results)
    parsed = _parse(text, ("GRU",))
    assert list(parsed) == ["GRU"]
