"""Capture-replay perf floor (``pytest -m bench``).

The serving-side counterpart of the training perf-smoke lane:
benchmarks the captured-replay forward against the eager forward for
the floor-file model and fails when the batch-1 speedup drops below the
recorded floor — e.g. if replay starts re-allocating per call, or the
kernels stop hitting their preallocated buffers.  The floor is
deliberately below the measured speedup (see BENCH_8.json) so shared-
machine noise does not flake the lane; see docs/PERFORMANCE.md for the
floor-update protocol.
"""

import json
from pathlib import Path

import pytest

from repro.bench.runner import benchmark_capture

pytestmark = pytest.mark.bench

FLOOR_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "results" / "perf_floor.json")


@pytest.fixture(scope="module")
def capture_floor():
    return json.loads(FLOOR_PATH.read_text())["capture"]


def test_batch1_replay_speedup_above_floor(capture_floor):
    spec = capture_floor["benchmark"]
    result = benchmark_capture(
        model_name=spec["model"], num_admissions=spec["num_admissions"],
        seed=spec["seed"], batch_sizes=(spec["batch_size"],),
        repeats=spec["repeats"], dtype=spec["dtype"])
    lane = result["lanes"][spec["batch_size"]]
    floor = capture_floor["floor_speedup"]
    assert lane["speedup"] >= floor, (
        f"capture-replay regression: batch-{spec['batch_size']} speedup "
        f"{lane['speedup']:.2f}x is below the recorded floor of "
        f"{floor:.2f}x (measured: {capture_floor['measured_speedup']:.2f}x, "
        f"eager {lane['eager_seconds'] * 1e3:.2f} ms vs replay "
        f"{lane['replay_seconds'] * 1e3:.2f} ms). If this machine is "
        f"genuinely slower, re-measure and update {FLOOR_PATH.name}; "
        "see docs/PERFORMANCE.md.")
