"""Perf-smoke regression lane (``pytest -m bench``).

Excluded from tier-1 (timing on shared machines is noisy); run it
deliberately via ``pytest -m bench``.  The test trains the small GRU
baseline on the fixed synthetic benchmark cohort — once per precision
policy dtype — and fails if throughput drops below that dtype's floor
recorded in ``benchmarks/results/perf_floor.json``.  Each floor is a
deliberately conservative ~35% of the measured throughput with the
sequence-fused scan kernels and length-bucketed batching enabled, so it
only trips on real regressions (e.g. losing the scan or fused kernels,
or the float32 plane silently computing in float64), not machine noise.
See docs/PERFORMANCE.md for the floor-update protocol.
"""

import json
from pathlib import Path

import pytest

from repro.bench.runner import benchmark_training

pytestmark = pytest.mark.bench

FLOOR_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "results" / "perf_floor.json")


@pytest.fixture(scope="module")
def floor_spec():
    return json.loads(FLOOR_PATH.read_text())


def test_floor_file_is_well_formed(floor_spec):
    assert floor_spec["schema"] == "repro.bench/perf-floor-v5"
    assert floor_spec["benchmark"]["fused_scan"] is True
    assert floor_spec["benchmark"]["bucket_by_length"] is True
    assert set(floor_spec["dtypes"]) == {"float32", "float64"}
    for entry in floor_spec["dtypes"].values():
        assert 0 < entry["floor_steps_per_sec"] \
            < entry["measured_steps_per_sec"]
    assert set(floor_spec["scan_models"]) == {"GRU-D", "StageNet"}
    for lanes in floor_spec["scan_models"].values():
        assert set(lanes) == {"float32", "float64"}
        for entry in lanes.values():
            assert 0 < entry["floor_steps_per_sec"] \
                < entry["measured_steps_per_sec"]
    capture = floor_spec["capture"]
    assert 1.0 < capture["floor_speedup"] < capture["measured_speedup"]


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_training_throughput_above_floor(floor_spec, dtype):
    spec = floor_spec["benchmark"]
    result = benchmark_training(
        model_name=spec["model"], task=spec["task"], epochs=spec["epochs"],
        num_admissions=spec["num_admissions"],
        batch_size=spec["batch_size"], seed=spec["seed"],
        fused=spec["fused"], fused_scan=spec["fused_scan"],
        bucket_by_length=spec["bucket_by_length"],
        with_profiler=False, dtype=dtype)
    lane = floor_spec["dtypes"][dtype]
    floor = lane["floor_steps_per_sec"]
    assert result["steps_per_sec"] >= floor, (
        f"throughput regression under {dtype}: "
        f"{result['steps_per_sec']:.1f} steps/sec is below the recorded "
        f"floor of {floor:.1f} "
        f"(measured when fused: {lane['measured_steps_per_sec']:.1f}). "
        f"If this machine is genuinely slower, re-measure and update "
        f"{FLOOR_PATH.name}; see docs/PERFORMANCE.md.")


@pytest.mark.parametrize("model_name", ["GRU-D", "StageNet"])
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_scan_model_throughput_above_floor(floor_spec, model_name, dtype):
    """GRU-D/StageNet route through their sequence-fused scans by default;
    dropping below the floor means a scan routing silently regressed to
    the per-step path (per-step float32 throughput sits under these
    floors — see BENCH_9.json)."""
    spec = floor_spec["benchmark"]
    result = benchmark_training(
        model_name=model_name, task=spec["task"], epochs=spec["epochs"],
        num_admissions=spec["num_admissions"],
        batch_size=spec["batch_size"], seed=spec["seed"],
        fused=spec["fused"], fused_scan=True,
        bucket_by_length=spec["bucket_by_length"],
        with_profiler=False, dtype=dtype)
    lane = floor_spec["scan_models"][model_name][dtype]
    floor = lane["floor_steps_per_sec"]
    assert result["steps_per_sec"] >= floor, (
        f"{model_name} scan throughput regression under {dtype}: "
        f"{result['steps_per_sec']:.1f} steps/sec is below the recorded "
        f"floor of {floor:.1f} "
        f"(measured with the scan: {lane['measured_steps_per_sec']:.1f}). "
        f"If this machine is genuinely slower, re-measure and update "
        f"{FLOOR_PATH.name}; see docs/PERFORMANCE.md.")
