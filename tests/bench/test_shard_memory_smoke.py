"""Memory-ceiling smoke for out-of-core training (``pytest -m shards``).

Generates a 10k-admission sharded store and trains one GRU epoch from
it **in a fresh subprocess**, then asserts the subprocess's peak RSS
stayed under the ceiling recorded in
``benchmarks/results/shard_floor.json``.  The subprocess matters:
``ru_maxrss`` is a process-lifetime high-water mark, so measuring in
the pytest process would report whatever earlier tests peaked at.

Runs in the CI shards lane; excluded from tier-1 via the ``bench``
marker (it takes ~25 s).  BENCH_7.json documents the same ceiling
property at 1M admissions — this lane guards it at a size CI can
afford.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

pytestmark = [pytest.mark.shards, pytest.mark.bench]

FLOOR_PATH = (Path(__file__).resolve().parents[2]
              / "benchmarks" / "results" / "shard_floor.json")

_WORKER = """
import json, sys
from repro.bench.runner import benchmark_sharded_training
from repro.data import generate_shards

spec = json.loads(sys.argv[1])
generate_shards(sys.argv[2], spec["admissions"],
                shard_size=spec["shard_size"], seed=spec["seed"])
result = benchmark_sharded_training(
    sys.argv[2], model_name=spec["model"], task=spec["task"],
    epochs=spec["epochs"], batch_size=spec["batch_size"],
    seed=spec["seed"], val_shards=spec["val_shards"],
    bucket_by_length=spec["bucket_by_length"])
print(json.dumps({"max_rss_bytes": result["max_rss_bytes"],
                  "steps_per_sec": result["steps_per_sec"]}))
"""


@pytest.fixture(scope="module")
def floor_spec():
    return json.loads(FLOOR_PATH.read_text())


def test_floor_file_is_well_formed(floor_spec):
    assert floor_spec["schema"] == "repro.data/shard-memory-v1"
    assert 0 < floor_spec["measured_max_rss_bytes"] \
        < floor_spec["ceiling_bytes"]
    assert floor_spec["benchmark"]["bucket_by_length"] is True


def test_streamed_epoch_stays_under_memory_ceiling(floor_spec, tmp_path):
    spec = floor_spec["benchmark"]
    proc = subprocess.run(
        [sys.executable, "-c", _WORKER, json.dumps(spec),
         str(tmp_path / "store")],
        capture_output=True, text=True, timeout=600)
    assert proc.returncode == 0, proc.stderr[-4000:]
    measured = json.loads(proc.stdout.strip().splitlines()[-1])
    assert measured["steps_per_sec"] > 0
    ceiling = floor_spec["ceiling_bytes"]
    assert measured["max_rss_bytes"] <= ceiling, (
        f"out-of-core training peaked at {measured['max_rss_bytes']} "
        f"bytes RSS, above the {ceiling}-byte ceiling recorded in "
        f"{FLOOR_PATH.name} — the streaming loader may be "
        f"materializing the cohort; see docs/DATA.md.")
