"""Accounting correctness of the repro.bench per-op profiler.

The profiler's numbers are only useful if they are *exact*: these tests
pin (1) op counts matching precisely the ops executed, including
composite ops that call other registered primitives; (2) nested
``profile()`` contexts each seeing every event exactly once; (3) backward
time attributed to the op tag of the node being differentiated; and
(4) byte accounting and the self-time invariant (self ≤ inclusive,
Σ self ≤ wall).
"""

import json
from collections import Counter

import numpy as np
import pytest

from repro.bench import Profiler, profile, render_table, write_report
from repro.bench import _hooks
from repro.nn import Tensor, no_grad, ops


@pytest.fixture(autouse=True)
def _no_leaked_profilers():
    """Every test must leave the global profiler stack empty."""
    yield
    assert _hooks._PROFILERS == []
    assert _hooks._FRAMES == []


def _forward_counts(prof):
    return {name: stat.forward_calls for name, stat in prof.stats.items()
            if stat.forward_calls}


def _backward_counts(prof):
    return {name: stat.backward_calls for name, stat in prof.stats.items()
            if stat.backward_calls}


class TestForwardCounts:
    def test_counts_match_ops_executed_exactly(self):
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        b = Tensor(np.full((3, 4), 2.0))
        with profile() as prof:
            ops.sum(ops.mul(ops.add(a, b), b))
        assert _forward_counts(prof) == {"add": 1, "mul": 1, "sum": 1}

    def test_property_random_unary_chains(self):
        """Property-style: for random chains of unary primitives the
        recorded counts equal the chain's composition exactly."""
        unary = {"tanh": ops.tanh, "sigmoid": ops.sigmoid,
                 "relu": ops.relu, "exp": ops.exp, "neg": ops.neg}
        rng = np.random.default_rng(7)
        for _ in range(20):
            names = rng.choice(sorted(unary), size=rng.integers(1, 8)).tolist()
            expected = Counter(names)
            expected["sum"] += 1
            with profile() as prof:
                t = Tensor(rng.normal(size=(4,)))
                for name in names:
                    t = unary[name](t)
                ops.sum(t)
            assert _forward_counts(prof) == dict(expected), names

    def test_composite_op_counts_itself_and_children(self):
        """``min`` is implemented as neg∘max∘neg: all four calls appear."""
        with profile() as prof:
            ops.min(Tensor(np.arange(6.0)))
        assert _forward_counts(prof) == {"min": 1, "max": 1, "neg": 2}

    def test_composite_self_time_excludes_children(self):
        with profile() as prof:
            ops.min(Tensor(np.random.default_rng(0).normal(size=(200, 200))),
                    axis=0)
        stat = prof.op("min")
        assert stat.forward_self_seconds <= stat.forward_seconds

    def test_ops_outside_context_are_not_recorded(self):
        a = Tensor(np.ones(3))
        ops.exp(a)
        with profile() as prof:
            ops.tanh(a)
        ops.sigmoid(a)
        assert _forward_counts(prof) == {"tanh": 1}

    def test_reset_clears_statistics(self):
        with profile() as prof:
            ops.exp(Tensor(np.ones(3)))
        prof.reset()
        assert prof.stats == {}
        assert prof.wall_seconds == 0.0


class TestNestedContexts:
    def test_each_context_records_events_once(self):
        """The outer context includes the inner one's ops exactly once —
        two active profilers never double-count within either."""
        a = Tensor(np.ones((2, 2)))
        with profile("outer") as outer:
            ops.exp(a)
            with profile("inner") as inner:
                ops.add(a, a)
            ops.tanh(a)
        assert _forward_counts(inner) == {"add": 1}
        assert _forward_counts(outer) == {"exp": 1, "add": 1, "tanh": 1}
        assert outer.forward_calls("add") == 1

    def test_nested_wall_times_nest(self):
        with profile() as outer:
            with profile() as inner:
                ops.exp(Tensor(np.ones(100)))
        assert inner.wall_seconds <= outer.wall_seconds

    def test_out_of_order_exit_raises(self):
        outer, inner = profile("o"), profile("i")
        outer.__enter__()
        inner.__enter__()
        try:
            with pytest.raises(RuntimeError, match="innermost-first"):
                outer.__exit__(None, None, None)
        finally:
            inner.__exit__(None, None, None)
            outer.__exit__(None, None, None)

    def test_reentering_same_profiler_accumulates(self):
        prof = Profiler("accumulating")
        for _ in range(3):
            with prof:
                ops.exp(Tensor(np.ones(2)))
        assert prof.forward_calls("exp") == 3


class TestBackwardAttribution:
    def test_backward_attributed_to_producing_op_tag(self):
        a = Tensor(np.random.default_rng(0).normal(size=(3, 4)),
                   requires_grad=True)
        b = Tensor(np.random.default_rng(1).normal(size=(4, 2)),
                   requires_grad=True)
        with profile() as prof:
            loss = ops.sum(ops.tanh(ops.matmul(a, b)))
            loss.backward()
        assert _backward_counts(prof) == {"sum": 1, "tanh": 1, "matmul": 1}

    def test_composite_backward_runs_under_primitive_tags(self):
        """``min`` creates no node of its own: its backward work must be
        attributed to the ``max``/``neg`` primitives, never to ``min``."""
        a = Tensor(np.arange(6.0) + 0.25, requires_grad=True)
        with profile() as prof:
            ops.min(a).backward()
        assert prof.backward_calls("min") == 0
        assert prof.backward_calls("max") == 1
        assert prof.backward_calls("neg") == 2

    def test_no_backward_events_without_backward_pass(self):
        a = Tensor(np.ones(4), requires_grad=True)
        with profile() as prof:
            ops.sigmoid(a)
        assert prof.backward_calls() == 0

    def test_forward_and_backward_seconds_are_separate(self):
        rng = np.random.default_rng(2)
        a = Tensor(rng.normal(size=(120, 120)), requires_grad=True)
        b = Tensor(rng.normal(size=(120, 120)), requires_grad=True)
        with profile() as prof:
            ops.sum(ops.matmul(a, b)).backward()
        stat = prof.op("matmul")
        assert stat.forward_calls == 1 and stat.backward_calls == 1
        assert stat.forward_seconds > 0.0
        assert stat.backward_seconds > 0.0

    def test_custom_loss_closure_tag(self):
        """Ops built outside the registry (bce_with_logits constructs its
        node by hand) are still attributed via the closure's qualname."""
        from repro.nn.losses import bce_with_logits
        logits = Tensor(np.zeros(5), requires_grad=True)
        with profile() as prof:
            bce_with_logits(logits, np.ones(5)).backward()
        assert prof.backward_calls("bce_with_logits") == 1


class TestBytesAndGradAccounting:
    # Byte expectations scale with the precision policy's itemsize
    # (8 under float64, 4 under float32).
    @staticmethod
    def _itemsize():
        from repro.nn import get_default_dtype
        return np.dtype(get_default_dtype()).itemsize

    def test_forward_bytes_equal_output_allocation(self):
        a = Tensor(np.ones((3, 4)))
        with profile() as prof:
            ops.add(a, a)
        assert prof.op("add").forward_bytes == 3 * 4 * self._itemsize()

    def test_list_valued_op_bytes_sum_over_outputs(self):
        a = Tensor(np.ones((2, 6)))
        with profile() as prof:
            ops.split(a, 3, axis=-1)
        # split emits three (2, 2) tensors itself (via three getitems).
        assert prof.op("split").forward_bytes == 2 * 6 * self._itemsize()

    def test_backward_bytes_equal_incoming_gradient(self):
        size = self._itemsize()
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        with profile() as prof:
            ops.sum(ops.exp(a)).backward()
        assert prof.op("exp").backward_bytes == 3 * 4 * size  # (3, 4) grad
        assert prof.op("sum").backward_bytes == size          # scalar grad

    def test_peak_grad_bytes_tracks_live_gradients(self):
        size = self._itemsize()
        a = Tensor(np.ones((3, 4)), requires_grad=True)
        with profile() as prof:
            loss = ops.sum(ops.exp(a))
            loss.backward()
        # At the peak, the scalar loss grad, the (3, 4) exp-node grad,
        # and the (3, 4) leaf grad can all be live simultaneously.
        assert prof.peak_grad_bytes >= 3 * 4 * size
        assert prof.peak_grad_bytes <= 2 * (3 * 4 * size) + size

    def test_peak_grad_bytes_resets_between_top_level_profiles(self):
        a = Tensor(np.ones((5, 5)), requires_grad=True)
        with profile() as first:
            ops.sum(ops.tanh(a)).backward()
        a.zero_grad()
        with profile() as second:
            ops.sum(a).backward()
        # The second run's much smaller backward must not inherit the
        # first run's live-byte high-water mark.
        assert second.peak_grad_bytes < first.peak_grad_bytes

    def test_grad_graph_outputs_counts_only_graph_nodes(self):
        a = Tensor(np.ones(3), requires_grad=True)
        with profile() as prof:
            ops.exp(a)                  # graph node
            with no_grad():
                ops.exp(a)              # plain numpy, no graph
            ops.exp(Tensor(np.ones(3)))  # no parent requires grad
        assert prof.forward_calls("exp") == 3
        assert prof.grad_graph_outputs == 1

    def test_self_time_totals_bounded_by_wall(self):
        rng = np.random.default_rng(3)
        a = Tensor(rng.normal(size=(80, 80)), requires_grad=True)
        with profile() as prof:
            for _ in range(5):
                ops.sum(ops.tanh(ops.matmul(a, a))).backward()
        assert 0.0 < prof.total_self_seconds() <= prof.wall_seconds + 1e-6


class TestReport:
    def test_write_report_creates_bench_json(self, tmp_path):
        with profile("unit test/run") as prof:
            ops.sum(ops.exp(Tensor(np.ones(4), requires_grad=True))).backward()
        path = write_report(prof, directory=tmp_path,
                            extra={"steps_per_sec": 12.5}, stamp="19700101")
        assert path.name == "BENCH_unit-test-run_19700101.json"
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.bench/v1"
        assert payload["extra"]["steps_per_sec"] == 12.5
        for section in ("forward", "backward"):
            entry = payload["ops"]["exp"][section]
            assert entry["calls"] == 1
            assert set(entry) == {"calls", "seconds", "self_seconds", "bytes"}

    def test_profiler_save_roundtrip(self, tmp_path):
        with profile("roundtrip") as prof:
            ops.exp(Tensor(np.ones(2)))
        path = prof.save(directory=tmp_path)
        assert path.name.startswith("BENCH_roundtrip_")
        assert json.loads(path.read_text())["ops"]["exp"]["forward"]["calls"] == 1

    def test_render_table_sorts_and_limits(self):
        prof = Profiler("manual")
        prof._record_forward("cheap", 0.001, 0.001, 10, False)
        prof._record_forward("hot", 0.5, 0.5, 1000, False)
        text = render_table(prof, sort_by="total", limit=1)
        assert "hot" in text and "cheap" not in text
        full = render_table(prof, sort_by="total")
        assert full.index("hot") < full.index("cheap")

    def test_render_table_rejects_unknown_sort(self):
        with pytest.raises(ValueError, match="sort_by"):
            render_table(Profiler(), sort_by="vibes")
