"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.data import (SyntheticEMRGenerator, build_dataset,
                        train_val_test_split)


# Finite-difference machinery now lives in the library itself
# (repro.nn.gradcheck); the test suite consumes it like any other user.
from repro.nn.gradcheck import numeric_gradient  # noqa: F401 (re-export)


def assert_gradcheck(build_fn, *arrays, tol=2e-5):
    """Compare autodiff gradients with finite differences.

    Thin wrapper over :func:`repro.nn.gradcheck.gradcheck` keeping the
    historical ``tol`` (absolute tolerance) signature.
    """
    nn.gradcheck.gradcheck(build_fn, *arrays, atol=tol, rtol=0.0)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_admissions():
    """A small pool of admissions shared across data/model tests."""
    generator = SyntheticEMRGenerator()
    return generator.sample_many(80, np.random.default_rng(0))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_admissions):
    dataset, _ = build_dataset(tiny_admissions)
    return dataset


@pytest.fixture(scope="session")
def tiny_splits(tiny_admissions):
    return train_val_test_split(tiny_admissions, np.random.default_rng(1))


@pytest.fixture(scope="session")
def shard_store(tmp_path_factory):
    """A small sharded cohort store (96 admissions, 6 shards), shared
    read-only across the shards test suites; tests that mutate files
    must copy it first (see tests/data/test_shards_faults.py)."""
    from repro.data import generate_shards
    root = tmp_path_factory.mktemp("shard_store") / "store"
    generate_shards(root, 96, cohort="physionet2012", shard_size=16,
                    seed=7)
    return root
