"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import nn
from repro.data import (SyntheticEMRGenerator, build_dataset,
                        train_val_test_split)


def numeric_gradient(fn, arrays, eps=1e-6):
    """Central finite differences of a scalar function of numpy arrays."""
    grads = []
    for target in arrays:
        grad = np.zeros_like(target)
        flat = target.reshape(-1)
        grad_flat = grad.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            upper = fn()
            flat[i] = original - eps
            lower = fn()
            flat[i] = original
            grad_flat[i] = (upper - lower) / (2 * eps)
        grads.append(grad)
    return grads


def assert_gradcheck(build_fn, *arrays, tol=2e-5):
    """Compare autodiff gradients with finite differences.

    ``build_fn(*tensors)`` must return a scalar Tensor; ``arrays`` are the
    numpy inputs (mutated in place during differencing, restored after).
    """
    tensors = [nn.Tensor(a, requires_grad=True) for a in arrays]
    out = build_fn(*tensors)
    out.backward()

    def evaluate():
        fresh = [nn.Tensor(a) for a in arrays]
        return build_fn(*fresh).item()

    numeric = numeric_gradient(evaluate, list(arrays))
    for tensor, expected in zip(tensors, numeric):
        assert tensor.grad is not None, "missing gradient"
        error = np.abs(tensor.grad - expected).max()
        assert error < tol, f"gradient mismatch: max abs error {error}"


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_admissions():
    """A small pool of admissions shared across data/model tests."""
    generator = SyntheticEMRGenerator()
    return generator.sample_many(80, np.random.default_rng(0))


@pytest.fixture(scope="session")
def tiny_dataset(tiny_admissions):
    dataset, _ = build_dataset(tiny_admissions)
    return dataset


@pytest.fixture(scope="session")
def tiny_splits(tiny_admissions):
    return train_val_test_split(tiny_admissions, np.random.default_rng(1))
