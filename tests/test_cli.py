"""Tests of the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "stats"])

    def test_parses_train_options(self):
        args = build_parser().parse_args(
            ["train", "--model", "GRU", "--task", "los", "--epochs", "2"])
        assert args.model == "GRU"
        assert args.task == "los"
        assert args.epochs == 2

    def test_compare_models_list(self):
        args = build_parser().parse_args(
            ["compare", "--models", "LR", "FM"])
        assert args.models == ["LR", "FM"]

    def test_debug_anomaly_defaults_off(self):
        args = build_parser().parse_args(["train", "--model", "LR"])
        assert args.debug_anomaly is False

    def test_debug_anomaly_parses(self):
        args = build_parser().parse_args(
            ["--debug-anomaly", "train", "--model", "LR"])
        assert args.debug_anomaly is True


class TestCommands:
    def test_stats_prints_all_splits(self):
        out = io.StringIO()
        code = main(["stats", "--cohort", "physionet2012"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "[physionet2012 / train]" in text
        assert "[physionet2012 / test]" in text
        assert "missing_rate" in text

    def test_train_lr_end_to_end(self, tmp_path):
        out = io.StringIO()
        weights = tmp_path / "lr.npz"
        code = main(["train", "--model", "LR", "--epochs", "1",
                     "--save", str(weights)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "AUC-ROC" in text
        assert "params  : 38" in text
        assert weights.exists()

    def test_compare_prints_table(self):
        out = io.StringIO()
        code = main(["compare", "--models", "LR", "FM"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "LR" in text and "FM" in text and "AUC-PR" in text


class TestAnomalyPlumbing:
    def test_debug_anomaly_reaches_the_trainer(self, monkeypatch):
        """--debug-anomaly must plumb through to Trainer(anomaly_mode=...)."""
        import types

        import repro.train

        captured = {}

        class RecordingTrainer:
            def __init__(self, model, task, **kwargs):
                captured.update(kwargs, task=task)

            def fit(self, train, validation):
                return types.SimpleNamespace(num_epochs=0, best_epoch=-1)

            def evaluate(self, dataset):
                return {"bce": 0.0, "auc_roc": 0.5, "auc_pr": 0.5}

        monkeypatch.setattr(repro.train, "Trainer", RecordingTrainer)
        code = main(["--debug-anomaly", "train", "--model", "LR"],
                    out=io.StringIO())
        assert code == 0
        assert captured["anomaly_mode"] is True

        captured.clear()
        main(["train", "--model", "LR"], out=io.StringIO())
        assert captured["anomaly_mode"] is False


class TestInterpretParser:
    def test_parses_hour(self):
        args = build_parser().parse_args(["interpret", "--hour", "35"])
        assert args.hour == 35
        assert args.command == "interpret"


class TestServingCommands:
    @pytest.fixture(scope="class")
    def trained_run_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("cli-serve") / "run"
        code = main(["train", "--model", "GRU", "--epochs", "1",
                     "--run-dir", str(run_dir)], out=io.StringIO())
        assert code == 0
        return run_dir

    def test_parses_predict_and_serve_options(self):
        args = build_parser().parse_args(
            ["predict", "--run-dir", "runs/x", "--checkpoint", "last",
             "--limit", "3"])
        assert (args.run_dir, args.checkpoint, args.limit) \
            == ("runs/x", "last", 3)
        args = build_parser().parse_args(
            ["serve", "--run-dir", "runs/x", "--requests", "32",
             "--clients", "4", "--max-batch-size", "8"])
        assert (args.requests, args.clients, args.max_batch_size) \
            == (32, 4, 8)

    def test_predict_and_serve_require_run_dir(self):
        for command in ("predict", "serve"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([command])

    def test_train_persists_the_standardizer(self, trained_run_dir):
        assert (trained_run_dir / "standardizer.npz").exists()
        assert (trained_run_dir / "config.json").exists()

    def test_predict_prints_probabilities(self, trained_run_dir):
        out = io.StringIO()
        code = main(["predict", "--run-dir", str(trained_run_dir),
                     "--limit", "4"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "GRU" in text
        assert text.count("p=") == 4

    def test_serve_reports_metrics(self, trained_run_dir, tmp_path):
        out = io.StringIO()
        code = main(["serve", "--run-dir", str(trained_run_dir),
                     "--requests", "48", "--clients", "4", "--pool", "8",
                     "--max-batch-size", "8", "--no-json"], out=out)
        text = out.getvalue()
        assert code == 0
        assert "requests        : 48" in text
        assert "cache hit rate" in text
        assert "throughput" in text

    def test_serve_writes_a_report(self, trained_run_dir, tmp_path):
        code = main(["serve", "--run-dir", str(trained_run_dir),
                     "--requests", "16", "--clients", "2", "--pool", "4",
                     "--out", str(tmp_path)], out=io.StringIO())
        assert code == 0
        reports = list(tmp_path.glob("SERVE_*.json"))
        assert len(reports) == 1

    def test_serve_without_standardizer_exits(self, trained_run_dir,
                                              tmp_path):
        import shutil
        broken = tmp_path / "broken"
        shutil.copytree(trained_run_dir, broken)
        (broken / "standardizer.npz").unlink()
        with pytest.raises(SystemExit, match="standardizer"):
            main(["serve", "--run-dir", str(broken), "--requests", "4"],
                 out=io.StringIO())


class TestShardCommands:
    def test_parses_shard_options(self):
        args = build_parser().parse_args(
            ["shard", "--out", "store", "--admissions", "100",
             "--shard-size", "25", "--workers", "2", "--seed", "9"])
        assert (args.out, args.admissions, args.shard_size,
                args.workers, args.seed) == ("store", 100, 25, 2, 9)
        with pytest.raises(SystemExit):   # --admissions is required
            build_parser().parse_args(["shard", "--out", "store"])

    def test_shard_generates_a_store(self, tmp_path):
        out = io.StringIO()
        store = tmp_path / "store"
        code = main(["shard", "--out", str(store), "--admissions", "48",
                     "--shard-size", "16", "--seed", "5"], out=out)
        text = out.getvalue()
        assert code == 0
        assert (store / "manifest.json").exists()
        assert "admissions    : 48" in text
        assert "shards        : 3" in text

    def test_stats_reads_manifest_metadata(self, shard_store):
        out = io.StringIO()
        code = main(["stats", "--shards", str(shard_store)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "6 shards" in text
        assert "admissions                   96" in text
        assert "missing_rate" in text

    def test_train_streams_from_shards(self, shard_store, tmp_path):
        run_dir = tmp_path / "run"
        out = io.StringIO()
        code = main(["train", "--model", "LR", "--epochs", "1",
                     "--shards", str(shard_store),
                     "--run-dir", str(run_dir)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "shards:" in text
        assert "AUC-ROC" in text
        # The persisted standardizer is the train view's (leak-free).
        assert (run_dir / "standardizer.npz").exists()

    def test_bench_reports_peak_rss_and_writes_json(self, shard_store,
                                                    tmp_path):
        out = io.StringIO()
        code = main(["bench", "--model", "LR", "--epochs", "1",
                     "--shards", str(shard_store), "--batch-size", "32",
                     "--out", str(tmp_path)], out=out)
        text = out.getvalue()
        assert code == 0
        assert "peak RSS" in text
        assert "steps/sec" in text
        reports = list(tmp_path.glob("BENCH_shards-LR_*.json"))
        assert len(reports) == 1
        import json
        payload = json.loads(reports[0].read_text())
        assert payload["num_admissions"] == 96
        assert payload["max_rss_bytes"] > 0


class TestRunDirAndResume:
    def test_parses_run_dir_and_resume(self):
        args = build_parser().parse_args(
            ["train", "--run-dir", "runs/x", "--resume"])
        assert args.run_dir == "runs/x"
        assert args.resume is True

    def test_resume_defaults_off(self):
        args = build_parser().parse_args(["train"])
        assert args.resume is False
        assert args.run_dir is None

    def test_resume_without_run_dir_exits(self):
        with pytest.raises(SystemExit):
            main(["train", "--model", "LR", "--resume"], out=io.StringIO())

    def test_run_dir_leaves_artifacts_and_resumes(self, tmp_path):
        run_dir = tmp_path / "run"
        out = io.StringIO()
        code = main(["train", "--model", "LR", "--epochs", "2",
                     "--run-dir", str(run_dir)], out=out)
        assert code == 0
        assert "run dir" in out.getvalue()
        assert (run_dir / "config.json").exists()
        assert (run_dir / "metrics.jsonl").exists()
        assert (run_dir / "checkpoints" / "last" / "weights.npz").exists()

        out = io.StringIO()
        code = main(["train", "--model", "LR", "--epochs", "4",
                     "--run-dir", str(run_dir), "--resume"], out=out)
        assert code == 0
        assert "4 epochs" in out.getvalue()
        lines = (run_dir / "metrics.jsonl").read_text().splitlines()
        assert len(lines) == 4  # 2 original + 2 resumed


class TestTriStateCapture:
    """One --capture convention across predict/serve/loadtest."""

    @pytest.mark.parametrize("command", ["predict", "serve", "loadtest"])
    def test_defaults_to_auto(self, command):
        args = build_parser().parse_args([command, "--run-dir", "runs/x"])
        assert args.capture == "auto"

    @pytest.mark.parametrize("command", ["predict", "serve", "loadtest"])
    def test_bare_flag_means_on(self, command):
        args = build_parser().parse_args(
            [command, "--run-dir", "runs/x", "--capture"])
        assert args.capture == "on"

    @pytest.mark.parametrize("value", ["on", "off", "auto"])
    def test_explicit_values(self, value):
        args = build_parser().parse_args(
            ["serve", "--run-dir", "runs/x", "--capture", value])
        assert args.capture == value

    def test_rejects_other_values(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--run-dir", "runs/x", "--capture", "maybe"])


class TestLoadtestCommand:
    @pytest.fixture(scope="class")
    def trained_run_dir(self, tmp_path_factory):
        run_dir = tmp_path_factory.mktemp("cli-loadtest") / "run"
        code = main(["train", "--model", "GRU", "--epochs", "1",
                     "--run-dir", str(run_dir)], out=io.StringIO())
        assert code == 0
        return run_dir

    def test_parses_loadtest_options(self):
        args = build_parser().parse_args(
            ["loadtest", "--run-dir", "runs/x", "--workers", "3",
             "--requests", "12", "--streams", "2", "--deadline-ms", "50",
             "--queue-depth", "9", "--check-floor", "floor.json"])
        assert (args.run_dir, args.workers, args.requests, args.streams) \
            == ("runs/x", 3, 12, 2)
        assert (args.deadline_ms, args.queue_depth, args.check_floor) \
            == (50.0, 9, "floor.json")

    def test_serve_config_flags_default_to_persisted(self):
        """Unset flags stay None so the run dir's serve block wins."""
        args = build_parser().parse_args(
            ["loadtest", "--run-dir", "runs/x"])
        assert args.workers is None
        assert args.max_batch_size is None
        assert args.cache_capacity is None
        serve_args = build_parser().parse_args(
            ["serve", "--run-dir", "runs/x"])
        assert serve_args.max_batch_size is None
        assert serve_args.max_wait_ms is None

    def test_loadtest_requires_run_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["loadtest"])

    @pytest.mark.pool
    def test_loadtest_end_to_end_with_floor(self, trained_run_dir,
                                            tmp_path):
        floor_path = tmp_path / "floor.json"
        floor_path.write_text(
            '{"min_observed_workers": 2, "max_errors": 0}')
        out = io.StringIO()
        code = main(["loadtest", "--run-dir", str(trained_run_dir),
                     "--workers", "2", "--max-batch-size", "8",
                     "--requests", "8", "--streams", "2",
                     "--stream-steps", "2", "--concurrency", "4",
                     "--max-seconds", "60", "--out", str(tmp_path),
                     "--check-floor", str(floor_path)], out=out)
        text = out.getvalue()
        assert code == 0, text
        assert "p50 latency" in text
        assert "p99 latency" in text
        assert "throughput" in text
        assert "2 of 2 answered" in text
        assert f"floor {floor_path} holds" in text
        assert len(list(tmp_path.glob("SERVE_*.json"))) == 1

    @pytest.mark.pool
    def test_floor_violation_fails_the_command(self, trained_run_dir,
                                               tmp_path):
        floor_path = tmp_path / "floor.json"
        floor_path.write_text('{"min_throughput_rps": 1e12}')
        out = io.StringIO()
        code = main(["loadtest", "--run-dir", str(trained_run_dir),
                     "--workers", "2", "--requests", "4", "--streams", "0",
                     "--max-seconds", "60", "--no-json",
                     "--check-floor", str(floor_path)], out=out)
        assert code == 1
        assert "FLOOR VIOLATION" in out.getvalue()
