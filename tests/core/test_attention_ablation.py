"""Tests of the uniform-pooling (attention-off) ablation path."""

import numpy as np
import pytest

from repro import nn
from repro.core.elda_net import ELDANet
from repro.core.feature_interaction import FeatureInteractionModule

C, E, D = 5, 4, 2


@pytest.fixture
def embedded(rng):
    return rng.normal(size=(2, 3, C, E))


class TestUniformPooling:
    def test_alpha_uniform_off_diagonal(self, embedded):
        module = FeatureInteractionModule(C, E, D, np.random.default_rng(0),
                                          use_attention=False)
        _, alpha = module(nn.Tensor(embedded), return_attention=True)
        expected = 1.0 / (C - 1)
        off_diag = alpha.data[..., ~np.eye(C, dtype=bool)]
        assert np.allclose(off_diag, expected)
        assert np.allclose(np.diagonal(alpha.data, axis1=-2, axis2=-1), 0.0)

    def test_output_shape_unchanged(self, embedded):
        module = FeatureInteractionModule(C, E, D, np.random.default_rng(0),
                                          use_attention=False)
        assert module(nn.Tensor(embedded)).shape == (2, 3, C * D)

    def test_differs_from_attended_output(self, embedded):
        attended = FeatureInteractionModule(C, E, D, np.random.default_rng(0))
        uniform = FeatureInteractionModule(C, E, D, np.random.default_rng(0),
                                           use_attention=False)
        a = attended(nn.Tensor(embedded)).data
        b = uniform(nn.Tensor(embedded)).data
        assert not np.allclose(a, b)

    def test_gradients_still_flow_to_compress(self, embedded):
        module = FeatureInteractionModule(C, E, D, np.random.default_rng(0),
                                          use_attention=False)
        out = module(nn.Tensor(embedded))
        (out * out).sum().backward()
        assert module.compress.grad is not None

    def test_elda_net_flag(self, rng):
        model = ELDANet(C, np.random.default_rng(0), embedding_size=E,
                        hidden_size=6, compression=D, feature_attention=False)
        values = rng.normal(size=(2, 4, C))
        probs = model(values)
        assert probs.shape == (2,)
