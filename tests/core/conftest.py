"""Core paper-equation tests run under the float64 policy.

These modules verify analytic identities (the paper's Eqs. 1-15,
affineness/attention properties, independent numpy re-derivations) at
1e-9..1e-12 tolerances — that is a statement about the *math*, not the
precision policy, and it only holds in float64.  The float32 compute
plane gets its coverage from tests/nn/test_dtype_policy.py,
tests/train/test_precision_parity.py, and the fused-equivalence float32
lane.
"""

import numpy as np
import pytest

from repro.nn.dtype import autocast


# Module-scoped so it wraps module-scoped model fixtures too (autouse
# fixtures instantiate before non-autouse ones of the same scope).
@pytest.fixture(autouse=True, scope="module")
def float64_policy():
    with autocast(np.float64):
        yield
