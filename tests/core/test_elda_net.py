"""Tests of the assembled ELDA-Net and its ablation variants."""

import numpy as np
import pytest

from repro import nn
from repro.core.elda_net import ELDANet, VARIANT_NAMES, build_variant

C = 7
B, T = 4, 6


@pytest.fixture
def inputs(rng):
    values = rng.normal(size=(B, T, C))
    ever = rng.random((B, C)) > 0.1
    return values, ever


class TestForward:
    def test_probabilities_in_unit_interval(self, inputs):
        model = ELDANet(C, np.random.default_rng(0), embedding_size=6,
                        hidden_size=8, compression=2)
        values, ever = inputs
        probs = model(values, ever_observed=ever)
        assert probs.shape == (B,)
        assert np.all((probs.data > 0) & (probs.data < 1))

    def test_logits_match_forward_through_sigmoid(self, inputs):
        model = ELDANet(C, np.random.default_rng(0), embedding_size=6,
                        hidden_size=8, compression=2)
        values, ever = inputs
        with nn.no_grad():
            probs = model(values, ever_observed=ever).data
            logits = model.logits(values, ever_observed=ever).data
        assert np.allclose(probs, 1 / (1 + np.exp(-logits)))

    def test_attention_dict_keys_full_model(self, inputs):
        model = ELDANet(C, np.random.default_rng(0), embedding_size=6,
                        hidden_size=8, compression=2)
        values, ever = inputs
        _, attention = model(values, ever_observed=ever,
                             return_attention=True)
        assert set(attention) == {"feature", "time"}
        assert attention["feature"].shape == (B, T, C, C)
        assert attention["time"].shape == (B, T - 1)

    def test_forward_batch_uses_dataset_fields(self, tiny_splits):
        model = ELDANet(37, np.random.default_rng(0), embedding_size=4,
                        hidden_size=6, compression=2)
        batch = tiny_splits.train.subset(np.arange(3))
        logits = model.forward_batch(batch)
        assert logits.shape == (3,)

    def test_gradients_reach_every_parameter(self, inputs):
        model = ELDANet(C, np.random.default_rng(0), embedding_size=6,
                        hidden_size=8, compression=2)
        values, ever = inputs
        probs = model(values, ever_observed=np.ones_like(ever))
        probs.sum().backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        # The missing-value table only gets gradients when a feature is
        # never observed; everything else must be reached.
        assert missing in ([], ["embedding.missing_table"])


class TestVariants:
    @pytest.mark.parametrize("name", VARIANT_NAMES)
    def test_all_variants_build_and_run(self, name, inputs):
        model = build_variant(name, C, np.random.default_rng(0),
                              embedding_size=6, hidden_size=8, compression=2)
        values, ever = inputs
        probs = model(values, ever_observed=ever)
        assert probs.shape == (B,)

    def test_t_variant_has_no_feature_module(self):
        model = build_variant("ELDA-Net-T", C, np.random.default_rng(0),
                              hidden_size=8)
        assert not model.use_feature_module
        names = [n for n, _ in model.named_parameters()]
        assert not any(n.startswith("embedding") for n in names)

    def test_f_variants_have_no_time_module(self):
        model = build_variant("ELDA-Net-Fbi", C, np.random.default_rng(0),
                              embedding_size=6, hidden_size=8, compression=2)
        assert not model.use_time_module
        _, attention = model(np.zeros((1, 3, C)), return_attention=True)
        assert "time" not in attention

    def test_fm_variant_uses_fm_embedding(self):
        from repro.core.embedding import FMEmbedding
        model = build_variant("ELDA-Net-Ffm", C, np.random.default_rng(0),
                              embedding_size=6, hidden_size=8, compression=2)
        assert isinstance(model.embedding, FMEmbedding)

    def test_star_variants_set_star(self):
        model = build_variant("ELDA-Net-Fbi*", C, np.random.default_rng(0),
                              embedding_size=6, hidden_size=8, compression=2)
        assert model.embedding.star

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            build_variant("ELDA-Net-Quantum", C, np.random.default_rng(0))

    def test_full_model_has_more_parameters_than_parts(self):
        rng = np.random.default_rng
        full = build_variant("ELDA-Net", C, rng(0), embedding_size=6,
                             hidden_size=8, compression=2)
        t_only = build_variant("ELDA-Net-T", C, rng(0), hidden_size=8)
        assert full.num_parameters() > t_only.num_parameters()


class TestPaperConfiguration:
    def test_default_hyperparameters_match_paper(self):
        """e=24, l=64, d=4, bounds (-3, 3)."""
        model = ELDANet(37, np.random.default_rng(0))
        assert model.embedding.embedding_size == 24
        assert model.embedding.lower == -3.0
        assert model.embedding.upper == 3.0
        assert model.feature_module.compression == 4
        assert model.time_module.hidden_size == 64

    def test_parameter_count_near_paper(self):
        """Paper Table III: ELDA-Net has ~53k parameters."""
        model = ELDANet(37, np.random.default_rng(0))
        assert 35_000 < model.num_parameters() < 75_000
