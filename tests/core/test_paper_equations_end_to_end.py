"""Specification test: full ELDA-Net forward vs. an independent
loop-based implementation of the paper's equations (Eqs. 2-12).

The production model uses vectorized algebraic identities; this test
recomputes one batch entirely with explicit loops and plain numpy and
demands agreement to ~1e-9, pinning the implementation to the paper.
"""

import numpy as np

from repro import nn
from repro.core.elda_net import ELDANet

C, E, D, H = 5, 4, 2, 6
B, T = 2, 5


def sigmoid(x):
    return 1.0 / (1.0 + np.exp(-x))


def reference_forward(model, values, ever_observed):
    """Paper Eqs. 2-12, loops only."""
    emb = model.embedding
    fim = model.feature_module
    tim = model.time_module
    head = model.prediction
    a, b = emb.lower, emb.upper
    va, vb, vm = (emb.table_lower.data, emb.table_upper.data,
                  emb.missing_table.data)
    w_alpha, b_alpha = fim.attn_weight.data, fim.attn_bias.data
    p = fim.compress.data
    cell = tim.gru.cell
    w_beta = tim.attn_weight.data.reshape(-1)
    b_beta = float(tim.attn_bias.data[0])
    w_pred = head.weight.data.reshape(-1)
    b_pred = float(head.bias.data[0])

    outputs = np.empty(B)
    for n in range(B):
        # ---- Bi-directional Embedding Module (Eq. 2) ----
        e = np.empty((T, C, E))
        for t in range(T):
            for i in range(C):
                x = values[n, t, i]
                e[t, i] = (va[i] * (x - a) + vb[i] * (b - x)) / (b - a)
                if not ever_observed[n, i]:
                    e[t, i] = vm[i]

        # ---- Feature-level Interaction Learning (Eqs. 3-6) ----
        x_tilde = np.empty((T, C * D))
        for t in range(T):
            features = []
            for i in range(C):
                logits = np.full(C, -np.inf)
                for j in range(C):
                    if j != i:
                        r_ij = e[t, i] * e[t, j]               # Eq. 3
                        logits[j] = w_alpha[i] @ r_ij + b_alpha[i]  # Eq. 4
                stable = logits - np.nanmax(logits[np.isfinite(logits)])
                exps = np.where(np.isfinite(stable), np.exp(stable), 0.0)
                alpha = exps / exps.sum()                      # Eq. 5
                c_i = sum(alpha[j] * e[t, i] * e[t, j]
                          for j in range(C) if j != i)
                features.append(np.maximum(
                    np.concatenate([e[t, i], c_i]), 0.0) @ p)  # Eq. 6
            x_tilde[t] = np.concatenate(features)

        # ---- GRU (Eq. 7) ----
        h = np.zeros(H)
        states = np.empty((T, H))
        for t in range(T):
            gx = x_tilde[t] @ cell.w_ih.data + cell.b_ih.data
            gh = h @ cell.w_hh.data + cell.b_hh.data
            z = sigmoid(gx[:H] + gh[:H])
            r = sigmoid(gx[H:2 * H] + gh[H:2 * H])
            cand = np.tanh(gx[2 * H:] + r * gh[2 * H:])
            h = z * h + (1 - z) * cand
            states[t] = h

        # ---- Time-level Interaction Learning (Eqs. 8-11) ----
        s = states[:-1] * states[-1]                           # Eq. 8
        logits = s @ w_beta + b_beta                           # Eq. 9
        beta = np.exp(logits - logits.max())
        beta /= beta.sum()                                     # Eq. 10
        g = (beta[:, None] * s).sum(axis=0)                    # Eq. 11
        fused = np.concatenate([states[-1], g])

        # ---- Prediction Module (Eq. 12) ----
        outputs[n] = sigmoid(fused @ w_pred + b_pred)
    return outputs


def test_full_forward_matches_reference(rng):
    model = ELDANet(C, np.random.default_rng(17), embedding_size=E,
                    hidden_size=H, compression=D)
    values = rng.normal(size=(B, T, C))
    ever = np.ones((B, C), dtype=bool)
    ever[0, 2] = False
    with nn.no_grad():
        fast = model(values, ever_observed=ever).data
    slow = reference_forward(model, values, ever)
    assert np.allclose(fast, slow, atol=1e-9), (fast, slow)
