"""Tests of the Feature-level Interaction Learning Module.

The module uses an algebraic identity to avoid materializing the
(B, T, C, C, e) tensor; the reference tests here recompute Eqs. 3-6
naively and check exact agreement.
"""

import numpy as np
import pytest

from repro import nn
from repro.core.feature_interaction import FeatureInteractionModule

B, T, C, E, D = 2, 3, 5, 4, 2


@pytest.fixture
def module():
    return FeatureInteractionModule(C, E, D, np.random.default_rng(5))


@pytest.fixture
def embedded(rng):
    return rng.normal(size=(B, T, C, E))


def naive_forward(module, embedded):
    """Direct implementation of paper Eqs. 3-6 with explicit loops."""
    w = module.attn_weight.data        # (C, E)
    b = module.attn_bias.data          # (C,)
    p = module.compress.data           # (2E, D)
    out = np.zeros((B, T, C * D))
    alphas = np.zeros((B, T, C, C))
    for n in range(B):
        for t in range(T):
            e = embedded[n, t]         # (C, E)
            features = []
            for i in range(C):
                logits = np.full(C, -np.inf)
                for j in range(C):
                    if j == i:
                        continue
                    r_ij = e[i] * e[j]                      # Eq. 3
                    logits[j] = w[i] @ r_ij + b[i]          # Eq. 4
                stable = logits - logits[np.isfinite(logits)].max()
                exps = np.where(np.isfinite(stable), np.exp(stable), 0.0)
                alpha = exps / exps.sum()                   # Eq. 5
                alphas[n, t, i] = alpha
                c_i = sum(alpha[j] * (e[i] * e[j])
                          for j in range(C) if j != i)
                enriched = np.concatenate([e[i], c_i])
                features.append(np.maximum(enriched, 0.0) @ p)  # Eq. 6
            out[n, t] = np.concatenate(features)
    return out, alphas


class TestEquivalenceWithNaive:
    def test_output_matches_naive(self, module, embedded):
        fast = module(nn.Tensor(embedded)).data
        slow, _ = naive_forward(module, embedded)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_attention_matches_naive(self, module, embedded):
        _, alpha = module(nn.Tensor(embedded), return_attention=True)
        _, expected = naive_forward(module, embedded)
        assert np.allclose(alpha.data, expected, atol=1e-10)


class TestAttentionProperties:
    def test_rows_are_distributions(self, module, embedded):
        _, alpha = module(nn.Tensor(embedded), return_attention=True)
        assert np.allclose(alpha.data.sum(axis=-1), 1.0)
        assert (alpha.data >= 0).all()

    def test_diagonal_excluded(self, module, embedded):
        """Eq. 5 sums over j != i: no self-interaction attention."""
        _, alpha = module(nn.Tensor(embedded), return_attention=True)
        diag = np.diagonal(alpha.data, axis1=-2, axis2=-1)
        assert np.all(diag < 1e-12)

    def test_output_shape(self, module, embedded):
        out = module(nn.Tensor(embedded))
        assert out.shape == (B, T, C * D)

    def test_gradients_reach_all_parameters(self, module, embedded):
        out = module(nn.Tensor(embedded))
        (out * out).sum().backward()
        for name, param in module.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"
            assert np.abs(param.grad).max() > 0, f"zero gradient for {name}"

    def test_interaction_symmetry_of_r_not_of_alpha(self, module, rng):
        """r_ij = r_ji, but attention is per-row: α_ij != α_ji in general
        (the paper's 'same interaction, different attention' finding)."""
        embedded = rng.normal(size=(1, 1, C, E))
        _, alpha = module(nn.Tensor(embedded), return_attention=True)
        a = alpha.data[0, 0]
        assert not np.allclose(a, a.T)

    def test_compression_factor_controls_width(self, rng):
        wide = FeatureInteractionModule(C, E, 6, np.random.default_rng(0))
        out = wide(nn.Tensor(rng.normal(size=(1, 2, C, E))))
        assert out.shape == (1, 2, C * 6)
