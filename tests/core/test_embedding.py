"""Tests of the Bi-directional Embedding Module and its FM counterpart."""

import numpy as np
import pytest

from repro import nn
from repro.core.embedding import (BiDirectionalEmbedding, FMEmbedding,
                                  build_embedding)

C, E = 5, 4


@pytest.fixture
def local_rng():
    return np.random.default_rng(11)


class TestBiDirectional:
    def test_eq2_by_hand(self, local_rng):
        """Direct check of paper Eq. 2 against the module output."""
        module = BiDirectionalEmbedding(C, E, local_rng, lower=-3.0, upper=3.0)
        x = local_rng.normal(size=(2, 3, C))
        out = module(nn.Tensor(x)).data
        va, vb = module.table_lower.data, module.table_upper.data
        expected = (va[None, None] * (x[..., None] - (-3.0))
                    + vb[None, None] * (3.0 - x[..., None])) / 6.0
        assert np.allclose(out, expected)

    def test_lower_anchor_selects_upper_table(self, local_rng):
        """At x = a the embedding is exactly V^b (and vice versa)."""
        module = BiDirectionalEmbedding(C, E, local_rng)
        at_lower = module(nn.Tensor(np.full((1, 1, C), -3.0))).data[0, 0]
        at_upper = module(nn.Tensor(np.full((1, 1, C), 3.0))).data[0, 0]
        assert np.allclose(at_lower, module.table_upper.data)
        assert np.allclose(at_upper, module.table_lower.data)

    def test_zero_maps_to_nonzero_vector(self, local_rng):
        """The paper's key fix: standardized zero is informative."""
        module = BiDirectionalEmbedding(C, E, local_rng)
        at_zero = module(nn.Tensor(np.zeros((1, 1, C)))).data
        assert np.abs(at_zero).max() > 1e-3

    def test_continuity_in_value(self, local_rng):
        """Close values embed to close vectors (paper's consecutiveness)."""
        module = BiDirectionalEmbedding(C, E, local_rng)
        a = module(nn.Tensor(np.full((1, 1, C), 0.5))).data
        b = module(nn.Tensor(np.full((1, 1, C), 0.5001))).data
        assert np.abs(a - b).max() < 1e-3

    def test_scale_bounded_inside_range(self, local_rng):
        """Embedding norm is bounded by the anchor tables, not the value."""
        module = BiDirectionalEmbedding(C, E, local_rng)
        norms = []
        for value in np.linspace(-3, 3, 13):
            e = module(nn.Tensor(np.full((1, 1, C), value))).data
            norms.append(np.linalg.norm(e))
        bound = (np.linalg.norm(module.table_lower.data)
                 + np.linalg.norm(module.table_upper.data))
        assert max(norms) <= bound + 1e-9

    def test_invalid_bounds_raise(self, local_rng):
        with pytest.raises(ValueError):
            BiDirectionalEmbedding(C, E, local_rng, lower=3.0, upper=-3.0)

    def test_missing_routing(self, local_rng):
        module = BiDirectionalEmbedding(C, E, local_rng)
        x = np.zeros((2, 3, C))
        ever = np.ones((2, C), dtype=bool)
        ever[0, 2] = False
        out = module(nn.Tensor(x), ever_observed=ever).data
        assert np.allclose(out[0, :, 2], module.missing_table.data[2])
        assert not np.allclose(out[1, :, 2], module.missing_table.data[2])

    def test_star_variant_ones_at_zero(self, local_rng):
        module = BiDirectionalEmbedding(C, E, local_rng, star=True)
        x = np.zeros((1, 1, C))
        x[0, 0, 1] = 0.7
        out = module(nn.Tensor(x)).data
        assert np.allclose(out[0, 0, 0], 1.0)       # zero -> all ones
        assert not np.allclose(out[0, 0, 1], 1.0)   # nonzero -> learned

    def test_gradients_flow_to_both_tables(self, local_rng):
        module = BiDirectionalEmbedding(C, E, local_rng)
        out = module(nn.Tensor(np.full((1, 1, C), 0.5)))
        (out * out).sum().backward()
        assert module.table_lower.grad is not None
        assert module.table_upper.grad is not None


class TestFM:
    def test_linear_in_value(self, local_rng):
        module = FMEmbedding(C, E, local_rng)
        one = module(nn.Tensor(np.ones((1, 1, C)))).data
        two = module(nn.Tensor(np.full((1, 1, C), 2.0))).data
        assert np.allclose(two, 2 * one)

    def test_zero_maps_to_zero_vector(self, local_rng):
        """The FM limitation the paper calls out."""
        module = FMEmbedding(C, E, local_rng)
        assert np.allclose(module(nn.Tensor(np.zeros((1, 1, C)))).data, 0.0)

    def test_opposite_values_opposite_vectors(self, local_rng):
        module = FMEmbedding(C, E, local_rng)
        pos = module(nn.Tensor(np.full((1, 1, C), 1.5))).data
        neg = module(nn.Tensor(np.full((1, 1, C), -1.5))).data
        assert np.allclose(pos, -neg)

    def test_star_variant_rescues_zero(self, local_rng):
        module = FMEmbedding(C, E, local_rng, star=True)
        out = module(nn.Tensor(np.zeros((1, 1, C)))).data
        assert np.allclose(out, 1.0)


class TestFactory:
    @pytest.mark.parametrize("kind,cls,star", [
        ("bi", BiDirectionalEmbedding, False),
        ("bi*", BiDirectionalEmbedding, True),
        ("fm", FMEmbedding, False),
        ("fm*", FMEmbedding, True),
    ])
    def test_builds_each_kind(self, local_rng, kind, cls, star):
        module = build_embedding(kind, C, E, local_rng)
        assert isinstance(module, cls)
        assert module.star == star

    def test_unknown_kind_raises(self, local_rng):
        with pytest.raises(ValueError):
            build_embedding("hologram", C, E, local_rng)
