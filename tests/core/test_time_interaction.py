"""Tests of the Time-level Interaction Learning Module (Eqs. 7-11)."""

import numpy as np
import pytest

from repro import nn
from repro.core.time_interaction import TimeInteractionModule

B, T, IN, H = 3, 6, 4, 5


@pytest.fixture
def module():
    return TimeInteractionModule(IN, H, np.random.default_rng(8))


@pytest.fixture
def sequence(rng):
    return rng.normal(size=(B, T, IN))


def naive_fuse(module, states):
    """Direct implementation of Eqs. 8-11 given the GRU states."""
    w = module.attn_weight.data.reshape(-1)
    b = float(module.attn_bias.data[0])
    fused = np.zeros((states.shape[0], 2 * H))
    betas = np.zeros((states.shape[0], states.shape[1] - 1))
    for n in range(states.shape[0]):
        h = states[n]
        h_T = h[-1]
        s = np.array([h[i] * h_T for i in range(len(h) - 1)])   # Eq. 8
        logits = s @ w + b                                      # Eq. 9
        exps = np.exp(logits - logits.max())
        beta = exps / exps.sum()                                # Eq. 10
        betas[n] = beta
        g = (beta[:, None] * s).sum(axis=0)                     # Eq. 11
        fused[n] = np.concatenate([h_T, g])
    return fused, betas


class TestEquivalenceWithNaive:
    def test_fused_representation_matches(self, module, sequence):
        with nn.no_grad():
            states = module.gru(nn.Tensor(sequence)).data
            fast = module(nn.Tensor(sequence)).data
        slow, _ = naive_fuse(module, states)
        assert np.allclose(fast, slow, atol=1e-10)

    def test_beta_matches(self, module, sequence):
        with nn.no_grad():
            states = module.gru(nn.Tensor(sequence)).data
            _, beta = module(nn.Tensor(sequence), return_attention=True)
        _, expected = naive_fuse(module, states)
        assert np.allclose(beta.data, expected, atol=1e-10)


class TestProperties:
    def test_output_shape(self, module, sequence):
        assert module(nn.Tensor(sequence)).shape == (B, 2 * H)

    def test_beta_is_distribution_over_earlier_steps(self, module, sequence):
        _, beta = module(nn.Tensor(sequence), return_attention=True)
        assert beta.shape == (B, T - 1)
        assert np.allclose(beta.data.sum(axis=1), 1.0)
        assert (beta.data >= 0).all()

    def test_gradients_reach_all_parameters(self, module, sequence):
        out = module(nn.Tensor(sequence))
        (out * out).sum().backward()
        for name, param in module.named_parameters():
            assert param.grad is not None, f"no gradient for {name}"

    def test_first_half_is_last_hidden_state(self, module, sequence):
        with nn.no_grad():
            states = module.gru(nn.Tensor(sequence)).data
            fused = module(nn.Tensor(sequence)).data
        assert np.allclose(fused[:, :H], states[:, -1, :])

    def test_handles_minimum_two_steps(self, module, rng):
        out, beta = module(nn.Tensor(rng.normal(size=(1, 2, IN))),
                           return_attention=True)
        assert out.shape == (1, 2 * H)
        assert np.allclose(beta.data, 1.0)  # single earlier step gets all
