"""Tests of the ELDA framework wrapper (train / predict / alert / persist)."""

import numpy as np
import pytest

from repro.core import ELDA, RiskAlert


@pytest.fixture(scope="module")
def fitted(tiny_splits_module):
    framework = ELDA(task="mortality", seed=0,
                     model_kwargs=dict(embedding_size=6, hidden_size=8,
                                       compression=2),
                     trainer_kwargs=dict(max_epochs=2, patience=2,
                                         batch_size=16))
    framework.fit(tiny_splits_module.train, tiny_splits_module.validation)
    return framework


@pytest.fixture(scope="module")
def tiny_splits_module():
    from repro.data import SyntheticEMRGenerator, train_val_test_split
    admissions = SyntheticEMRGenerator().sample_many(
        60, np.random.default_rng(0))
    return train_val_test_split(admissions, np.random.default_rng(1))


class TestLifecycle:
    def test_fit_records_history(self, fitted):
        assert fitted.history is not None
        assert fitted.history.num_epochs >= 1

    def test_predict_risk_probabilities(self, fitted, tiny_splits_module):
        risks = fitted.predict_risk(tiny_splits_module.test)
        assert risks.shape == (len(tiny_splits_module.test),)
        assert np.all((risks >= 0) & (risks <= 1))

    def test_evaluate_returns_paper_metrics(self, fitted, tiny_splits_module):
        metrics = fitted.evaluate(tiny_splits_module.test)
        assert set(metrics) == {"bce", "auc_roc", "auc_pr"}

    def test_alerts_respect_threshold(self, fitted, tiny_splits_module):
        risks = fitted.predict_risk(tiny_splits_module.test)
        threshold = float(np.median(risks))
        alerts = fitted.alerts(tiny_splits_module.test, threshold=threshold)
        assert all(isinstance(a, RiskAlert) for a in alerts)
        assert all(a.risk >= threshold for a in alerts)
        assert len(alerts) == int((risks >= threshold).sum())

    def test_alert_str_mentions_admission(self):
        alert = RiskAlert(admission_index=7, risk=0.9, threshold=0.5)
        assert "7" in str(alert) and "0.90" in str(alert)

    def test_save_load_round_trip(self, fitted, tiny_splits_module, tmp_path):
        path = tmp_path / "elda.npz"
        fitted.save(path)
        clone = ELDA(task="mortality", seed=99,
                     model_kwargs=dict(embedding_size=6, hidden_size=8,
                                       compression=2))
        clone.load(path)
        original = fitted.predict_risk(tiny_splits_module.test)
        restored = clone.predict_risk(tiny_splits_module.test)
        assert np.allclose(original, restored)

    def test_variant_selection(self):
        framework = ELDA(variant="ELDA-Net-T",
                         model_kwargs=dict(hidden_size=8))
        assert not framework.model.use_feature_module

    def test_interpretation_apis_exist(self, fitted, tiny_splits_module):
        curves = fitted.time_interpretation(tiny_splits_module.test)
        assert set(curves) == {"survivor", "non_survivor"}
        values = tiny_splits_module.test.values[0]
        ever = tiny_splits_module.test.ever_observed[0]
        grid, names = fitted.feature_interpretation(
            values, ever, hour=5, features=("Glucose", "Lactate", "pH"))
        assert grid.shape == (3, 3)
        traces = fitted.interaction_traces(values, ever, "Glucose",
                                           ("Lactate", "pH"))
        assert set(traces) == {"Lactate", "pH"}
