"""Property-based tests of the embedding modules (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.core.embedding import BiDirectionalEmbedding, FMEmbedding

C, E = 4, 3


def _embed(module, value):
    x = np.full((1, 1, C), value)
    return module(nn.Tensor(x)).data[0, 0]


@settings(max_examples=30, deadline=None)
@given(st.floats(-3.0, 3.0), st.floats(-3.0, 3.0), st.integers(0, 1000))
def test_bidirectional_is_affine_in_value(v1, v2, seed):
    """Eq. 2 is affine: e((v1+v2)/2) = (e(v1)+e(v2))/2 exactly."""
    module = BiDirectionalEmbedding(C, E, np.random.default_rng(seed))
    mid = _embed(module, (v1 + v2) / 2.0)
    avg = (_embed(module, v1) + _embed(module, v2)) / 2.0
    assert np.allclose(mid, avg, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(st.floats(-3.0, 3.0), st.integers(0, 1000))
def test_bidirectional_interpolates_anchor_tables(value, seed):
    """Inside [a, b] the embedding is a convex combination of V^a-row and
    V^b-row images, hence bounded by the anchor embeddings."""
    module = BiDirectionalEmbedding(C, E, np.random.default_rng(seed))
    e = _embed(module, value)
    at_lower = _embed(module, module.lower)
    at_upper = _embed(module, module.upper)
    low = np.minimum(at_lower, at_upper) - 1e-12
    high = np.maximum(at_lower, at_upper) + 1e-12
    assert np.all(e >= low) and np.all(e <= high)


@settings(max_examples=30, deadline=None)
@given(st.floats(-5.0, 5.0), st.floats(0.1, 5.0), st.integers(0, 1000))
def test_fm_embedding_homogeneous(value, scale, seed):
    """FM embedding is linear: e(s*v) = s * e(v) — the scale-coupling
    limitation the paper's Section IV-B criticizes."""
    module = FMEmbedding(C, E, np.random.default_rng(seed))
    assert np.allclose(_embed(module, scale * value),
                       scale * _embed(module, value), atol=1e-9)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1000))
def test_missing_routing_overrides_any_value(seed):
    """Whatever the recorded value, a never-observed feature embeds to V^m."""
    rng = np.random.default_rng(seed)
    module = BiDirectionalEmbedding(C, E, np.random.default_rng(seed))
    x = rng.normal(size=(1, 2, C))
    ever = np.ones((1, C), dtype=bool)
    ever[0, 0] = False
    out = module(nn.Tensor(x), ever_observed=ever).data
    assert np.allclose(out[0, :, 0], module.missing_table.data[0])
