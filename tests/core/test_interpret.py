"""Tests of the interpretability extraction utilities."""

import numpy as np
import pytest

from repro.core import (build_variant, cohort_time_attention,
                        extract_attention, feature_attention_at,
                        interaction_trace, modify_feature_to_normal)
from repro.data.schema import NUM_FEATURES, feature_index


@pytest.fixture(scope="module")
def model():
    return build_variant("ELDA-Net", NUM_FEATURES, np.random.default_rng(0),
                         embedding_size=4, hidden_size=6, compression=2)


class TestExtract:
    def test_shapes(self, model, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(6))
        extract = extract_attention(model, sub, batch_size=4)
        steps = sub.num_time_steps
        assert extract.time.shape == (6, steps - 1)
        assert extract.feature.shape == (6, steps, NUM_FEATURES, NUM_FEATURES)

    def test_skip_feature_grid(self, model, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(4))
        extract = extract_attention(model, sub, with_feature=False)
        assert extract.feature is None
        assert extract.time is not None

    def test_time_rows_are_distributions(self, model, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(4))
        extract = extract_attention(model, sub)
        assert np.allclose(extract.time.sum(axis=1), 1.0)

    def test_time_only_variant_raises_in_cohort_curves(self, tiny_dataset):
        fbi = build_variant("ELDA-Net-Fbi", NUM_FEATURES,
                            np.random.default_rng(0), embedding_size=4,
                            hidden_size=6, compression=2)
        with pytest.raises(ValueError):
            cohort_time_attention(fbi, tiny_dataset.subset(np.arange(4)))


class TestCohortAggregation:
    def test_groups_and_shapes(self, model, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(12))
        curves = cohort_time_attention(model, sub)
        steps = sub.num_time_steps
        for group in ("survivor", "non_survivor"):
            assert curves[group]["mean"].shape == (steps - 1,)
        total = (len(curves["survivor"]["per_patient"])
                 + len(curves["non_survivor"]["per_patient"]))
        assert total == 12

    def test_group_split_matches_labels(self, model, tiny_dataset):
        sub = tiny_dataset.subset(np.arange(12))
        curves = cohort_time_attention(model, sub)
        assert len(curves["non_survivor"]["per_patient"]) == int(
            sub.mortality.sum())


class TestPerPatient:
    def test_feature_grid_row_normalized(self, model, tiny_dataset):
        values = tiny_dataset.values[0]
        ever = tiny_dataset.ever_observed[0]
        grid, names = feature_attention_at(
            model, values, ever, hour=10,
            features=("Glucose", "Lactate", "pH", "HCT"))
        assert grid.shape == (4, 4)
        assert np.allclose(grid.sum(axis=1), 1.0)
        assert np.all(np.diag(grid) == 0.0)

    def test_full_grid_when_no_subset(self, model, tiny_dataset):
        grid, names = feature_attention_at(
            model, tiny_dataset.values[0], tiny_dataset.ever_observed[0],
            hour=0)
        assert grid.shape == (NUM_FEATURES, NUM_FEATURES)
        assert len(names) == NUM_FEATURES

    def test_trace_lengths(self, model, tiny_dataset):
        traces = interaction_trace(model, tiny_dataset.values[0],
                                   tiny_dataset.ever_observed[0],
                                   "Glucose", ("Lactate", "WBC"))
        steps = tiny_dataset.num_time_steps
        assert set(traces) == {"Lactate", "WBC"}
        assert all(t.shape == (steps,) for t in traces.values())


class TestModification:
    def test_sets_feature_to_zero(self, tiny_dataset):
        modified = modify_feature_to_normal(tiny_dataset.values[0], "Lactate")
        assert np.all(modified[:, feature_index("Lactate")] == 0.0)

    def test_other_features_untouched(self, tiny_dataset):
        original = tiny_dataset.values[0]
        modified = modify_feature_to_normal(original, "Lactate")
        col = feature_index("Lactate")
        untouched = np.delete(modified, col, axis=1)
        expected = np.delete(original, col, axis=1)
        assert np.array_equal(untouched, expected)

    def test_does_not_mutate_input(self, tiny_dataset):
        original = tiny_dataset.values[0].copy()
        modify_feature_to_normal(tiny_dataset.values[0], "pH")
        assert np.array_equal(tiny_dataset.values[0], original)
