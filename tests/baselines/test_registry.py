"""Tests of the model registry."""

import numpy as np
import pytest

from repro.baselines import (ALL_MODEL_NAMES, BASELINE_NAMES, MODEL_ALIASES,
                             UnknownModelError, build_model, canonical_name)
from repro.data import NUM_FEATURES

SMALL_KWARGS = {
    "LR": {},
    "FM": dict(embedding_size=4),
    "AFM": dict(embedding_size=4, attention_size=3),
    "SAnD": dict(model_size=8, num_heads=2, num_blocks=1, ffn_size=8,
                 interpolation=4),
    "GRU": dict(hidden_size=6),
    "RETAIN": dict(embedding_size=6, alpha_hidden=4, beta_hidden=4),
    "Dipole_l": dict(hidden_size=4),
    "Dipole_g": dict(hidden_size=4),
    "Dipole_c": dict(hidden_size=4, attention_size=4),
    "StageNet": dict(hidden_size=6, conv_channels=6, kernel_size=3),
    "GRU-D": dict(hidden_size=6),
    "ConCare": dict(feature_hidden=4, num_heads=2),
    "ELDA-Net": dict(embedding_size=4, hidden_size=6, compression=2),
    "ELDA-Net-T": dict(hidden_size=6),
    "ELDA-Net-Fbi": dict(embedding_size=4, hidden_size=6, compression=2),
    "ELDA-Net-Fbi*": dict(embedding_size=4, hidden_size=6, compression=2),
    "ELDA-Net-Ffm": dict(embedding_size=4, hidden_size=6, compression=2),
    "ELDA-Net-Ffm*": dict(embedding_size=4, hidden_size=6, compression=2),
}


class TestRegistry:
    def test_twelve_baselines(self):
        assert len(BASELINE_NAMES) == 12

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_every_model_builds_and_predicts(self, name, tiny_dataset):
        model = build_model(name, NUM_FEATURES, np.random.default_rng(0),
                            **SMALL_KWARGS[name])
        batch = tiny_dataset.subset(np.arange(3))
        logits = model.forward_batch(batch)
        assert logits.shape == (3,)
        assert np.all(np.isfinite(logits.data))

    def test_case_insensitive(self):
        model = build_model("gru-d", NUM_FEATURES, np.random.default_rng(0),
                            hidden_size=4)
        from repro.baselines import GRUD
        assert isinstance(model, GRUD)

    @pytest.mark.parametrize("name", ALL_MODEL_NAMES)
    def test_every_name_builds_in_any_case(self, name):
        for spelling in (name.lower(), name.upper()):
            model = build_model(spelling, NUM_FEATURES,
                                np.random.default_rng(0),
                                **SMALL_KWARGS[name])
            assert model.spec.name == spelling

    def test_unknown_model_raises(self):
        with pytest.raises(ValueError, match="unknown model"):
            build_model("AlphaFold", NUM_FEATURES, np.random.default_rng(0))

    def test_unknown_model_is_a_helpful_keyerror(self):
        """Failed lookups raise KeyError listing the valid names."""
        with pytest.raises(KeyError) as excinfo:
            build_model("AlphaFold", NUM_FEATURES, np.random.default_rng(0))
        assert isinstance(excinfo.value, UnknownModelError)
        message = str(excinfo.value)
        assert "'AlphaFold'" in message
        for name in ("GRU", "ELDA-Net", "ConCare"):
            assert name in message

    def test_unknown_elda_variant_raises_the_same_error(self):
        with pytest.raises(UnknownModelError, match="unknown model"):
            build_model("ELDA-Net-Quantum", NUM_FEATURES,
                        np.random.default_rng(0))


class TestAliases:
    def test_alias_table_targets_are_canonical(self):
        for alias, target in MODEL_ALIASES.items():
            assert alias != target
            assert canonical_name(target) == target

    @pytest.mark.parametrize("alias", sorted(MODEL_ALIASES))
    def test_every_alias_builds_the_canonical_model(self, alias):
        canonical = MODEL_ALIASES[alias]
        a = build_model(alias, NUM_FEATURES, np.random.default_rng(2))
        b = build_model(canonical, NUM_FEATURES, np.random.default_rng(2))
        assert type(a) is type(b)

    def test_grud_spellings_collapse_to_one_builder(self):
        """The historical duplicate 'grud' entry is now an alias."""
        assert canonical_name("grud") == "gru-d"
        assert canonical_name("GRU_D") == "gru-d"
        assert canonical_name("GRU-D") == "gru-d"

    def test_canonical_name_rejects_unknowns(self):
        with pytest.raises(UnknownModelError):
            canonical_name("transformer-xl")

    def test_deterministic_given_seed(self, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(2))
        a = build_model("GRU", NUM_FEATURES, np.random.default_rng(7),
                        hidden_size=4)
        b = build_model("GRU", NUM_FEATURES, np.random.default_rng(7),
                        hidden_size=4)
        assert np.allclose(a.forward_batch(batch).data,
                           b.forward_batch(batch).data)
