"""Tests of the SAnD baseline and its dense interpolation."""

import numpy as np

from repro.baselines import SAnD
from repro.baselines.sand import dense_interpolation_weights
from repro.data import NUM_FEATURES


class TestDenseInterpolation:
    def test_shape(self):
        assert dense_interpolation_weights(48, 12).shape == (12, 48)

    def test_weights_nonnegative_and_bounded(self):
        w = dense_interpolation_weights(48, 12)
        assert np.all(w >= 0)
        assert np.all(w <= 1)

    def test_triangular_structure(self):
        """Pseudo-timestamp m attends most to t ≈ m·T/M."""
        w = dense_interpolation_weights(48, 4)
        peaks = w.argmax(axis=1)
        assert list(peaks) == sorted(peaks)


class TestSAnD:
    def test_logits_shape(self, tiny_dataset):
        model = SAnD(NUM_FEATURES, np.random.default_rng(0), model_size=8,
                     num_heads=2, num_blocks=1, ffn_size=16, interpolation=4)
        batch = tiny_dataset.subset(np.arange(4))
        assert model.forward_batch(batch).shape == (4,)

    def test_causal_blocks(self):
        model = SAnD(NUM_FEATURES, np.random.default_rng(0), model_size=8,
                     num_heads=2, num_blocks=2, ffn_size=16, interpolation=4)
        assert all(block.attention.causal for block in model.blocks)

    def test_gradients_flow(self, tiny_dataset):
        model = SAnD(NUM_FEATURES, np.random.default_rng(0), model_size=8,
                     num_heads=2, num_blocks=1, ffn_size=16, interpolation=4)
        batch = tiny_dataset.subset(np.arange(2))
        model.forward_batch(batch).sum().backward()
        assert all(p.grad is not None for p in model.parameters())

    def test_interpolation_cache_reused(self, tiny_dataset):
        model = SAnD(NUM_FEATURES, np.random.default_rng(0), model_size=8,
                     num_heads=2, num_blocks=1, ffn_size=16, interpolation=4)
        batch = tiny_dataset.subset(np.arange(2))
        model.forward_batch(batch)
        first = model._interp_cache[batch.num_time_steps]
        model.forward_batch(batch)
        assert model._interp_cache[batch.num_time_steps] is first
