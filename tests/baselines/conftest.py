"""Baseline-model tests run under the float64 policy.

Several of these files pin exact equivalences (vectorized per-feature
GRU vs loop, the FM linear-time identity) at 1e-10 tolerances that only
hold in float64.  Float32 coverage of the same models comes from the
precision-parity and bench lanes.
"""

import numpy as np
import pytest

from repro.nn.dtype import autocast


# Module-scoped so it wraps module-scoped model fixtures too (autouse
# fixtures instantiate before non-autouse ones of the same scope).
@pytest.fixture(autouse=True, scope="module")
def float64_policy():
    with autocast(np.float64):
        yield
