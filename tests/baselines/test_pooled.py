"""Tests of LR, FM, and AFM, including the FM linear-time identity."""

import numpy as np

from repro.baselines.pooled import (AttentionalFM, FactorizationMachine,
                                    LogisticRegression, pooled_input)
from repro.data import NUM_FEATURES


class TestPooledInput:
    def test_is_time_mean(self, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(5))
        pooled = pooled_input(batch)
        assert pooled.shape == (5, NUM_FEATURES)
        assert np.allclose(pooled.data, batch.values.mean(axis=1))


class TestLogisticRegression:
    def test_logit_shape(self, tiny_dataset):
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        logits = model.forward_batch(tiny_dataset.subset(np.arange(4)))
        assert logits.shape == (4,)

    def test_parameter_count_matches_paper(self):
        """Table III reports 38 parameters for LR (37 weights + bias)."""
        model = LogisticRegression(NUM_FEATURES, np.random.default_rng(0))
        assert model.num_parameters() == 38


class TestFactorizationMachine:
    def test_identity_matches_naive_pairwise_sum(self, rng):
        """The O(C·e) trick must equal the explicit double loop of Eq. 1."""
        model = FactorizationMachine(6, np.random.default_rng(1),
                                     embedding_size=3)
        x = rng.normal(size=6)

        class FakeBatch:
            values = x.reshape(1, 1, 6)

        logit = model.forward_batch(FakeBatch()).data[0]

        v = model.factors.data
        naive = float(model.bias.data[0])
        naive += float(x @ model.linear.data.reshape(-1))
        for i in range(6):
            for j in range(i + 1, 6):
                naive += float(v[i] @ v[j]) * x[i] * x[j]
        assert np.isclose(logit, naive, atol=1e-10)

    def test_parameter_count_near_paper(self):
        """Table III reports 630 parameters for FM."""
        model = FactorizationMachine(NUM_FEATURES, np.random.default_rng(0))
        assert model.num_parameters() == 1 + 37 + 37 * 16  # = 630

    def test_gradients_flow(self, tiny_dataset):
        model = FactorizationMachine(NUM_FEATURES, np.random.default_rng(0))
        logits = model.forward_batch(tiny_dataset.subset(np.arange(4)))
        (logits * logits).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestAttentionalFM:
    def test_logit_shape(self, tiny_dataset):
        model = AttentionalFM(NUM_FEATURES, np.random.default_rng(0))
        logits = model.forward_batch(tiny_dataset.subset(np.arange(3)))
        assert logits.shape == (3,)

    def test_pair_count(self):
        model = AttentionalFM(8, np.random.default_rng(0))
        assert len(model._rows) == 8 * 7 // 2

    def test_attention_discriminates_pairs(self, tiny_dataset, rng):
        """AFM's whole point: pair weights are not uniform after init on
        real inputs (the attention MLP breaks symmetry)."""
        model = AttentionalFM(NUM_FEATURES, np.random.default_rng(3))
        batch = tiny_dataset.subset(np.arange(2))
        x = pooled_input(batch)
        scaled = x.reshape(-1, NUM_FEATURES, 1) * model.factors
        left = scaled[:, model._rows, :]
        right = scaled[:, model._cols, :]
        products = left * right
        from repro.nn import ops
        hidden = ops.relu(ops.matmul(products, model.attn_w) + model.attn_b)
        weights = ops.softmax(ops.matmul(hidden, model.attn_h), axis=1).data
        spread = weights.max() - weights.min()
        assert spread > 1e-6

    def test_more_parameters_than_fm(self):
        fm = FactorizationMachine(NUM_FEATURES, np.random.default_rng(0))
        afm = AttentionalFM(NUM_FEATURES, np.random.default_rng(0))
        assert afm.num_parameters() > fm.num_parameters()
