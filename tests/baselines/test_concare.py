"""Tests of ConCare, including the vectorized per-feature GRU equivalence."""

import numpy as np

from repro import nn
from repro.baselines import ConCare, PerFeatureGRU
from repro.data import NUM_FEATURES
from repro.nn.layers import GRUCell


class TestPerFeatureGRU:
    def test_output_shape(self, rng):
        encoder = PerFeatureGRU(6, 4, np.random.default_rng(0))
        out = encoder(nn.Tensor(rng.normal(size=(3, 5, 6))))
        assert out.shape == (3, 6, 4)

    def test_matches_independent_gru_cells(self, rng):
        """The stacked recurrence must equal C separate single-input GRUs."""
        num_features, hidden = 3, 4
        encoder = PerFeatureGRU(num_features, hidden,
                                np.random.default_rng(1))
        x = rng.normal(size=(2, 6, num_features))
        fast = encoder(nn.Tensor(x)).data

        for c in range(num_features):
            cell = GRUCell(1, hidden, np.random.default_rng(0))
            cell.w_ih.data[...] = encoder.w_ih.data[c]
            cell.w_hh.data[...] = encoder.w_hh.data[c]
            cell.b_ih.data[...] = encoder.bias.data[c]
            cell.b_hh.data[...] = 0.0
            h = nn.Tensor(np.zeros((2, hidden)))
            with nn.no_grad():
                for t in range(6):
                    h = cell(nn.Tensor(x[:, t, c:c + 1]), h)
            assert np.allclose(fast[:, c, :], h.data, atol=1e-10), \
                f"feature {c} diverges"

    def test_features_processed_independently(self, rng):
        """Perturbing feature 0's series must not change feature 1's summary."""
        encoder = PerFeatureGRU(2, 3, np.random.default_rng(2))
        x = rng.normal(size=(1, 5, 2))
        base = encoder(nn.Tensor(x)).data
        x_perturbed = x.copy()
        x_perturbed[:, :, 0] += 10.0
        perturbed = encoder(nn.Tensor(x_perturbed)).data
        assert np.allclose(base[:, 1, :], perturbed[:, 1, :])
        assert not np.allclose(base[:, 0, :], perturbed[:, 0, :])

    def test_gradients_flow(self, rng):
        encoder = PerFeatureGRU(3, 4, np.random.default_rng(3))
        out = encoder(nn.Tensor(rng.normal(size=(2, 4, 3))))
        (out * out).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())


class TestConCare:
    def test_logits_shape(self, tiny_dataset):
        model = ConCare(NUM_FEATURES, np.random.default_rng(0),
                        feature_hidden=4, num_heads=2)
        batch = tiny_dataset.subset(np.arange(3))
        assert model.forward_batch(batch).shape == (3,)

    def test_largest_baseline(self):
        """Table III: ConCare has the most parameters among baselines."""
        from repro.baselines import BASELINE_NAMES, build_model
        counts = {}
        for name in BASELINE_NAMES:
            model = build_model(name, NUM_FEATURES, np.random.default_rng(0))
            counts[name] = model.num_parameters()
        assert max(counts, key=counts.get) == "ConCare"
