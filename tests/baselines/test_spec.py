"""ModelSpec: the serializable round-trippable model identity."""

import json

import numpy as np
import pytest

from repro.baselines import ModelSpec, build_model
from repro.data import NUM_FEATURES


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = ModelSpec("GRU-D", NUM_FEATURES, {"hidden_size": 6})
        assert ModelSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = ModelSpec("ELDA-Net", NUM_FEATURES,
                         {"embedding_size": 4, "hidden_size": 6,
                          "compression": 2})
        assert ModelSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) \
            == spec

    def test_hyperparameters_default_empty(self):
        payload = {"name": "LR", "num_features": NUM_FEATURES}
        assert ModelSpec.from_dict(payload).hyperparameters == {}


class TestBuild:
    def test_build_equals_build_model(self, tiny_dataset):
        batch = tiny_dataset.subset(np.arange(3))
        spec = ModelSpec("GRU", NUM_FEATURES, {"hidden_size": 6})
        by_spec = spec.build(rng=np.random.default_rng(3))
        by_name = build_model("GRU", NUM_FEATURES, np.random.default_rng(3),
                              hidden_size=6)
        np.testing.assert_array_equal(by_spec.forward_batch(batch).data,
                                      by_name.forward_batch(batch).data)

    def test_build_model_attaches_the_spec(self):
        model = build_model("RETAIN", NUM_FEATURES, np.random.default_rng(0),
                            embedding_size=6, alpha_hidden=4, beta_hidden=4)
        assert model.spec == ModelSpec(
            "RETAIN", NUM_FEATURES,
            {"embedding_size": 6, "alpha_hidden": 4, "beta_hidden": 4})

    def test_build_model_accepts_a_spec_directly(self, tiny_dataset):
        spec = ModelSpec("LR", NUM_FEATURES)
        model = build_model(spec, rng=np.random.default_rng(0))
        assert model.spec is spec
        assert model.forward_batch(
            tiny_dataset.subset(np.arange(2))).data.shape == (2,)

    def test_spec_plus_kwargs_rejected(self):
        with pytest.raises(TypeError, match="inside the ModelSpec"):
            build_model(ModelSpec("GRU", NUM_FEATURES), hidden_size=4)

    def test_name_without_num_features_rejected(self):
        with pytest.raises(TypeError, match="num_features"):
            build_model("GRU")

    def test_spec_is_frozen(self):
        spec = ModelSpec("GRU", NUM_FEATURES)
        with pytest.raises(AttributeError):
            spec.name = "LR"
