"""Tests of GRU, RETAIN, Dipole, StageNet, and GRU-D baselines."""

import numpy as np
import pytest

from repro import nn
from repro.baselines import (Dipole, GRUClassifier, GRUD, RETAIN, StageNet)
from repro.data import NUM_FEATURES


@pytest.fixture
def batch(tiny_dataset):
    return tiny_dataset.subset(np.arange(5))


class TestGRUClassifier:
    def test_logits_shape(self, batch):
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0),
                              hidden_size=8)
        assert model.forward_batch(batch).shape == (5,)

    def test_paper_parameter_count(self):
        """Table III: ~20k parameters at hidden size 64."""
        model = GRUClassifier(NUM_FEATURES, np.random.default_rng(0))
        assert 18_000 < model.num_parameters() < 22_000


class TestRETAIN:
    def test_logits_shape(self, batch):
        model = RETAIN(NUM_FEATURES, np.random.default_rng(0),
                       embedding_size=8, alpha_hidden=6, beta_hidden=6)
        assert model.forward_batch(batch).shape == (5,)

    def test_visit_attention_is_distribution(self, batch):
        model = RETAIN(NUM_FEATURES, np.random.default_rng(0),
                       embedding_size=8, alpha_hidden=6, beta_hidden=6)
        _, alpha = model.forward(nn.Tensor(batch.values),
                                 return_attention=True)
        assert alpha.shape == (5, batch.num_time_steps)
        assert np.allclose(alpha.data.sum(axis=1), 1.0)

    def test_gradients_flow(self, batch):
        model = RETAIN(NUM_FEATURES, np.random.default_rng(0),
                       embedding_size=8, alpha_hidden=6, beta_hidden=6)
        model.forward_batch(batch).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestDipole:
    @pytest.mark.parametrize("variant", ["location", "general", "concat"])
    def test_variants_run(self, batch, variant):
        model = Dipole(NUM_FEATURES, np.random.default_rng(0),
                       variant=variant, hidden_size=6, attention_size=4)
        assert model.forward_batch(batch).shape == (5,)

    def test_unknown_variant_raises(self):
        with pytest.raises(ValueError):
            Dipole(NUM_FEATURES, np.random.default_rng(0), variant="spiral")

    def test_attention_over_earlier_steps(self, batch):
        model = Dipole(NUM_FEATURES, np.random.default_rng(0),
                       variant="concat", hidden_size=6)
        _, weights = model.forward(nn.Tensor(batch.values),
                                   return_attention=True)
        assert weights.shape == (5, batch.num_time_steps - 1)
        assert np.allclose(weights.data.sum(axis=1), 1.0)

    def test_variants_have_different_parameter_counts(self):
        rng = np.random.default_rng
        counts = {v: Dipole(NUM_FEATURES, rng(0), variant=v).num_parameters()
                  for v in ("location", "general", "concat")}
        assert counts["location"] < counts["general"]
        assert counts["location"] < counts["concat"]


class TestStageNet:
    def test_logits_shape(self, batch):
        model = StageNet(NUM_FEATURES, np.random.default_rng(0),
                         hidden_size=8, conv_channels=8, kernel_size=3)
        assert model.forward_batch(batch).shape == (5,)

    def test_gradients_flow(self, batch):
        model = StageNet(NUM_FEATURES, np.random.default_rng(0),
                         hidden_size=8, conv_channels=8, kernel_size=3)
        model.forward_batch(batch).sum().backward()
        assert all(p.grad is not None for p in model.parameters())


class TestGRUD:
    def test_logits_shape(self, batch):
        model = GRUD(NUM_FEATURES, np.random.default_rng(0), hidden_size=8)
        assert model.forward_batch(batch).shape == (5,)

    def test_input_decay_shrinks_stale_values(self):
        """γ_x = exp(-relu(w δ)): old observations decay toward the mean."""
        model = GRUD(NUM_FEATURES, np.random.default_rng(0), hidden_size=8)
        w = np.abs(model.input_decay.data)
        fresh = np.exp(-np.maximum(0.0, w * 1.0))
        stale = np.exp(-np.maximum(0.0, w * 20.0))
        assert np.all(stale <= fresh)

    def test_uses_mask_and_deltas(self, tiny_dataset):
        """Changing only the mask/deltas must change the prediction."""
        model = GRUD(NUM_FEATURES, np.random.default_rng(0), hidden_size=8)
        batch = tiny_dataset.subset(np.arange(2))
        base = model.forward_batch(batch).data.copy()

        altered = tiny_dataset.subset(np.arange(2))
        altered.mask = np.zeros_like(altered.mask)
        altered.deltas = np.full_like(altered.deltas, 10.0)
        changed = model.forward_batch(altered).data
        assert not np.allclose(base, changed)

    def test_gradients_flow(self, batch):
        model = GRUD(NUM_FEATURES, np.random.default_rng(0), hidden_size=8)
        model.forward_batch(batch).sum().backward()
        assert all(p.grad is not None for p in model.parameters())
