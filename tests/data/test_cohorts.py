"""Tests of the cohort profiles (PhysioNet2012 / MIMIC-III stand-ins)."""

import numpy as np
import pytest

from repro.data import (MIMIC_III, PHYSIONET2012, PROFILES, load_cohort,
                        scale_factor)


class TestScaleFactor:
    def test_known_scales(self):
        assert scale_factor("paper") == 1.0
        assert scale_factor("small") < scale_factor("medium") < 1.0

    def test_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_factor() == scale_factor("small")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "medium")
        assert scale_factor() == scale_factor("medium")

    def test_unknown_scale_raises(self):
        with pytest.raises(ValueError):
            scale_factor("galactic")


class TestProfiles:
    def test_both_cohorts_registered(self):
        assert set(PROFILES) == {"physionet2012", "mimic3"}

    def test_paper_sizes(self):
        assert PHYSIONET2012.paper_admissions == 12000
        assert MIMIC_III.paper_admissions == 21139

    def test_admission_count_scales(self):
        small = PHYSIONET2012.admissions(scale="small",
                                         rng=np.random.default_rng(0))
        assert len(small) == max(120, int(round(12000 * scale_factor("small"))))


class TestLoadCohort:
    def test_returns_three_splits(self):
        splits = load_cohort("physionet2012", scale="small")
        assert len(splits.train) > len(splits.validation)
        assert len(splits.validation) == len(splits.test)

    def test_name_aliases(self):
        for alias in ("mimic3", "MIMIC-III", "mimic"):
            assert load_cohort(alias, scale="small") is not None

    def test_unknown_cohort_raises(self):
        with pytest.raises(ValueError):
            load_cohort("eicu")

    def test_deterministic_given_seed(self):
        a = load_cohort("physionet2012", scale="small", seed=3)
        b = load_cohort("physionet2012", scale="small", seed=3)
        assert np.array_equal(a.train.values, b.train.values)

    def test_different_seeds_differ(self):
        a = load_cohort("physionet2012", scale="small", seed=3)
        b = load_cohort("physionet2012", scale="small", seed=4)
        assert not np.array_equal(a.train.values, b.train.values)

    def test_cohorts_differ(self):
        phys = load_cohort("physionet2012", scale="small")
        mimic = load_cohort("mimic3", scale="small")
        assert len(mimic.train) > len(phys.train)


class TestSplitFractions:
    def test_custom_fractions(self):
        import numpy as np
        splits = load_cohort("physionet2012", scale="small",
                             fractions=(0.5, 0.1, 0.4))
        total = (len(splits.train) + len(splits.validation)
                 + len(splits.test))
        assert abs(len(splits.train) / total - 0.5) < 0.02
        assert abs(len(splits.test) / total - 0.4) < 0.02
