"""Tests of the admission generator and the Patient A case study."""

import numpy as np
import pytest

from repro.data import (NUM_FEATURES, NUM_TIME_STEPS, SyntheticEMRGenerator,
                        feature_index, make_patient_a)


@pytest.fixture(scope="module")
def pool():
    generator = SyntheticEMRGenerator()
    return generator.sample_many(300, np.random.default_rng(0))


class TestAdmissionShape:
    def test_values_shape(self, pool):
        assert all(a.values.shape == (NUM_TIME_STEPS, NUM_FEATURES)
                   for a in pool)

    def test_mask_consistent_with_nans(self, pool):
        for adm in pool[:20]:
            assert np.array_equal(~np.isnan(adm.values), adm.mask)

    def test_labels_binary(self, pool):
        assert {a.mortality for a in pool} <= {0, 1}
        assert {a.long_stay for a in pool} <= {0, 1}

    def test_archetypes_from_library(self, pool):
        from repro.data import ARCHETYPES
        names = {a.name for a in ARCHETYPES}
        assert {a.archetype for a in pool} <= names

    def test_observed_values_within_physical_bounds(self, pool):
        from repro.data.schema import FEATURES
        lows = np.array([s.low for s in FEATURES])
        highs = np.array([s.high for s in FEATURES])
        for adm in pool[:20]:
            observed = adm.values[adm.mask.any(axis=1)]
            with np.errstate(invalid="ignore"):
                ok = (np.isnan(observed) | ((observed >= lows)
                                            & (observed <= highs)))
            assert ok.all()

    def test_mechvent_is_binary_flag(self, pool):
        col = feature_index("MechVent")
        for adm in pool[:20]:
            observed = adm.values[:, col][adm.mask[:, col]]
            assert np.isin(observed, (0.0, 1.0)).all()


class TestLabelCausality:
    """Labels must track the latent process the way the paper's tasks do."""

    def test_mortality_rate_near_paper(self, pool):
        rate = np.mean([a.mortality for a in pool])
        assert 0.05 < rate < 0.30  # paper: ~14%

    def test_long_stay_majority_class(self, pool):
        rate = np.mean([a.long_stay for a in pool])
        assert 0.5 < rate < 0.8  # paper: ~65%

    def test_non_survivors_sicker(self, pool):
        dead = [a.severity.mean() for a in pool if a.mortality == 1]
        alive = [a.severity.mean() for a in pool if a.mortality == 0]
        assert np.mean(dead) > np.mean(alive)

    def test_late_events_overrepresented_in_deaths(self, pool):
        dead_events = np.mean([a.onset_hour is not None
                               for a in pool if a.mortality == 1])
        alive_events = np.mean([a.onset_hour is not None
                                for a in pool if a.mortality == 0])
        assert dead_events > alive_events

    def test_archetype_signature_visible_in_values(self):
        """DLA admissions must show elevated Glucose AND Lactate."""
        generator = SyntheticEMRGenerator()
        rng = np.random.default_rng(42)
        dla_glucose, stable_glucose = [], []
        pool = generator.sample_many(400, rng)
        g, l = feature_index("Glucose"), feature_index("Lactate")
        for adm in pool:
            glucose = np.nanmean(adm.values[:, g]) if adm.mask[:, g].any() else np.nan
            if adm.archetype == "dm_dla" and not np.isnan(glucose):
                dla_glucose.append(glucose)
            elif adm.archetype == "stable" and not np.isnan(glucose):
                stable_glucose.append(glucose)
        assert np.mean(dla_glucose) > np.mean(stable_glucose) + 30.0

    def test_mortality_offset_lowers_rate(self):
        rng1, rng2 = np.random.default_rng(0), np.random.default_rng(0)
        base = SyntheticEMRGenerator(mortality_offset=0.0)
        shifted = SyntheticEMRGenerator(mortality_offset=-3.0)
        rate_base = np.mean([a.mortality
                             for a in base.sample_many(300, rng1)])
        rate_shift = np.mean([a.mortality
                              for a in shifted.sample_many(300, rng2)])
        assert rate_shift < rate_base


class TestPatientA:
    def test_is_dla(self):
        assert make_patient_a().archetype == "dm_dla"

    def test_deterministic(self):
        a, b = make_patient_a(), make_patient_a()
        assert np.array_equal(a.mask, b.mask)
        assert np.allclose(np.nan_to_num(a.values), np.nan_to_num(b.values))

    def test_glucose_narrative(self):
        """Glucose calm early, surging after hour 13, controlled by ~40."""
        adm = make_patient_a()
        glucose = adm.values[:, feature_index("Glucose")]
        assert np.nanmean(glucose[:12]) < 160.0
        assert np.nanmax(glucose[16:30]) > 200.0
        assert np.nanmean(glucose[42:]) < np.nanmax(glucose[16:30]) - 40.0

    def test_dla_partners_move_during_crisis(self):
        adm = make_patient_a()
        ph = adm.values[:, feature_index("pH")]
        lactate = adm.values[:, feature_index("Lactate")]
        assert np.nanmean(ph[18:26]) < np.nanmean(ph[:10])
        assert np.nanmean(lactate[18:26]) > np.nanmean(lactate[:10])

    def test_case_study_features_observed(self):
        adm = make_patient_a()
        for name in ("Glucose", "Lactate", "pH", "HCT", "WBC"):
            assert adm.mask[:, feature_index(name)].all()

    def test_onset_hour_is_13(self):
        assert make_patient_a().onset_hour == 13
