"""Tests of cleaning, standardization, imputation, and deltas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (NUM_FEATURES, Standardizer, clean_values, impute,
                        observation_deltas)
from repro.data.schema import FEATURES, feature_index


class TestCleaning:
    def test_out_of_range_becomes_nan(self):
        values = np.full((1, 2, NUM_FEATURES), np.nan)
        ph = feature_index("pH")
        values[0, 0, ph] = -1.0    # negative pH: recording error
        values[0, 1, ph] = 7.4
        cleaned = clean_values(values)
        assert np.isnan(cleaned[0, 0, ph])
        assert cleaned[0, 1, ph] == 7.4

    def test_preserves_valid_values(self):
        values = np.full((1, 1, NUM_FEATURES),
                         [spec.mean for spec in FEATURES])
        cleaned = clean_values(values)
        assert np.array_equal(cleaned, values)

    def test_does_not_mutate_input(self):
        values = np.full((1, 1, NUM_FEATURES), -9999.0)
        clean_values(values)
        assert np.all(values == -9999.0)


class TestStandardizer:
    def test_zero_mean_unit_std_on_fit_data(self):
        rng = np.random.default_rng(0)
        values = rng.normal(5.0, 2.0, size=(50, 48, NUM_FEATURES))
        std = Standardizer().fit(values)
        out = std.transform(values)
        flat = out.reshape(-1, NUM_FEATURES)
        assert np.allclose(flat.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(flat.std(axis=0), 1.0, atol=1e-10)

    def test_ignores_nans_when_fitting(self):
        values = np.full((2, 3, NUM_FEATURES), np.nan)
        values[0, 0, :] = 10.0
        values[1, 1, :] = 20.0
        std = Standardizer().fit(values)
        assert np.allclose(std.mean, 15.0)

    def test_inverse_round_trip(self):
        rng = np.random.default_rng(1)
        values = rng.normal(3.0, 4.0, size=(10, 5, NUM_FEATURES))
        std = Standardizer().fit(values)
        assert np.allclose(std.inverse_transform(std.transform(values)),
                           values)

    def test_constant_feature_guard(self):
        values = np.ones((5, 4, NUM_FEATURES))
        std = Standardizer().fit(values)
        out = std.transform(values)
        assert np.all(np.isfinite(out))

    def test_never_observed_feature_falls_back_to_schema(self):
        values = np.full((5, 4, NUM_FEATURES), np.nan)
        values[..., 0] = 3.0
        std = Standardizer().fit(values)
        assert np.all(np.isfinite(std.mean))
        assert np.all(std.std > 0)

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Standardizer().transform(np.zeros((1, 1, NUM_FEATURES)))


class TestImpute:
    def test_global_mean_before_first_observation(self):
        values = np.zeros((1, 4, 2))
        mask = np.zeros((1, 4, 2), dtype=bool)
        values[0, 2, 0] = 5.0
        mask[0, 2, 0] = True
        out = impute(values, mask)
        # Hours 0-1: not yet observed -> standardized global mean (0).
        assert out[0, 0, 0] == 0.0 and out[0, 1, 0] == 0.0

    def test_locf_after_first_observation(self):
        values = np.zeros((1, 4, 1))
        mask = np.zeros((1, 4, 1), dtype=bool)
        values[0, 1, 0] = 7.0
        mask[0, 1, 0] = True
        out = impute(values, mask)
        assert out[0, 2, 0] == 7.0 and out[0, 3, 0] == 7.0

    def test_new_observation_replaces_carry(self):
        values = np.zeros((1, 4, 1))
        mask = np.zeros((1, 4, 1), dtype=bool)
        values[0, 0, 0], mask[0, 0, 0] = 3.0, True
        values[0, 2, 0], mask[0, 2, 0] = 9.0, True
        out = impute(values, mask)
        assert out[0, 1, 0] == 3.0
        assert out[0, 3, 0] == 9.0

    def test_no_nans_in_output(self):
        rng = np.random.default_rng(2)
        mask = rng.random((4, 48, NUM_FEATURES)) < 0.2
        values = np.where(mask, rng.normal(size=mask.shape), np.nan)
        out = impute(values, mask)
        assert not np.isnan(out).any()

    def test_observed_values_untouched(self):
        rng = np.random.default_rng(3)
        mask = rng.random((2, 10, 3)) < 0.5
        raw = rng.normal(size=(2, 10, 3))
        values = np.where(mask, raw, np.nan)
        out = impute(values, mask)
        assert np.allclose(out[mask], raw[mask])


class TestDeltas:
    def test_zero_at_first_step(self):
        mask = np.ones((1, 5, 2), dtype=bool)
        assert np.all(observation_deltas(mask)[:, 0, :] == 0.0)

    def test_counts_hours_since_observation(self):
        mask = np.zeros((1, 5, 1), dtype=bool)
        mask[0, 1, 0] = True
        delta = observation_deltas(mask)[0, :, 0]
        # GRU-D: delta_t = 1 if observed at t-1, else delta_{t-1} + 1.
        assert delta.tolist() == [0.0, 1.0, 1.0, 2.0, 3.0]

    def test_fully_observed_gives_ones(self):
        mask = np.ones((1, 5, 1), dtype=bool)
        delta = observation_deltas(mask)[0, :, 0]
        assert delta.tolist() == [0.0, 1.0, 1.0, 1.0, 1.0]


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_impute_idempotent_property(seed):
    """Property: imputing an already-complete matrix is the identity."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(2, 6, 4))
    mask = np.ones_like(values, dtype=bool)
    assert np.allclose(impute(values, mask), values)


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 10_000))
def test_deltas_bounded_by_time(seed):
    """Property: delta never exceeds the elapsed hours."""
    rng = np.random.default_rng(seed)
    mask = rng.random((3, 12, 5)) < 0.3
    delta = observation_deltas(mask)
    bounds = np.arange(12).reshape(1, 12, 1)
    assert np.all(delta <= bounds)
    assert np.all(delta >= 0)
