"""Tests of dataset save/load round trips and header-only metadata."""

import numpy as np
import pytest

from repro.data import dataset_metadata, load_dataset, save_dataset


class TestRoundTrip:
    def test_arrays_identical(self, tiny_dataset, tmp_path):
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)
        restored = load_dataset(path)
        assert np.array_equal(restored.values, tiny_dataset.values)
        assert np.array_equal(restored.mask, tiny_dataset.mask)
        assert np.array_equal(restored.deltas, tiny_dataset.deltas)
        assert np.array_equal(restored.ever_observed,
                              tiny_dataset.ever_observed)
        assert np.array_equal(restored.mortality, tiny_dataset.mortality)
        assert np.array_equal(restored.long_stay, tiny_dataset.long_stay)

    def test_metadata_preserved(self, tiny_dataset, tmp_path):
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)
        restored = load_dataset(path)
        assert restored.archetypes == tiny_dataset.archetypes
        assert restored.onset_hours == tiny_dataset.onset_hours
        assert tuple(restored.feature_names) == tuple(
            tiny_dataset.feature_names)

    def test_none_onsets_survive(self, tiny_dataset, tmp_path):
        assert any(h is None for h in tiny_dataset.onset_hours)
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)
        restored = load_dataset(path)
        nones = [i for i, h in enumerate(tiny_dataset.onset_hours)
                 if h is None]
        assert all(restored.onset_hours[i] is None for i in nones)

    def test_restored_dataset_is_usable(self, tiny_dataset, tmp_path):
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)
        restored = load_dataset(path)
        stats = restored.statistics()
        assert stats == tiny_dataset.statistics()
        sub = restored.subset([0, 1])
        assert len(sub) == 2
        assert restored.labels("phenotype").shape == (len(restored),)


class TestMetadata:
    def test_matches_saved_arrays(self, tiny_dataset, tmp_path):
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)
        meta = dataset_metadata(path)
        assert meta["admissions"] == len(tiny_dataset)
        assert meta["num_time_steps"] == tiny_dataset.num_time_steps
        assert meta["num_features"] == tiny_dataset.num_features
        assert meta["arrays"]["values"]["shape"] \
            == tiny_dataset.values.shape
        assert meta["arrays"]["mask"]["dtype"] == "bool"

    def test_reads_headers_without_payloads(self, tiny_dataset, tmp_path,
                                            monkeypatch):
        """Regression for the eager-loading fix: metadata must come from
        the ~100-byte .npy headers alone, never np.load."""
        path = tmp_path / "cohort.npz"
        save_dataset(tiny_dataset, path)

        def forbidden(*args, **kwargs):
            raise AssertionError("dataset_metadata called np.load")

        monkeypatch.setattr(np, "load", forbidden)
        meta = dataset_metadata(path)
        assert meta["admissions"] == len(tiny_dataset)

    def test_rejects_foreign_archives(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, weights=np.zeros(3))
        with pytest.raises(ValueError, match="values"):
            dataset_metadata(path)
